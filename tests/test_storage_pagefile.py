"""Page file: creation, checksums, free list, atomic checkpoints."""

import os

import pytest

from repro.storage.pagefile import (
    MIN_PAGE_SIZE,
    PageCorruptionError,
    PageFile,
    StorageError,
)


@pytest.fixture
def pf(tmp_path):
    f = PageFile.create(tmp_path / "t.pf", page_size=256)
    yield f
    f.close(checkpoint=False)


class TestCreateOpen:
    def test_create_then_open(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=512, meta={"k": 1})
        f.close()
        g = PageFile.open(path)
        assert g.page_size == 512
        assert g.page_count == 0
        assert g.meta == {"k": 1}
        g.close()

    def test_create_refuses_existing(self, tmp_path):
        path = tmp_path / "a.pf"
        PageFile.create(path).close()
        with pytest.raises(FileExistsError):
            PageFile.create(path)

    def test_page_size_floor(self, tmp_path):
        with pytest.raises(ValueError):
            PageFile.create(tmp_path / "a.pf", page_size=MIN_PAGE_SIZE - 1)

    def test_open_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.pf"
        path.write_bytes(b"not a page file at all" * 10)
        with pytest.raises(PageCorruptionError):
            PageFile.open(path)

    def test_open_rejects_header_bitrot(self, tmp_path):
        path = tmp_path / "a.pf"
        PageFile.create(path, meta={"x": 2}).close()
        raw = bytearray(path.read_bytes())
        raw[33] ^= 0xFF  # flip a byte inside the checksummed meta JSON
        path.write_bytes(bytes(raw))
        with pytest.raises(PageCorruptionError):
            PageFile.open(path)


class TestPageIO:
    def test_write_read_round_trip(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"hello world")
        payload = pf.read_page(pid)
        assert payload.startswith(b"hello world")
        assert len(payload) == pf.payload_size

    def test_reads_come_from_overlay_before_checkpoint(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"v1")
        pf.write_page(pid, b"v2")
        assert pf.read_page(pid).startswith(b"v2")

    def test_payload_too_big_rejected(self, pf):
        pid = pf.allocate()
        with pytest.raises(ValueError):
            pf.write_page(pid, b"x" * (pf.payload_size + 1))

    def test_bad_pid_rejected(self, pf):
        with pytest.raises(ValueError):
            pf.read_page(0)
        with pytest.raises(ValueError):
            pf.write_page(7, b"x")

    def test_page_bitrot_detected(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256)
        pid = f.allocate()
        f.write_page(pid, b"precious")
        f.close()  # checkpoints
        raw = bytearray(path.read_bytes())
        raw[256 + 20] ^= 0xFF  # flip a byte inside page 0's slot
        path.write_bytes(bytes(raw))
        g = PageFile.open(path)
        with pytest.raises(PageCorruptionError):
            g.read_page(pid)
        g.close(checkpoint=False)


class TestFreeList:
    def test_allocate_extends(self, pf):
        assert [pf.allocate() for _ in range(3)] == [0, 1, 2]
        assert pf.page_count == 3
        assert pf.data_page_count == 3

    def test_free_then_reuse_lifo(self, pf):
        pids = [pf.allocate() for _ in range(3)]
        pf.free_page(pids[0])
        pf.free_page(pids[2])
        assert pf.free_page_count == 2
        assert pf.allocate() == pids[2]  # LIFO
        assert pf.allocate() == pids[0]
        assert pf.allocate() == 3  # then extend
        assert pf.free_page_count == 0

    def test_read_freed_page_rejected(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"x")
        pf.free_page(pid)
        with pytest.raises(StorageError):
            pf.read_page(pid)

    def test_free_list_survives_checkpoint(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256)
        pids = [f.allocate() for _ in range(4)]
        f.free_page(pids[1])
        f.close()
        g = PageFile.open(path)
        assert g.free_page_count == 1
        assert g.allocate() == pids[1]
        g.close(checkpoint=False)

    def test_iter_data_pages_skips_free(self, pf):
        a = pf.allocate()
        b = pf.allocate()
        pf.write_page(a, b"A")
        pf.write_page(b, b"B")
        pf.free_page(a)
        assert [pid for pid, _ in pf.iter_data_pages()] == [b]


class TestCheckpoint:
    def test_unchecked_writes_are_invisible_on_disk(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256)
        pid = f.allocate()
        f.write_page(pid, b"staged")
        assert f.dirty
        # a second reader sees only the empty checkpoint
        g = PageFile.open(path)
        assert g.page_count == 0
        g.close(checkpoint=False)
        f.close(checkpoint=False)
        h = PageFile.open(path)
        assert h.page_count == 0
        h.close(checkpoint=False)

    def test_checkpoint_publishes(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256)
        pid = f.allocate()
        f.write_page(pid, b"durable")
        f.checkpoint()
        assert not f.dirty
        g = PageFile.open(path)
        assert g.read_page(pid).startswith(b"durable")
        g.close(checkpoint=False)
        f.close(checkpoint=False)

    def test_no_temp_litter_after_checkpoint(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256)
        pid = f.allocate()
        f.write_page(pid, b"x")
        f.checkpoint()
        f.close()
        assert os.listdir(tmp_path) == ["a.pf"]

    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path):
        path = tmp_path / "a.pf"
        with PageFile.create(path, page_size=256) as f:
            pid = f.allocate()
            f.write_page(pid, b"ctx")
        g = PageFile.open(path)
        assert g.read_page(pid).startswith(b"ctx")
        g.close(checkpoint=False)

    def test_context_manager_discards_on_error(self, tmp_path):
        path = tmp_path / "a.pf"
        with pytest.raises(RuntimeError):
            with PageFile.create(path, page_size=256) as f:
                pid = f.allocate()
                f.write_page(pid, b"doomed")
                raise RuntimeError("boom")
        g = PageFile.open(path)
        assert g.page_count == 0  # the crash never published
        g.close(checkpoint=False)

    def test_meta_updates_persist(self, tmp_path):
        path = tmp_path / "a.pf"
        f = PageFile.create(path, page_size=256, meta={"points": 0})
        f.update_meta({"points": 42})
        f.checkpoint()
        f.close()
        g = PageFile.open(path)
        assert g.meta["points"] == 42
        g.close(checkpoint=False)

    def test_closed_file_rejects_io(self, tmp_path):
        f = PageFile.create(tmp_path / "a.pf", page_size=256)
        f.close()
        with pytest.raises(StorageError):
            f.allocate()
        with pytest.raises(StorageError):
            f.checkpoint()

    def test_stats_snapshot(self, pf):
        a = pf.allocate()
        pf.allocate()
        pf.free_page(a)
        s = pf.stats()
        assert s.page_count == 2
        assert s.free_pages == 1
        assert s.data_pages == 1
        assert s.page_size == 256
