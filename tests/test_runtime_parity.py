"""Serial-vs-parallel-vs-cached parity — the runtime's core guarantee.

The paper's tables are reproduced bit-for-bit from a seed; the engine
must preserve that no matter how it schedules the work.  These tests
pin the guarantee: ``run_trials(..., workers=4)`` (and a warm cache)
produce *bit-identical* statistics to the historical serial loop.
"""

import pytest

from repro.experiments import (
    gaussian_factory,
    occupancy_vs_size,
    run_table1,
    run_trials,
    uniform_factory,
)
from repro.geometry import Point, Rect
from repro.runtime import RuntimeConfig


def _assert_bit_identical(serial, parallel):
    assert parallel.mean_proportions() == serial.mean_proportions()
    assert parallel.mean_occupancy() == serial.mean_occupancy()
    assert parallel.mean_nodes() == serial.mean_nodes()
    assert parallel.trials == serial.trials


class TestWorkerParity:
    @pytest.mark.parametrize("factory", [uniform_factory, gaussian_factory])
    def test_bit_identical_statistics(self, factory):
        kwargs = dict(
            n_points=120, trials=6, seed=42, generator_factory=factory()
        )
        serial = run_trials(3, **kwargs)
        parallel = run_trials(3, workers=4, **kwargs)
        _assert_bit_identical(serial, parallel)

    def test_depth_and_area_collections_match(self):
        kwargs = dict(
            n_points=80, trials=5, seed=7,
            collect_depth=True, collect_area=True, max_depth=6,
        )
        serial = run_trials(1, **kwargs)
        parallel = run_trials(1, workers=4, **kwargs)
        _assert_bit_identical(serial, parallel)
        assert parallel.depth_censuses == serial.depth_censuses
        assert parallel.area_occupancy == serial.area_occupancy

    def test_custom_bounds_parity(self):
        bounds = Rect(Point(-2.0, -2.0), Point(2.0, 2.0))
        serial = run_trials(2, n_points=90, trials=4, seed=3, bounds=bounds)
        parallel = run_trials(
            2, n_points=90, trials=4, seed=3, bounds=bounds, workers=3
        )
        _assert_bit_identical(serial, parallel)

    def test_sweep_parity(self):
        serial = occupancy_vs_size(4, [32, 64], trials=4, seed=11)
        parallel = occupancy_vs_size(4, [32, 64], trials=4, seed=11, workers=4)
        assert parallel == serial

    def test_workers_equal_trials_and_beyond(self):
        serial = run_trials(2, n_points=60, trials=3, seed=5)
        wide = run_trials(2, n_points=60, trials=3, seed=5, workers=8)
        _assert_bit_identical(serial, wide)


class TestCacheParity:
    def test_warm_cache_is_bit_identical(self, tmp_path):
        def config():
            return RuntimeConfig(use_cache=True, cache_dir=str(tmp_path))

        kwargs = dict(n_points=100, trials=4, seed=19, collect_depth=True)
        cold = run_trials(2, runtime=config(), **kwargs)
        warm = run_trials(2, runtime=config(), **kwargs)
        _assert_bit_identical(cold, warm)
        assert warm.depth_censuses == cold.depth_censuses

    def test_parallel_writer_serial_reader(self, tmp_path):
        serial = run_trials(3, n_points=70, trials=5, seed=23)
        writer = RuntimeConfig(
            workers=4, use_cache=True, cache_dir=str(tmp_path)
        )
        run_trials(3, n_points=70, trials=5, seed=23, runtime=writer)
        reader = RuntimeConfig(use_cache=True, cache_dir=str(tmp_path))
        cached = run_trials(3, n_points=70, trials=5, seed=23, runtime=reader)
        assert reader.report().cache_hits == 1
        _assert_bit_identical(serial, cached)


class TestLegacyFactoryPath:
    """Arbitrary generator factories can't be lowered to a spec; they
    must still work (in-process) and match tagged-factory results."""

    def test_untagged_factory_matches_tagged(self):
        from repro.workloads import UniformPoints

        untagged = lambda seed: UniformPoints(seed=seed)  # noqa: E731
        legacy = run_trials(2, n_points=80, trials=3, seed=9,
                            generator_factory=untagged)
        spec_path = run_trials(2, n_points=80, trials=3, seed=9)
        _assert_bit_identical(spec_path, legacy)

    def test_untagged_factory_ignores_workers(self):
        from repro.workloads import UniformPoints

        untagged = lambda seed: UniformPoints(seed=seed)  # noqa: E731
        result = run_trials(2, n_points=80, trials=3, seed=9,
                            generator_factory=untagged, workers=4)
        assert result.trials == 3


class TestWarmCacheTable1:
    """Acceptance criterion: a warm-cache rerun of table1 builds zero
    trees, verified via the cache hit counters."""

    def test_second_table1_run_builds_nothing(self, tmp_path):
        def config():
            return RuntimeConfig(use_cache=True, cache_dir=str(tmp_path))

        cold_config = config()
        cold = run_table1(trials=2, n_points=60, seed=31,
                          runtime=cold_config)
        assert cold_config.report().trees_built > 0
        warm_config = config()
        warm = run_table1(trials=2, n_points=60, seed=31,
                          runtime=warm_config)
        report = warm_config.report()
        assert report.trees_built == 0
        assert report.cache_hits == len(cold)  # one hit per capacity
        assert report.cache_misses == 0
        assert [r.experiment for r in warm] == [r.experiment for r in cold]


class TestSharedPoolMatrix:
    """The rebuilt pool path: a session's persistent shared-memory
    workers must stay bit-identical to serial on both engines — through
    repeat executes on a warm pool, a mid-run worker death, the
    pool-unavailable degraded fallback, and the result cache — and must
    never leak a shared-memory block."""

    KW = dict(n_points=90, trials=6, seed=13, collect_depth=True)

    def pooled_config(self, engine, **overrides):
        from repro.runtime import RuntimeConfig

        base = dict(workers=2, engine=engine, chunk_size=2)
        base.update(overrides)
        return RuntimeConfig(**base)

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_warm_session_pool_bit_identical(self, engine):
        from repro.runtime import live_block_count, runtime_session

        serial = run_trials(
            3, runtime=RuntimeConfig(engine=engine), **self.KW
        )
        config = self.pooled_config(engine)
        with runtime_session(config):
            first = run_trials(3, **self.KW)
            warm = run_trials(3, **self.KW)  # reuses the live pool
        _assert_bit_identical(serial, first)
        _assert_bit_identical(serial, warm)
        assert warm.depth_censuses == serial.depth_censuses
        assert live_block_count() == 0

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_worker_death_rescued_bit_identical(self, engine, monkeypatch):
        from repro.runtime import live_block_count, runtime_session
        from repro.runtime import executor as executor_module
        from tests.test_runtime_executor import _crashing

        serial = run_trials(
            3, runtime=RuntimeConfig(engine=engine), **self.KW
        )
        monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
        config = self.pooled_config(engine)
        with runtime_session(config):
            rescued = run_trials(3, **self.KW)
        _assert_bit_identical(serial, rescued)
        assert rescued.depth_censuses == serial.depth_censuses
        assert live_block_count() == 0

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_degraded_fallback_bit_identical(self, engine, monkeypatch):
        from repro.runtime import live_block_count, runtime_session
        from repro.runtime import executor as executor_module

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("pools unavailable on this host")

        serial = run_trials(
            3, runtime=RuntimeConfig(engine=engine), **self.KW
        )
        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", _NoPool
        )
        config = self.pooled_config(engine)
        with runtime_session(config):
            degraded = run_trials(3, **self.KW)
        _assert_bit_identical(serial, degraded)
        assert live_block_count() == 0

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_pooled_writer_feeds_cache(self, engine, tmp_path):
        from repro.runtime import runtime_session

        serial = run_trials(
            3, runtime=RuntimeConfig(engine=engine), **self.KW
        )
        writer = self.pooled_config(
            engine, use_cache=True, cache_dir=str(tmp_path)
        )
        with runtime_session(writer):
            run_trials(3, **self.KW)
        reader = RuntimeConfig(
            engine=engine, use_cache=True, cache_dir=str(tmp_path)
        )
        cached = run_trials(3, runtime=reader, **self.KW)
        assert reader.report().cache_hits == 1
        _assert_bit_identical(serial, cached)
        assert cached.depth_censuses == serial.depth_censuses
