"""Unit and property tests for the fixed-point solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    residual,
    row_sums,
    solve,
    solve_analytic,
    solve_eigen,
    solve_fixed_point_iteration,
    solve_newton,
    transform_matrix,
)

caps = st.integers(min_value=1, max_value=10)
fanouts = st.sampled_from([2, 4, 8])


class TestAnalytic:
    def test_paper_m1_quadtree(self):
        """The paper's analytic example: e = (1/2, 1/2), a = 3."""
        state = solve_analytic(4)
        assert state.distribution == pytest.approx([0.5, 0.5])
        assert state.growth == pytest.approx(3.0)
        assert state.average_occupancy() == pytest.approx(0.5)

    def test_bintree(self):
        """b=2: a = 1 + sqrt(2)."""
        state = solve_analytic(2)
        assert state.growth == pytest.approx(1 + np.sqrt(2))
        assert state.distribution.sum() == pytest.approx(1.0)

    def test_octree(self):
        state = solve_analytic(8)
        assert state.growth == pytest.approx(1 + np.sqrt(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_analytic(1)

    def test_analytic_matches_numeric(self):
        for b in (2, 4, 8):
            analytic = solve_analytic(b)
            numeric = solve_fixed_point_iteration(transform_matrix(1, b))
            assert analytic.distribution == pytest.approx(
                numeric.distribution, abs=1e-9
            )
            assert analytic.growth == pytest.approx(numeric.growth)


class TestIteration:
    def test_converges_m1(self):
        state = solve_fixed_point_iteration(transform_matrix(1))
        assert state.distribution == pytest.approx([0.5, 0.5])
        assert state.iterations > 0

    def test_residual_is_zero(self):
        for m in range(1, 9):
            T = transform_matrix(m)
            state = solve_fixed_point_iteration(T)
            assert residual(T, state.distribution) < 1e-10

    def test_custom_initial(self):
        T = transform_matrix(3)
        state = solve_fixed_point_iteration(
            T, initial=np.array([1.0, 0.0, 0.0, 0.0])
        )
        baseline = solve_fixed_point_iteration(T)
        assert state.distribution == pytest.approx(baseline.distribution)

    def test_bad_initial_rejected(self):
        T = transform_matrix(2)
        with pytest.raises(ValueError):
            solve_fixed_point_iteration(T, initial=np.array([1.0, -1.0, 0.0]))
        with pytest.raises(ValueError):
            solve_fixed_point_iteration(T, initial=np.zeros(3))

    def test_max_iter_exceeded(self):
        with pytest.raises(ArithmeticError):
            solve_fixed_point_iteration(transform_matrix(5), max_iter=1)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            solve_fixed_point_iteration(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            solve_fixed_point_iteration(np.array([[1.0, -2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            solve_fixed_point_iteration(np.array([[1.0]]))


class TestSolverAgreement:
    @pytest.mark.parametrize("m", range(1, 9))
    def test_three_solvers_agree(self, m):
        T = transform_matrix(m)
        iteration = solve_fixed_point_iteration(T)
        eigen = solve_eigen(T)
        newton = solve_newton(T)
        assert iteration.distribution == pytest.approx(
            eigen.distribution, abs=1e-8
        )
        assert iteration.distribution == pytest.approx(
            newton.distribution, abs=1e-8
        )
        assert iteration.growth == pytest.approx(eigen.growth, abs=1e-8)
        assert iteration.growth == pytest.approx(newton.growth, abs=1e-8)

    def test_dispatch(self):
        T = transform_matrix(2)
        for method in ("iteration", "eigen", "newton"):
            state = solve(T, method)
            assert state.distribution.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            solve(T, "bogus")

    @given(caps, fanouts)
    @settings(max_examples=30, deadline=None)
    def test_agreement_property(self, m, b):
        T = transform_matrix(m, b)
        a = solve_fixed_point_iteration(T)
        c = solve_eigen(T)
        assert a.distribution == pytest.approx(c.distribution, abs=1e-7)


class TestSteadyStateProperties:
    @given(caps, fanouts)
    @settings(max_examples=30, deadline=None)
    def test_distribution_positive_and_normalized(self, m, b):
        state = solve_fixed_point_iteration(transform_matrix(m, b))
        e = state.distribution
        assert e.sum() == pytest.approx(1.0)
        assert (e > 0).all()

    @given(caps, fanouts)
    @settings(max_examples=30, deadline=None)
    def test_growth_consistency(self, m, b):
        """The companion identity: average occupancy = 1/(a - 1).

        In steady state each insertion adds a-1 net nodes and exactly
        one point, so occupancy = points/nodes must equal 1/(a-1)."""
        state = solve_fixed_point_iteration(transform_matrix(m, b))
        assert state.average_occupancy() == pytest.approx(
            1.0 / (state.growth - 1.0), rel=1e-8
        )

    @given(caps, fanouts)
    @settings(max_examples=30, deadline=None)
    def test_growth_equals_weighted_row_sums(self, m, b):
        state = solve_fixed_point_iteration(transform_matrix(m, b))
        expected = float(state.distribution @ row_sums(m, b))
        assert state.growth == pytest.approx(expected)

    def test_distribution_is_unimodal_for_paper_range(self):
        """The paper: 'a distribution which has a small value for low
        occupancies, rises to a peak, and decreases again'."""
        for m in range(2, 9):
            e = solve_fixed_point_iteration(transform_matrix(m)).distribution
            peak = int(np.argmax(e))
            assert 0 < peak < m
            assert all(e[i] < e[i + 1] for i in range(peak))
            assert all(e[i] > e[i + 1] for i in range(peak, m))

    def test_occupancy_increases_with_capacity(self):
        occupancies = [
            solve_fixed_point_iteration(transform_matrix(m))
            .average_occupancy()
            for m in range(1, 9)
        ]
        assert occupancies == sorted(occupancies)

    def test_utilization_rises_slowly_with_capacity(self):
        """Quadtree slot utilization creeps up with m but stays near
        53% — well below extendible hashing's ln 2, because a 4-way
        split scatters m+1 points over four children."""
        utils = [
            solve_fixed_point_iteration(transform_matrix(m))
            .storage_utilization()
            for m in range(1, 9)
        ]
        assert all(a <= b for a, b in zip(utils, utils[1:]))
        assert all(0.49 < u < 0.56 for u in utils)

    def test_accessors(self):
        state = solve_fixed_point_iteration(transform_matrix(1))
        assert state.capacity == 1
        assert state.fraction_empty() == pytest.approx(0.5)
        assert state.fraction_full() == pytest.approx(0.5)
