"""Unit tests for the table/figure regenerators (small, fast configs).

The full paper-protocol runs live in benchmarks/; here we exercise the
machinery with reduced trial counts and assert structural correctness
plus coarse value sanity.
"""

import math

import pytest

from repro.experiments import (
    FIGURE1_POINTS,
    build_figure1_tree,
    format_phasing_table,
    format_table1,
    format_table2,
    format_table3,
    paper_data,
    render_quadtree_ascii,
    render_semilog_ascii,
    run_figure2,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


class TestTable1:
    def test_rows_structure(self):
        rows = run_table1(trials=2, n_points=300, capacities=(1, 2))
        assert [r.capacity for r in rows] == [1, 2]
        for row in rows:
            assert len(row.theory) == row.capacity + 1
            assert len(row.experiment) == row.capacity + 1
            assert sum(row.theory) == pytest.approx(1.0)
            assert sum(row.experiment) == pytest.approx(1.0)

    def test_theory_matches_paper(self):
        rows = run_table1(trials=1, n_points=100, capacities=(3,))
        assert rows[0].theory == pytest.approx(
            paper_data.TABLE1_THEORY[3], abs=0.0015
        )

    def test_format_contains_values(self):
        rows = run_table1(trials=1, n_points=100, capacities=(1,))
        text = format_table1(rows)
        assert "bucket size 1" in text
        assert "0.500" in text


class TestTable2:
    def test_rows_structure(self):
        rows = run_table2(trials=2, n_points=300, capacities=(1, 4))
        for row in rows:
            assert row.theoretical > 0
            assert row.experimental > 0
            assert row.percent_difference == pytest.approx(
                100 * (row.theoretical - row.experimental) / row.experimental
            )

    def test_same_seed_consistent_with_table1(self):
        t1 = run_table1(trials=2, n_points=300, seed=50, capacities=(2,))[0]
        t2 = run_table2(trials=2, n_points=300, seed=50, capacities=(2,))[0]
        experiment_occ = sum(i * p for i, p in enumerate(t1.experiment))
        assert t2.experimental == pytest.approx(experiment_occ)

    def test_format(self):
        rows = run_table2(trials=1, n_points=200, capacities=(1,))
        text = format_table2(rows)
        assert "Average Node Occupancy" in text


class TestTable3:
    def test_structure(self):
        result = run_table3(trials=2, n_points=500, seed=1)
        assert result.post_split_floor == pytest.approx(0.4)
        depths = [r.depth for r in result.rows]
        assert depths == sorted(depths)
        assert max(depths) <= 9

    def test_aging_signature(self):
        """Occupancy at the shallow, well-populated depths exceeds the
        deep ones (Table 3's trend)."""
        result = run_table3(trials=3, n_points=1000, seed=2)
        populated = [r for r in result.rows if r.nodes >= 20]
        assert populated[0].occupancy > populated[-2].occupancy or (
            populated[0].occupancy > result.post_split_floor
        )

    def test_format(self):
        result = run_table3(trials=1, n_points=300, seed=3)
        text = format_table3(result)
        assert "post-split floor: 0.40" in text


class TestTables45:
    def test_table4_structure(self):
        rows = run_table4(trials=2, sizes=[64, 128, 256])
        assert [r.n_points for r in rows] == [64, 128, 256]
        for row in rows:
            assert 0 < row.occupancy <= 8
            assert row.nodes > 0

    def test_table5_structure(self):
        rows = run_table5(trials=2, sizes=[64, 128])
        assert len(rows) == 2

    def test_paper_values_attached(self):
        rows = run_table4(trials=1, sizes=[64])
        assert rows[0].paper_nodes == pytest.approx(16.9)
        assert rows[0].paper_occupancy == pytest.approx(3.79)

    def test_unknown_size_gets_nan_paper_values(self):
        rows = run_table4(trials=1, sizes=[100])
        assert math.isnan(rows[0].paper_nodes)

    def test_format(self):
        rows = run_table4(trials=1, sizes=[64, 128])
        text = format_phasing_table(rows, "Table 4")
        assert "Table 4" in text
        assert "64" in text


class TestFigure1:
    def test_tree_matches_paper_sketch(self):
        tree = build_figure1_tree()
        assert len(tree) == 4
        assert tree.height() == 2
        census = tree.occupancy_census()
        # 4 top-level quadrants; NE is split again: 3 + 4 = 7 leaves
        assert census.total_nodes == 7
        assert census.counts == (3, 4)

    def test_ascii_rendering(self):
        art = render_quadtree_ascii(build_figure1_tree(), resolution=16)
        assert art.count("*") == len(FIGURE1_POINTS)
        assert "+" in art or "-" in art

    def test_rendering_validation(self):
        tree = build_figure1_tree()
        with pytest.raises(ValueError):
            render_quadtree_ascii(tree, resolution=3)
        with pytest.raises(ValueError):
            render_quadtree_ascii(tree, resolution=2)  # too coarse


class TestFigures23:
    def test_figure2_series(self):
        series = run_figure2(trials=2, sizes=paper_data.PHASING_SIZES)
        assert len(series.rows) == 13
        assert series.fit.amplitude > 0
        assert series.damping > 0

    def test_figure3_series(self):
        series = run_figure3(trials=2, sizes=paper_data.PHASING_SIZES)
        assert len(series.rows) == 13

    def test_semilog_render(self):
        sizes = paper_data.PHASING_SIZES
        occ = [row[2] for row in paper_data.TABLE4_UNIFORM]
        art = render_semilog_ascii(sizes, occ)
        assert art.count("o") >= 10
        assert "n=64" in art and "n=4096" in art

    def test_semilog_validation(self):
        with pytest.raises(ValueError):
            render_semilog_ascii([64], [3.0])
        with pytest.raises(ValueError):
            render_semilog_ascii([64, 128], [3.0])
