"""Unit tests for repro.runtime.cache — robustness is the whole point:
anything unreadable must be a miss, never a crash or a wrong answer."""

import json
import os

import pytest

from repro.runtime import (
    CACHE_DIR_ENV,
    ExperimentSpec,
    ResultCache,
    default_cache_dir,
)
from repro.runtime import cache as cache_module

SPEC = ExperimentSpec(capacity=2, n_points=50, trials=3, seed=1)
OTHER = ExperimentSpec(capacity=2, n_points=50, trials=3, seed=2)
PAYLOAD = {"count_sums": [1.0, 2.0, 3.0], "trials": 3,
           "depth_censuses": [], "area_occupancy": []}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_store_then_load(self, cache):
        cache.store(SPEC, PAYLOAD)
        assert cache.load(SPEC) == PAYLOAD
        assert cache.contains(SPEC)

    def test_absent_is_miss(self, cache):
        assert cache.load(SPEC) is None
        assert not cache.contains(SPEC)

    def test_entries_are_per_spec(self, cache):
        cache.store(SPEC, PAYLOAD)
        assert cache.load(OTHER) is None

    def test_directory_created_lazily(self, tmp_path):
        cache = ResultCache(tmp_path / "deep" / "nested")
        assert not cache.directory.exists()
        cache.store(SPEC, PAYLOAD)
        assert cache.directory.is_dir()
        assert cache.entry_count() == 1

    def test_store_returns_entry_path(self, cache):
        path = cache.store(SPEC, PAYLOAD)
        assert path == cache.path_for(SPEC)
        assert path.is_file()


class TestRobustness:
    def test_corrupted_entry_is_miss(self, cache):
        cache.store(SPEC, PAYLOAD)
        cache.path_for(SPEC).write_text("{not json at all", encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_truncated_entry_is_miss(self, cache):
        path = cache.store(SPEC, PAYLOAD)
        blob = path.read_text(encoding="utf-8")
        path.write_text(blob[: len(blob) // 2], encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_empty_file_is_miss(self, cache):
        cache.store(SPEC, PAYLOAD)
        cache.path_for(SPEC).write_text("", encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_non_dict_entry_is_miss(self, cache):
        cache.store(SPEC, PAYLOAD)
        cache.path_for(SPEC).write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_non_dict_result_is_miss(self, cache):
        path = cache.store(SPEC, PAYLOAD)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["result"] = "scalar"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_schema_version_bump_invalidates(self, cache, monkeypatch):
        cache.store(SPEC, PAYLOAD)
        monkeypatch.setattr(cache_module, "SCHEMA_VERSION", 99_999)
        # same file on disk, newer reader: stale entry must be a miss
        assert cache.load(SPEC) is None

    def test_spec_mismatch_is_miss(self, cache):
        """A hand-edited (or colliding) entry whose recorded spec does
        not match the request is rejected."""
        path = cache.store(SPEC, PAYLOAD)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["spec"]["seed"] = 12345
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(SPEC) is None

    def test_unwritable_directory_is_silent(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        cache = ResultCache(blocker / "cache")
        cache.store(SPEC, PAYLOAD)  # must not raise
        assert cache.load(SPEC) is None

    def test_no_temp_droppings_after_store(self, cache):
        cache.store(SPEC, PAYLOAD)
        leftovers = [
            p for p in cache.directory.iterdir() if p.suffix != ".json"
        ]
        assert leftovers == []


class TestMaintenance:
    def test_clear(self, cache):
        cache.store(SPEC, PAYLOAD)
        cache.store(OTHER, PAYLOAD)
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.load(SPEC) is None

    def test_clear_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0

    def test_entry_count_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").entry_count() == 0


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        path = default_cache_dir()
        assert path.name == "repro"
        assert path.parent.name == ".cache"

    def test_cache_uses_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "from-env"))
        assert ResultCache().directory == tmp_path / "from-env"


class TestStoreSwallowsBadPayloads:
    """Regression: the docstring always promised write failures are
    swallowed, but a payload JSON cannot encode raised ``TypeError``
    (or ``ValueError`` for circular structures) out of ``store``."""

    def test_unserializable_payload_is_swallowed(self, cache):
        path = cache.store(SPEC, {"bad": object()})
        assert path == cache.path_for(SPEC)
        assert cache.load(SPEC) is None

    def test_circular_payload_is_swallowed(self, cache):
        loop = {}
        loop["self"] = loop
        cache.store(SPEC, {"bad": loop})
        assert cache.load(SPEC) is None

    def test_failed_store_leaves_no_temp_files(self, cache):
        cache.store(SPEC, {"bad": object()})
        assert list(cache.directory.glob("*.tmp")) == []

    def test_failed_store_keeps_previous_entry(self, cache):
        cache.store(SPEC, PAYLOAD)
        cache.store(SPEC, {"bad": object()})
        assert cache.load(SPEC) == PAYLOAD


class TestClearSweepsOrphans:
    """Regression: ``clear()`` only globbed ``*.json``, so ``*.tmp``
    files orphaned by a writer killed mid-store accumulated forever."""

    def test_clear_removes_orphaned_tmp_files(self, cache):
        cache.store(SPEC, PAYLOAD)
        orphan = cache.directory / "deadbeef0123.tmp"
        orphan.write_text("half-written", encoding="utf-8")
        assert cache.clear() == 2
        assert not orphan.exists()
        assert list(cache.directory.iterdir()) == []

    def test_clear_counts_only_what_it_removed(self, cache):
        cache.store(SPEC, PAYLOAD)
        assert cache.clear() == 1
        assert cache.clear() == 0
