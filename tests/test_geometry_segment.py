"""Unit and property tests for repro.geometry.segment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect, Segment

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def segments():
    def build(ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        if a == b:
            b = Point(bx + 0.25, by + 0.125)
        return Segment(a, b)

    return st.builds(build, coord, coord, coord, coord)


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(0, 0))

    def test_non_planar_rejected(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0, 0), Point(1, 1, 1))

    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_direction_insensitive_equality(self):
        ab = Segment(Point(0, 0), Point(1, 1))
        ba = Segment(Point(1, 1), Point(0, 0))
        assert ab == ba
        assert hash(ab) == hash(ba)

    def test_point_at_and_midpoint(self):
        s = Segment(Point(0, 0), Point(1, 2))
        assert s.point_at(0.0) == Point(0, 0)
        assert s.point_at(1.0) == Point(1, 2)
        assert s.midpoint() == Point(0.5, 1.0)


class TestClipping:
    def test_fully_inside(self):
        s = Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        assert s.clip_parameters(Rect.unit(2)) == (0.0, 1.0)

    def test_fully_outside(self):
        s = Segment(Point(2, 2), Point(3, 3))
        assert s.clip_parameters(Rect.unit(2)) is None

    def test_crossing(self):
        s = Segment(Point(-0.5, 0.5), Point(1.5, 0.5))
        t0, t1 = s.clip_parameters(Rect.unit(2))
        assert t0 == pytest.approx(0.25)
        assert t1 == pytest.approx(0.75)

    def test_parallel_outside_edge(self):
        s = Segment(Point(-1, 2), Point(2, 2))
        assert s.clip_parameters(Rect.unit(2)) is None

    def test_grazing_corner_intersects_but_does_not_cross(self):
        r = Rect(Point(0, 0), Point(0.5, 0.5))
        s = Segment(Point(0.0, 1.0), Point(1.0, 0.0))  # touches (0.5, 0.5)
        assert s.intersects_rect(r)
        assert not s.crosses_interior(r)

    def test_crosses_interior_positive_overlap(self):
        s = Segment(Point(0.1, 0.1), Point(0.9, 0.9))
        for child in Rect.unit(2).split():
            crossing = s.crosses_interior(child)
            # the diagonal passes through SW and NE, corner-touches the others
            expected = child.contains_point(Point(0.25, 0.25)) or (
                child.contains_point(Point(0.75, 0.75))
            )
            assert crossing == expected

    def test_clip_requires_planar_box(self):
        s = Segment(Point(0, 0), Point(1, 1))
        with pytest.raises(ValueError):
            s.clip_parameters(Rect.unit(3))


class TestIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(0, 1), Point(1, 0))
        assert a.intersection_point(b) == Point(0.5, 0.5)

    def test_non_crossing(self):
        a = Segment(Point(0, 0), Point(0.4, 0.4))
        b = Segment(Point(0, 1), Point(1, 0.9))
        assert a.intersection_point(b) is None

    def test_parallel(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(0, 0.5), Point(1, 0.5))
        assert a.intersection_point(b) is None

    def test_collinear_overlap_returns_none(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(0.5, 0.5), Point(2, 2))
        assert a.intersection_point(b) is None


class TestDistance:
    def test_distance_to_point_on_segment(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(0.5, 0)) == 0.0

    def test_distance_perpendicular(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(0.5, 2)) == 2.0

    def test_distance_past_endpoint(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(4, 4)) == 5.0


class TestProperties:
    @given(segments())
    def test_clip_interval_ordered(self, s):
        params = s.clip_parameters(Rect.unit(2))
        if params is not None:
            t0, t1 = params
            assert 0.0 <= t0 <= t1 <= 1.0

    @given(segments())
    def test_clipped_points_inside_closed_box(self, s):
        params = s.clip_parameters(Rect.unit(2))
        if params is not None:
            for t in params:
                p = s.point_at(t)
                assert -1e-9 <= p.x <= 1 + 1e-9
                assert -1e-9 <= p.y <= 1 + 1e-9

    @given(segments())
    def test_crossing_children_cover_segment(self, s):
        """A segment with interior presence in the unit square crosses
        at least one quadrant."""
        unit = Rect.unit(2)
        if not s.crosses_interior(unit):
            # grazing-only segments (corner touches, far-boundary
            # rides) are outside the half-open square by convention
            return
        children = unit.split()
        crossed = [c for c in children if s.crosses_interior(c)]
        assert crossed

    @given(segments(), segments())
    def test_intersection_symmetric(self, a, b):
        pa = a.intersection_point(b)
        pb = b.intersection_point(a)
        if pa is None or pb is None:
            assert pa is None and pb is None
        else:
            assert pa.distance_to(pb) < 1e-6

    @given(segments())
    def test_endpoints_distance_zero(self, s):
        assert s.distance_to_point(s.a) == pytest.approx(0.0, abs=1e-12)
        assert s.distance_to_point(s.b) == pytest.approx(0.0, abs=1e-12)
