"""Unit tests for the sensitivity-analysis module."""

import numpy as np
import pytest

from repro.core import (
    PMRPopulationModel,
    directional_derivative,
    occupancy_gradient_wrt_matrix,
    pmr_occupancy_error_bar,
    pmr_occupancy_sensitivity,
    transform_matrix,
)


class TestDirectionalDerivative:
    def test_matches_explicit_finite_difference(self):
        T = transform_matrix(2)
        direction = np.zeros_like(T)
        direction[2, 0] = 1.0  # more empties per split

        from repro.core.fixed_point import solve_fixed_point_iteration

        def occ(matrix):
            return solve_fixed_point_iteration(matrix).average_occupancy()

        step = 1e-5
        expected = (occ(T + step * direction) - occ(T - step * direction)) / (
            2 * step
        )
        got = directional_derivative(T, direction, step=step)
        assert got == pytest.approx(expected, rel=1e-6)

    def test_more_empty_children_lowers_occupancy(self):
        T = transform_matrix(3)
        direction = np.zeros_like(T)
        direction[3, 0] = 1.0
        assert directional_derivative(T, direction) < 0

    def test_shape_mismatch(self):
        T = transform_matrix(2)
        with pytest.raises(ValueError):
            directional_derivative(T, np.zeros((2, 2)))

    def test_infeasible_direction(self):
        T = transform_matrix(2)
        direction = np.zeros_like(T)
        direction[0, 0] = -1.0  # T[0,0] is 0: stepping down leaves the cone
        with pytest.raises(ValueError):
            directional_derivative(T, direction, step=1e-3)


class TestGradient:
    def test_gradient_shape_and_signs(self):
        T = transform_matrix(2)
        grad = occupancy_gradient_wrt_matrix(T)
        assert grad.shape == T.shape
        # producing more empty nodes from a split lowers occupancy;
        # producing more full nodes raises it
        assert grad[2, 0] < 0
        assert grad[2, 2] > 0

    def test_gradient_predicts_small_perturbations(self):
        from repro.core.fixed_point import solve_fixed_point_iteration

        T = transform_matrix(2)
        grad = occupancy_gradient_wrt_matrix(T)
        bump = np.zeros_like(T)
        bump[2, 1] = 0.01
        predicted_change = float((grad * bump).sum())
        actual = (
            solve_fixed_point_iteration(T + bump).average_occupancy()
            - solve_fixed_point_iteration(T).average_occupancy()
        )
        assert actual == pytest.approx(predicted_change, rel=0.05)


class TestPMRSensitivity:
    def test_slope_sign(self):
        """Larger p -> more copies per split -> lighter leaves."""
        slope = pmr_occupancy_sensitivity(4, 0.30)
        occ_low = PMRPopulationModel(4, 0.29).average_occupancy()
        occ_high = PMRPopulationModel(4, 0.31).average_occupancy()
        assert (occ_high - occ_low > 0) == (slope > 0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            pmr_occupancy_sensitivity(4, 1.0)
        with pytest.raises(ValueError):
            pmr_occupancy_sensitivity(4, 0.0)

    def test_error_bar(self):
        bar = pmr_occupancy_error_bar(4, 0.30, probability_std=0.01)
        assert bar > 0
        assert bar == pytest.approx(
            abs(pmr_occupancy_sensitivity(4, 0.30)) * 0.01
        )
        assert pmr_occupancy_error_bar(4, 0.30, 0.0) == 0.0
        with pytest.raises(ValueError):
            pmr_occupancy_error_bar(4, 0.30, -0.1)

    def test_error_bar_covers_observed_spread(self):
        """The first-order bar matches the model's actual response to
        a p-shift of one std."""
        p, std = 0.32, 0.02
        bar = pmr_occupancy_error_bar(4, p, std)
        occ = PMRPopulationModel(4, p).average_occupancy()
        occ_shifted = PMRPopulationModel(4, p + std).average_occupancy()
        assert abs(occ_shifted - occ) == pytest.approx(bar, rel=0.2)
