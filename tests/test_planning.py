"""Unit tests for the storage planner."""

import pytest

from repro.core import PopulationModel, StoragePlanner


class TestPlanner:
    def test_buckets_validation(self):
        with pytest.raises(ValueError):
            StoragePlanner(buckets=1)

    def test_model_cached(self):
        planner = StoragePlanner()
        assert planner.model(4) is planner.model(4)

    def test_pages_needed_matches_model(self):
        planner = StoragePlanner()
        assert planner.pages_needed(10_000, 4) == pytest.approx(
            PopulationModel(4).expected_nodes(10_000)
        )
        with pytest.raises(ValueError):
            planner.pages_needed(-1, 4)

    def test_pages_decrease_with_capacity(self):
        planner = StoragePlanner()
        pages = [planner.pages_needed(10_000, m) for m in (1, 2, 4, 8, 16)]
        assert pages == sorted(pages, reverse=True)

    def test_capacity_for_utilization(self):
        planner = StoragePlanner()
        m = planner.capacity_for_utilization(0.52)
        assert planner.utilization(m) >= 0.52
        assert m > 1
        assert planner.utilization(m - 1) < 0.52

    def test_unreachable_utilization(self):
        planner = StoragePlanner()
        with pytest.raises(ValueError):
            planner.capacity_for_utilization(0.9, max_capacity=16)
        with pytest.raises(ValueError):
            planner.capacity_for_utilization(0.0)
        with pytest.raises(ValueError):
            planner.capacity_for_utilization(1.0)

    def test_capacity_for_page_budget(self):
        planner = StoragePlanner()
        m = planner.capacity_for_page_budget(10_000, 5_000)
        assert planner.pages_needed(10_000, m) <= 5_000
        if m > 1:
            assert planner.pages_needed(10_000, m - 1) > 5_000

    def test_impossible_page_budget(self):
        planner = StoragePlanner()
        with pytest.raises(ValueError):
            planner.capacity_for_page_budget(10_000, 10, max_capacity=8)
        with pytest.raises(ValueError):
            planner.capacity_for_page_budget(10, 0)

    def test_warmup_insertions(self):
        planner = StoragePlanner()
        warm = planner.warmup_insertions(2, tolerance=0.05)
        assert warm > 0
        looser = planner.warmup_insertions(2, tolerance=0.2)
        assert looser <= warm

    def test_plan_rows(self):
        planner = StoragePlanner()
        rows = planner.plan(1_000, capacities=(1, 4))
        assert [r["capacity"] for r in rows] == [1, 4]
        for row in rows:
            assert row["pages"] > 0
            assert 0 < row["utilization"] < 1
            assert row["growth"] > 1

    def test_bintree_planner(self):
        quad = StoragePlanner(buckets=4)
        binary = StoragePlanner(buckets=2)
        # bintrees pack tighter: fewer pages for the same data
        assert binary.pages_needed(1_000, 4) < quad.pages_needed(1_000, 4)


class TestCapacityBounds:
    """model() refuses capacities the closed-form model cannot honour."""

    def test_capacity_below_one_rejected(self):
        planner = StoragePlanner()
        for bad in (0, -1, -100):
            with pytest.raises(ValueError, match="capacity"):
                planner.model(bad)

    def test_capacity_above_ceiling_rejected(self):
        from repro.core import MAX_PLANNED_CAPACITY

        planner = StoragePlanner()
        with pytest.raises(ValueError, match="capacity"):
            planner.model(MAX_PLANNED_CAPACITY + 1)

    def test_ceiling_itself_is_accepted(self):
        from repro.core import MAX_PLANNED_CAPACITY

        planner = StoragePlanner()
        model = planner.model(MAX_PLANNED_CAPACITY)
        assert model.capacity == MAX_PLANNED_CAPACITY

    def test_error_message_names_the_bounds(self):
        from repro.core import MAX_PLANNED_CAPACITY

        planner = StoragePlanner()
        with pytest.raises(ValueError) as exc:
            planner.model(MAX_PLANNED_CAPACITY * 10)
        assert str(MAX_PLANNED_CAPACITY) in str(exc.value)

    def test_derived_entry_points_inherit_the_check(self):
        planner = StoragePlanner()
        with pytest.raises(ValueError):
            planner.pages_needed(1_000, 0)
        with pytest.raises(ValueError):
            planner.utilization(-3)
