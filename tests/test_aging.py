"""Unit and integration tests for the aging analysis."""

import numpy as np
import pytest

from repro.core import (
    AreaWeightedModel,
    PopulationModel,
    aging_gradient,
    calibrated_area_model,
    depth_occupancy_table,
    mean_area_by_occupancy,
)
from repro.experiments import run_trials
from repro.quadtree import DepthCensus


def _census(rows, capacity=1):
    return DepthCensus.from_leaves(rows, capacity)


class TestDepthTable:
    def test_single_census(self):
        census = _census([(2, 0), (2, 1), (3, 1)])
        rows = depth_occupancy_table([census])
        assert [r.depth for r in rows] == [2, 3]
        assert rows[0].counts == (1.0, 1.0)
        assert rows[0].occupancy == pytest.approx(0.5)
        assert rows[1].occupancy == pytest.approx(1.0)

    def test_averaging_over_trees(self):
        a = _census([(1, 0), (1, 0)])
        b = _census([(1, 1), (1, 1)])
        rows = depth_occupancy_table([a, b])
        assert rows[0].counts == (1.0, 1.0)
        assert rows[0].nodes == 2.0

    def test_missing_depth_counts_as_zero(self):
        a = _census([(1, 1)])
        b = _census([(2, 1)])
        rows = depth_occupancy_table([a, b])
        assert rows[0].counts == (0.0, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            depth_occupancy_table([])
        with pytest.raises(ValueError):
            depth_occupancy_table([_census([(0, 0)], 1), _census([(0, 0)], 2)])


class TestGradient:
    def test_negative_for_declining_series(self):
        censuses = [_census([(4, 1)] * 8 + [(4, 0)] * 2
                            + [(5, 1)] * 5 + [(5, 0)] * 5
                            + [(6, 1)] * 3 + [(6, 0)] * 7)]
        rows = depth_occupancy_table(censuses)
        assert aging_gradient(rows, min_nodes=1.0) < 0

    def test_excludes_sparse_rows(self):
        censuses = [_census([(4, 1)] * 10 + [(5, 0)] * 10 + [(9, 1)])]
        rows = depth_occupancy_table(censuses)
        slope_all = aging_gradient(rows, min_nodes=0.5)
        slope_filtered = aging_gradient(rows, min_nodes=5.0)
        assert slope_filtered != slope_all

    def test_needs_two_rows(self):
        rows = depth_occupancy_table([_census([(4, 1)] * 10)])
        with pytest.raises(ValueError):
            aging_gradient(rows)


class TestAreaWeights:
    def test_uniform_weights_when_no_bias(self):
        leaves = [(0.25, 0), (0.25, 1), (0.25, 0), (0.25, 1)]
        weights = mean_area_by_occupancy(leaves, capacity=1)
        assert weights == pytest.approx([1.0, 1.0])

    def test_larger_full_nodes_get_heavier_weight(self):
        leaves = [(0.1, 0)] * 4 + [(0.4, 1)] * 4
        weights = mean_area_by_occupancy(leaves, capacity=1)
        assert weights[1] > 1.0 > weights[0]

    def test_unobserved_class_defaults_to_one(self):
        weights = mean_area_by_occupancy([(0.5, 0)], capacity=2)
        assert weights[1] == 1.0 and weights[2] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_area_by_occupancy([], capacity=1)
        with pytest.raises(ValueError):
            mean_area_by_occupancy([(0.1, 5)], capacity=1)


class TestAreaWeightedModel:
    def test_unit_weights_recover_uncorrected_model(self):
        base = PopulationModel(3)
        weighted = AreaWeightedModel(3, np.ones(4))
        assert weighted.expected_distribution() == pytest.approx(
            base.expected_distribution(), abs=1e-9
        )

    def test_aging_weights_lower_occupancy(self):
        """Weights increasing with occupancy (the aging signature) must
        shift the distribution down — the paper's Section IV argument."""
        m = 4
        weights = np.linspace(1.0, 1.5, m + 1)
        corrected = AreaWeightedModel(m, weights)
        base = PopulationModel(m)
        assert corrected.average_occupancy() < base.average_occupancy()
        assert (
            corrected.expected_distribution()[0]
            > base.expected_distribution()[0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaWeightedModel(0, [1.0])
        with pytest.raises(ValueError):
            AreaWeightedModel(1, [1.0])
        with pytest.raises(ValueError):
            AreaWeightedModel(1, [1.0, -1.0])


class TestEndToEnd:
    def test_simulated_aging_is_negative_gradient(self):
        """Table 3's phenomenon: per-depth occupancy declines with depth
        over the well-populated range."""
        trial_set = run_trials(
            1, n_points=1000, trials=5, seed=123, collect_depth=True
        )
        rows = depth_occupancy_table(trial_set.depth_censuses)
        assert aging_gradient(rows, min_nodes=20.0) < 0

    def test_calibrated_correction_moves_toward_experiment(self):
        """The measured-area correction must close part of the gap
        between the uncorrected model and the simulation."""
        m = 4
        trial_set = run_trials(
            m, n_points=1000, trials=5, seed=321, collect_area=True
        )
        base = PopulationModel(m)
        corrected = calibrated_area_model(m, trial_set.area_occupancy)
        experimental = trial_set.mean_occupancy()
        base_gap = abs(base.average_occupancy() - experimental)
        corrected_gap = abs(corrected.average_occupancy() - experimental)
        assert corrected_gap < base_gap

    def test_measured_weights_increase_with_occupancy(self):
        """Aging: nodes with higher occupancy have larger mean area."""
        trial_set = run_trials(
            4, n_points=1000, trials=5, seed=77, collect_area=True
        )
        weights = mean_area_by_occupancy(trial_set.area_occupancy, 4)
        assert weights[-1] > weights[0]
