"""Schema versioning: fresh creation, v1 -> current upgrade with data
preserved, and refusal to open files written by newer code."""

import sqlite3

import pytest

from repro.rundb.repository import RunDB
from repro.rundb.schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    SchemaError,
    _statements,
    migrate,
    schema_version,
)


def _tables(conn) -> set:
    return {
        row[0] for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }


def _build_v1(path) -> None:
    """A database exactly as version-1 code would have left it."""
    conn = sqlite3.connect(str(path))
    for statement in _statements(MIGRATIONS[1]):
        conn.execute(statement)
    conn.execute("PRAGMA user_version = 1")
    conn.execute(
        "INSERT INTO runs (created_unix, kind, label, status) "
        "VALUES (100.0, 'bench', 'legacy run', 'done')"
    )
    conn.execute(
        "INSERT INTO specs (cache_key, capacity, n_points, trials, seed, "
        "generator, spec_json) VALUES ('k1', 4, 1000, 10, 7, 'uniform', '{}')"
    )
    conn.execute(
        "INSERT INTO trial_results (run_id, spec_id, engine, workers, "
        "cache_hit, wall_s, trials, mean_occupancy, count_sums) "
        "VALUES (1, 1, 'object', 1, 0, 0.5, 10, 1.93, '[]')"
    )
    conn.execute(
        "INSERT INTO bench_stages (run_id, stage, stage_wall_s) "
        "VALUES (1, 'census', 0.25)"
    )
    conn.commit()
    conn.close()


class TestFreshDatabase:
    def test_created_at_current_version(self, tmp_path):
        with RunDB(tmp_path / "runs.sqlite") as db:
            conn = db.connect()
            assert schema_version(conn) == SCHEMA_VERSION
            assert {"runs", "specs", "trial_results", "bench_stages",
                    "spans", "counters", "gauges", "autotune",
                    "drift_samples"} <= _tables(conn)

    def test_migrate_idempotent(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunDB(path):
            pass
        conn = sqlite3.connect(str(path))
        assert migrate(conn) == SCHEMA_VERSION
        assert migrate(conn) == SCHEMA_VERSION
        conn.close()


class TestUpgradeFromV1:
    def test_round_trip_preserves_rows(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        _build_v1(path)
        with RunDB(path) as db:
            assert db.schema_version == SCHEMA_VERSION
            run = db.run(1)
            assert run["label"] == "legacy run"
            assert run["stages"][0]["stage"] == "census"
            assert run["stages"][0]["stage_wall_s"] == pytest.approx(0.25)
            assert run["trials"][0]["mean_occupancy"] == pytest.approx(1.93)
            # the v2 tables arrived and are usable
            assert db.get_chunk_size("object", 1000, 2) is None
            db.set_chunk_size("object", 1000, 2, 8)
            assert db.get_chunk_size("object", 1000, 2) == 8
            db.record_drift(1, 0, {
                "n_points": 500, "actual_pages": 40, "page_error": 0.01,
                "occupancy_error": -0.02, "armed": True, "alarm": False,
            })
            assert db.run(1)["drift"]["samples"] == 1

    def test_upgrade_stamps_user_version(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        _build_v1(path)
        with RunDB(path) as db:
            db.connect()
        conn = sqlite3.connect(str(path))
        assert schema_version(conn) == SCHEMA_VERSION
        conn.close()


class TestFutureVersion:
    def test_refuses_newer_file(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaError, match="newer than this code"):
            RunDB(path).connect()

    def test_refusal_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaError):
            RunDB(path).connect()
        conn = sqlite3.connect(str(path))
        assert schema_version(conn) == 99
        assert _tables(conn) == set()
        conn.close()


class TestMigrationMechanics:
    def test_statements_split(self):
        statements = list(_statements("CREATE TABLE a (x);\n"
                                      "CREATE INDEX i ON a (x);"))
        assert statements == ["CREATE TABLE a (x)",
                              "CREATE INDEX i ON a (x)"]

    def test_migrations_cover_every_version(self):
        assert sorted(MIGRATIONS) == list(range(1, SCHEMA_VERSION + 1))
