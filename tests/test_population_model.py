"""Unit tests for PopulationModel and ModelComparison."""

import numpy as np
import pytest

from repro.core import PopulationModel
from repro.experiments import paper_data


class TestConstruction:
    def test_defaults_are_quadtree(self):
        model = PopulationModel(capacity=2)
        assert model.capacity == 2
        assert model.buckets == 4

    def test_dim_sets_buckets(self):
        assert PopulationModel(1, dim=3).buckets == 8
        assert PopulationModel(1, dim=1).buckets == 2

    def test_buckets_override(self):
        assert PopulationModel(1, buckets=2).buckets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationModel(0)
        with pytest.raises(ValueError):
            PopulationModel(1, dim=0)
        with pytest.raises(ValueError):
            PopulationModel(1, buckets=1)

    def test_transform_is_copy(self):
        model = PopulationModel(2)
        T = model.transform
        T[0, 0] = 99.0
        assert model.transform[0, 0] == 0.0


class TestPredictions:
    def test_m1_analytic(self):
        model = PopulationModel(1)
        assert model.expected_distribution() == pytest.approx([0.5, 0.5])
        assert model.average_occupancy() == pytest.approx(0.5)
        assert model.growth_rate() == pytest.approx(3.0)

    @pytest.mark.parametrize("m", range(1, 9))
    def test_matches_paper_table1_theory(self, m):
        """Our solved e equals the paper's Table 1 theory row to the
        3 decimals the paper prints."""
        model = PopulationModel(m)
        assert model.expected_distribution() == pytest.approx(
            paper_data.TABLE1_THEORY[m], abs=0.0015
        )

    @pytest.mark.parametrize("m", range(1, 9))
    def test_matches_paper_table2_theory(self, m):
        model = PopulationModel(m)
        assert model.average_occupancy() == pytest.approx(
            paper_data.TABLE2[m][1], abs=0.01
        )

    def test_solver_choice_equivalent(self):
        for method in ("iteration", "eigen", "newton"):
            model = PopulationModel(5, method=method)
            assert model.average_occupancy() == pytest.approx(2.6356, abs=1e-3)

    def test_expected_nodes(self):
        model = PopulationModel(1)
        assert model.expected_nodes(1000) == pytest.approx(2000.0)
        with pytest.raises(ValueError):
            model.expected_nodes(-1)

    def test_post_split_occupancy(self):
        assert PopulationModel(1).post_split_occupancy() == pytest.approx(0.4)

    def test_recursion_probability(self):
        assert PopulationModel(2).recursion_probability() == pytest.approx(
            1 / 16
        )

    def test_steady_state_cached(self):
        model = PopulationModel(3)
        assert model.steady_state() is model.steady_state()

    def test_analytic_helper(self):
        state = PopulationModel.analytic_m1(4)
        assert state.distribution == pytest.approx([0.5, 0.5])


class TestModelComparison:
    def test_against_paper_experiment(self):
        model = PopulationModel(4)
        comparison = model.compare_with_census(
            paper_data.TABLE1_EXPERIMENT[4]
        )
        # theory over-predicts occupancy (aging) by the paper's ~11.6%
        assert comparison.occupancy_difference() > 0
        assert comparison.percent_difference() == pytest.approx(
            paper_data.TABLE2[4][2], abs=3.0
        )

    def test_identical_vectors(self):
        model = PopulationModel(2)
        comparison = model.compare_with_census(model.expected_distribution())
        assert comparison.max_abs_difference() == 0.0
        assert comparison.total_variation() == 0.0
        assert comparison.occupancy_difference() == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PopulationModel(2).compare_with_census([0.5, 0.5])

    def test_total_variation_bounds(self):
        model = PopulationModel(3)
        comparison = model.compare_with_census([1.0, 0.0, 0.0, 0.0])
        assert 0.0 < comparison.total_variation() <= 1.0

    def test_zero_observed_occupancy_raises(self):
        model = PopulationModel(1)
        comparison = model.compare_with_census([1.0, 0.0])
        with pytest.raises(ValueError):
            comparison.percent_difference()


class TestOtherFanouts:
    def test_bintree_occupancy_below_quadtree(self):
        """A binary split spreads m+1 points over 2 children instead of
        4, so bintree nodes run fuller."""
        for m in (1, 2, 4, 8):
            quad = PopulationModel(m, buckets=4).average_occupancy()
            binary = PopulationModel(m, buckets=2).average_occupancy()
            assert binary > quad

    def test_octree_occupancy_below_quadtree(self):
        for m in (1, 2, 4, 8):
            quad = PopulationModel(m, buckets=4).average_occupancy()
            octo = PopulationModel(m, buckets=8).average_occupancy()
            assert octo < quad

    def test_growth_rate_tracks_fanout(self):
        """a is near b for large m (a full node makes ~b nodes)."""
        for b in (2, 4, 8):
            model = PopulationModel(8, buckets=b)
            a = model.growth_rate()
            assert 1.0 < a
            e_full = model.expected_distribution()[-1]
            # a = 1 + e_m * (rowsum_m - 1); rowsum_m is slightly > b
            assert a == pytest.approx(1 + e_full * (
                (b ** 9 - 1) / (b ** 8 - 1) - 1
            ), rel=1e-6)
