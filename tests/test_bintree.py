"""Unit and property tests for the PR bintree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import PRBintree
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=50, unique=True)


def build(pts, capacity=1, **kwargs):
    tree = PRBintree(capacity=capacity, **kwargs)
    tree.insert_many(pts)
    return tree


class TestBasics:
    def test_defaults(self):
        tree = PRBintree()
        assert tree.capacity == 1
        assert tree.fanout == 2
        assert tree.leaf_count() == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PRBintree(capacity=0)

    def test_first_split_is_on_x(self):
        tree = build([Point(0.1, 0.5), Point(0.9, 0.5)])
        assert tree.leaf_count() == 2
        rects = sorted(
            (r for r, _, _ in tree.leaves()), key=lambda r: r.lo.x
        )
        assert rects[0] == Rect(Point(0, 0), Point(0.5, 1))
        assert rects[1] == Rect(Point(0.5, 0), Point(1, 1))

    def test_axes_alternate(self):
        # points identical in x, differing in y: needs an x split (no
        # separation) followed by a y split.
        tree = build([Point(0.1, 0.1), Point(0.1, 0.9)])
        assert tree.height() == 2
        tree.validate()

    def test_two_levels_equal_one_quadtree_split(self):
        """After 2 binary levels a block is quartered like one 4-way split."""
        pts = [Point(0.1, 0.1), Point(0.9, 0.1), Point(0.1, 0.9), Point(0.9, 0.9)]
        tree = build(pts)
        assert tree.leaf_count() == 4
        assert tree.height() == 2
        assert {r for r, _, _ in tree.leaves()} == set(Rect.unit(2).split())

    def test_duplicate_rejected(self):
        tree = PRBintree()
        assert tree.insert(Point(0.5, 0.5))
        assert not tree.insert(Point(0.5, 0.5))

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            PRBintree().insert(Point(2, 2))

    def test_max_depth_overflow(self):
        tree = PRBintree(capacity=1, max_depth=2)
        tree.insert_many([Point(0.01, 0.01), Point(0.02, 0.02), Point(0.03, 0.03)])
        assert tree.height() <= 2
        tree.validate()
        census = tree.occupancy_census()
        assert census.counts[-1] >= 1
        with pytest.raises(ValueError):
            tree.occupancy_census(clamp_overflow=False)

    def test_range_search(self):
        pts = UniformPoints(seed=0).generate(200)
        tree = build(pts, capacity=3)
        query = Rect(Point(0.2, 0.2), Point(0.6, 0.6))
        assert set(tree.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    def test_census_and_depth_census(self):
        pts = UniformPoints(seed=1).generate(300)
        tree = build(pts, capacity=2)
        assert tree.occupancy_census().total_items == 300
        assert tree.depth_census().flatten().counts == tree.occupancy_census().counts


class TestProperties:
    @given(point_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_membership_and_invariants(self, pts, capacity):
        tree = build(pts, capacity=capacity)
        assert len(tree) == len(pts)
        for p in pts:
            assert p in tree
        tree.validate()

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_leaves_tile_unit_square(self, pts):
        tree = build(pts, capacity=2)
        leaves = [r for r, _, _ in tree.leaves()]
        assert abs(sum(r.volume for r in leaves) - 1.0) < 1e-9
        for i, a in enumerate(leaves):
            for b in leaves[i + 1 :]:
                assert not a.intersects(b)

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_bintree_no_deeper_than_twice_quadtree(self, pts):
        """Round-robin binary splits refine exactly the quadtree grid:
        2 bintree levels = 1 quadtree level, so heights relate by <= 2x
        (+1 for the odd half-step)."""
        from repro.quadtree import PRQuadtree

        bin_tree = build(pts, capacity=1)
        quad_tree = PRQuadtree(capacity=1)
        quad_tree.insert_many(pts)
        if pts:
            assert bin_tree.height() <= 2 * quad_tree.height() + 1
