"""Unit and property tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def planar_points():
    return st.builds(Point, finite, finite)


class TestConstruction:
    def test_coords_stored_as_floats(self):
        p = Point(1, 2)
        assert p.coords == (1.0, 2.0)
        assert all(isinstance(c, float) for c in p.coords)

    def test_dim(self):
        assert Point(1.0).dim == 1
        assert Point(1.0, 2.0).dim == 2
        assert Point(1.0, 2.0, 3.0).dim == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Point()

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Point(float("nan"), 0.0)

    def test_of_builds_from_iterable(self):
        assert Point.of([0.5, 0.25]) == Point(0.5, 0.25)

    def test_x_y_accessors(self):
        p = Point(0.25, 0.75)
        assert p.x == 0.25 and p.y == 0.75

    def test_y_on_1d_point_raises(self):
        with pytest.raises(AttributeError):
            Point(1.0).y


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1.0, 2.0))

    def test_inequality_different_dim(self):
        assert Point(1.0) != Point(1.0, 0.0)

    def test_not_equal_to_tuple(self):
        assert Point(1, 2) != (1.0, 2.0)

    def test_usable_in_sets(self):
        assert len({Point(0, 0), Point(0.0, 0.0), Point(1, 0)}) == 2

    def test_indexing_iter_len(self):
        p = Point(3.0, 4.0)
        assert p[0] == 3.0 and p[1] == 4.0
        assert list(p) == [3.0, 4.0]
        assert len(p) == 2

    def test_repr_round_trips(self):
        p = Point(0.125, -2.5)
        assert eval(repr(p)) == p


class TestMetrics:
    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_manhattan(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == 7.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).distance_to(Point(1.0))

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(1, 1)) == Point(0.5, 0.5)

    def test_translated(self):
        assert Point(1, 1).translated([0.5, -0.5]) == Point(1.5, 0.5)

    def test_translated_wrong_length(self):
        with pytest.raises(ValueError):
            Point(1, 1).translated([1.0])

    def test_scaled(self):
        assert Point(1, -2).scaled(2.0) == Point(2, -4)

    def test_dominates(self):
        assert Point(2, 2).dominates(Point(1, 2))
        assert not Point(2, 1).dominates(Point(1, 2))


class TestProperties:
    @given(planar_points(), planar_points())
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(planar_points(), planar_points())
    def test_distance_nonnegative_and_identity(self, a, b):
        assert a.distance_to(b) >= 0.0
        assert a.distance_to(a) == 0.0

    @given(planar_points(), planar_points(), planar_points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(planar_points(), planar_points())
    def test_squared_distance_consistent(self, a, b):
        assert math.sqrt(a.squared_distance_to(b)) == pytest.approx(
            a.distance_to(b)
        )

    @given(planar_points(), planar_points())
    def test_midpoint_equidistant(self, a, b):
        mid = a.midpoint(b)
        assert mid.distance_to(a) == pytest.approx(mid.distance_to(b), abs=1e-6)

    @given(planar_points())
    def test_hash_consistent_with_eq(self, p):
        q = Point(*p.coords)
        assert p == q and hash(p) == hash(q)
