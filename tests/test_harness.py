"""Unit tests for the experiment harness."""

import pytest

from repro.experiments import (
    build_tree,
    gaussian_factory,
    occupancy_vs_size,
    run_trials,
    uniform_factory,
)
from repro.geometry import Point, Rect
from repro.workloads import UniformPoints


class TestBuildTree:
    def test_builds_with_all_points(self):
        pts = UniformPoints(seed=0).generate(100)
        tree = build_tree(pts, capacity=2)
        assert len(tree) == 100
        tree.validate()

    def test_max_depth_forwarded(self):
        pts = UniformPoints(seed=1).generate(200)
        tree = build_tree(pts, capacity=1, max_depth=3)
        assert tree.height() <= 3

    def test_bounds_forwarded(self):
        bounds = Rect(Point(-1, -1), Point(1, 1))
        gen = UniformPoints(bounds=bounds, seed=2)
        tree = build_tree(gen.generate(50), capacity=2, bounds=bounds)
        assert tree.bounds == bounds


class TestRunTrials:
    def test_trial_count(self):
        trial_set = run_trials(2, n_points=100, trials=3, seed=0)
        assert trial_set.trials == 3
        assert trial_set.capacity == 2
        assert trial_set.n_points == 100

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(1, trials=0)

    def test_deterministic(self):
        a = run_trials(2, n_points=200, trials=3, seed=5)
        b = run_trials(2, n_points=200, trials=3, seed=5)
        assert a.mean_proportions() == b.mean_proportions()
        assert a.mean_occupancy() == b.mean_occupancy()

    def test_different_seeds_differ(self):
        a = run_trials(2, n_points=200, trials=3, seed=5)
        b = run_trials(2, n_points=200, trials=3, seed=6)
        assert a.mean_proportions() != b.mean_proportions()

    def test_proportions_normalized(self):
        trial_set = run_trials(3, n_points=300, trials=4, seed=1)
        assert sum(trial_set.mean_proportions()) == pytest.approx(1.0)

    def test_collect_depth(self):
        trial_set = run_trials(
            1, n_points=100, trials=2, seed=2, collect_depth=True
        )
        assert len(trial_set.depth_censuses) == 2

    def test_collect_area(self):
        trial_set = run_trials(
            1, n_points=100, trials=2, seed=3, collect_area=True
        )
        assert trial_set.area_occupancy
        total_area_per_tree = sum(a for a, _ in trial_set.area_occupancy) / 2
        assert total_area_per_tree == pytest.approx(1.0)

    def test_gaussian_factory(self):
        trial_set = run_trials(
            2, n_points=200, trials=2, seed=4,
            generator_factory=gaussian_factory(),
        )
        assert trial_set.mean_occupancy() > 0

    def test_nothing_collected_by_default(self):
        trial_set = run_trials(1, n_points=50, trials=1, seed=0)
        assert trial_set.depth_censuses == []
        assert trial_set.area_occupancy == []


class TestOccupancySweep:
    def test_sweep_shape(self):
        sweep = occupancy_vs_size(4, [32, 64, 128], trials=2, seed=0)
        assert [p.n_points for p in sweep] == [32, 64, 128]
        for point in sweep:
            assert point.mean_nodes > 0
            assert 0 < point.mean_occupancy <= 4

    def test_nodes_grow_with_n(self):
        sweep = occupancy_vs_size(4, [64, 256, 1024], trials=3, seed=1)
        nodes = [p.mean_nodes for p in sweep]
        assert nodes == sorted(nodes)

    def test_deterministic(self):
        a = occupancy_vs_size(4, [64, 128], trials=2, seed=7)
        b = occupancy_vs_size(4, [64, 128], trials=2, seed=7)
        assert a == b

    def test_uniform_factory_default_equivalent(self):
        a = occupancy_vs_size(2, [64], trials=2, seed=3)
        b = occupancy_vs_size(
            2, [64], trials=2, seed=3, generator_factory=uniform_factory()
        )
        assert a == b


class TestTrialSetMerge:
    def test_merge_equals_one_big_run(self):
        whole = run_trials(2, n_points=100, trials=6, seed=10,
                           collect_depth=True, collect_area=True)
        first = run_trials(2, n_points=100, trials=3, seed=10,
                           collect_depth=True, collect_area=True)
        second = run_trials(2, n_points=100, trials=3, seed=13,
                            collect_depth=True, collect_area=True)
        first.merge(second)
        assert first.trials == whole.trials
        assert first.mean_proportions() == whole.mean_proportions()
        assert first.mean_occupancy() == whole.mean_occupancy()
        assert first.mean_nodes() == whole.mean_nodes()
        assert first.depth_censuses == whole.depth_censuses
        assert first.area_occupancy == whole.area_occupancy

    def test_merge_capacity_mismatch(self):
        a = run_trials(2, n_points=50, trials=1, seed=0)
        b = run_trials(3, n_points=50, trials=1, seed=0)
        with pytest.raises(ValueError, match="capacity mismatch"):
            a.merge(b)

    def test_merge_n_points_mismatch(self):
        a = run_trials(2, n_points=50, trials=1, seed=0)
        b = run_trials(2, n_points=60, trials=1, seed=0)
        with pytest.raises(ValueError, match="n_points mismatch"):
            a.merge(b)


class TestSpecLowering:
    def test_default_factory_lowers_to_uniform(self):
        from repro.experiments import spec_for

        spec = spec_for(2, n_points=100, trials=3, seed=1)
        assert spec.generator == "uniform"
        assert spec.trials == 3

    def test_tagged_factories_lower(self):
        from repro.experiments import spec_for

        for factory, name in [
            (uniform_factory(), "uniform"),
            (gaussian_factory(), "gaussian"),
        ]:
            spec = spec_for(2, generator_factory=factory)
            assert spec.generator == name

    def test_factory_bounds_become_generator_bounds(self):
        from repro.experiments import spec_for

        bounds = Rect(Point(0, 0), Point(2, 2))
        spec = spec_for(2, generator_factory=uniform_factory(bounds))
        assert spec.generator_bounds == ((0.0, 0.0), (2.0, 2.0))
        assert spec.bounds is None

    def test_untagged_callable_cannot_lower(self):
        from repro.experiments import spec_for

        assert spec_for(2, generator_factory=lambda s: None) is None


class TestSweepStride:
    """Regression: sizes in a sweep must draw from disjoint seed blocks
    even when ``trials`` exceeds the historical fixed stride of 1,000."""

    def test_stride_floor_preserves_historical_seeds(self):
        from repro.experiments.harness import sweep_stride

        assert sweep_stride(1) == 1_000
        assert sweep_stride(10) == 1_000
        assert sweep_stride(1_000) == 1_000

    def test_stride_grows_with_trials(self):
        from repro.experiments.harness import sweep_stride

        assert sweep_stride(1_001) == 1_001
        assert sweep_stride(2_500) == 2_500

    def _captured_seeds(self, monkeypatch, trials):
        from repro.experiments import harness

        seeds = []

        def fake_run_trials(capacity, **kwargs):
            seeds.append(kwargs["seed"])

            class _Fake:
                def mean_nodes(self):
                    return 1.0

                def mean_occupancy(self):
                    return 0.5

            return _Fake()

        monkeypatch.setattr(harness, "run_trials", fake_run_trials)
        harness.occupancy_vs_size(
            2, sizes=[10, 20, 30], trials=trials, seed=0
        )
        return seeds

    def test_small_sweeps_keep_historical_seed_blocks(self, monkeypatch):
        assert self._captured_seeds(monkeypatch, 10) == [0, 1_000, 2_000]

    def test_large_sweeps_get_disjoint_seed_blocks(self, monkeypatch):
        seeds = self._captured_seeds(monkeypatch, 1_500)
        assert seeds == [0, 1_500, 3_000]
        # no trial seed (seed .. seed+trials-1) is shared between sizes
        blocks = [set(range(s, s + 1_500)) for s in seeds]
        assert not (blocks[0] & blocks[1])
        assert not (blocks[1] & blocks[2])
