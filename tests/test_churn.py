"""Unit and integration tests for churn workloads."""

import numpy as np
import pytest

from repro.excell import Excell
from repro.gridfile import GridFile
from repro.quadtree import PRQuadtree, bulk_load
from repro.workloads import DELETE, INSERT, ChurnWorkload, apply_churn


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnWorkload(size=0)
        with pytest.raises(ValueError):
            list(ChurnWorkload(size=1, seed=0).operations(-1))

    def test_warmup_then_churn(self):
        workload = ChurnWorkload(size=10, seed=0)
        ops = list(workload.operations(5))
        assert len(ops) == 10 + 2 * 5
        assert all(op == INSERT for op, _ in ops[:10])
        churn = ops[10:]
        assert [op for op, _ in churn] == [DELETE, INSERT] * 5

    def test_live_set_tracks_operations(self):
        workload = ChurnWorkload(size=20, seed=1)
        live = set()
        for op, p in workload.operations(30):
            if op == INSERT:
                live.add(p)
            else:
                live.remove(p)
        assert set(workload.live_points) == live
        assert len(live) == 20

    def test_deletes_only_live_points(self):
        workload = ChurnWorkload(size=5, seed=2)
        live = set()
        for op, p in workload.operations(50):
            if op == INSERT:
                assert p not in live
                live.add(p)
            else:
                assert p in live
                live.remove(p)

    def test_deterministic(self):
        a = list(ChurnWorkload(size=10, seed=3).operations(10))
        b = list(ChurnWorkload(size=10, seed=3).operations(10))
        assert a == b


class TestApplyChurn:
    def test_pr_quadtree_churn_equals_fresh_build(self):
        """The PR structure is a function of the live set alone, so a
        churned tree is leaf-for-leaf the fresh build of its survivors
        — the steady state trivially survives churn."""
        workload = ChurnWorkload(size=300, seed=4)
        tree = PRQuadtree(capacity=4)
        apply_churn(tree, workload, churn_steps=600)
        tree.validate()
        fresh = bulk_load(workload.live_points, capacity=4)
        assert sorted(
            (r.lo.coords, r.hi.coords, occ) for r, _, occ in tree.leaves()
        ) == sorted(
            (r.lo.coords, r.hi.coords, occ) for r, _, occ in fresh.leaves()
        )

    def test_gridfile_survives_churn(self):
        workload = ChurnWorkload(size=200, seed=5)
        grid = GridFile(bucket_capacity=4)
        apply_churn(grid, workload, churn_steps=400)
        grid.validate()
        assert len(grid) == 200
        assert set(grid.points()) == set(workload.live_points)

    def test_excell_survives_churn(self):
        workload = ChurnWorkload(size=200, seed=6)
        cells = Excell(bucket_capacity=4)
        apply_churn(cells, workload, churn_steps=400)
        cells.validate()
        assert len(cells) == 200

    def test_history_dependence_contrast(self):
        """Grid file scales never retract: after heavy churn its
        directory is at least as refined as a fresh build's, while the
        PR quadtree's leaf count is exactly the fresh build's."""
        workload = ChurnWorkload(size=200, seed=7)
        grid = GridFile(bucket_capacity=4)
        apply_churn(grid, workload, churn_steps=1000)
        fresh = GridFile(bucket_capacity=4)
        fresh.insert_many(workload.live_points)
        assert grid.directory_size() >= fresh.directory_size()

    def test_losing_structure_detected(self):
        class Amnesiac:
            def insert(self, p):
                return True

            def delete(self, p):
                return False  # claims the point was never there

        with pytest.raises(AssertionError):
            apply_churn(Amnesiac(), ChurnWorkload(size=2, seed=8), 1)
