"""Unit and property tests for repro.quadtree.census."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quadtree import CensusAccumulator, DepthCensus, OccupancyCensus


def censuses(capacity=4):
    return st.builds(
        lambda counts: OccupancyCensus(tuple(counts)),
        st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=capacity + 1,
            max_size=capacity + 1,
        ).filter(lambda c: sum(c) > 0),
    )


class TestOccupancyCensus:
    def test_from_occupancies(self):
        census = OccupancyCensus.from_occupancies([0, 1, 1, 2], capacity=2)
        assert census.counts == (1, 2, 1)

    def test_from_occupancies_out_of_range(self):
        with pytest.raises(ValueError):
            OccupancyCensus.from_occupancies([3], capacity=2)
        with pytest.raises(ValueError):
            OccupancyCensus.from_occupancies([-1], capacity=2)

    def test_from_occupancies_array_fast_path(self):
        import numpy as np

        census = OccupancyCensus.from_occupancies(
            np.array([0, 1, 1, 2]), capacity=2
        )
        assert census.counts == (1, 2, 1)
        # plain Python ints, not numpy scalars (JSON-serializable)
        assert all(type(c) is int for c in census.counts)

    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=200)
    )
    def test_array_and_list_paths_agree(self, occupancies):
        import numpy as np

        from_list = OccupancyCensus.from_occupancies(occupancies, capacity=6)
        from_array = OccupancyCensus.from_occupancies(
            np.array(occupancies, dtype=np.int64), capacity=6
        )
        assert from_list == from_array

    def test_array_out_of_range_message_matches_list_path(self):
        import numpy as np

        with pytest.raises(ValueError, match=r"occupancy 5 outside 0\.\.2"):
            OccupancyCensus.from_occupancies(
                np.array([1, 5, 0]), capacity=2
            )
        with pytest.raises(ValueError, match=r"occupancy -1 outside 0\.\.2"):
            OccupancyCensus.from_occupancies(np.array([-1]), capacity=2)

    def test_empty_array(self):
        import numpy as np

        census = OccupancyCensus.from_occupancies(np.array([]), capacity=3)
        assert census.counts == (0, 0, 0, 0)

    def test_float_array_rejected(self):
        import numpy as np

        with pytest.raises(TypeError, match="integers"):
            OccupancyCensus.from_occupancies(
                np.array([1.0, 2.0]), capacity=3
            )

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            OccupancyCensus(())

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            OccupancyCensus((1, -1))

    def test_totals(self):
        census = OccupancyCensus((2, 3, 1))
        assert census.capacity == 2
        assert census.total_nodes == 6
        assert census.total_items == 3 + 2

    def test_proportions_sum_to_one(self):
        census = OccupancyCensus((2, 3, 1))
        assert sum(census.proportions()) == pytest.approx(1.0)

    def test_proportions_empty_raises(self):
        with pytest.raises(ValueError):
            OccupancyCensus((0, 0)).proportions()

    def test_average_occupancy(self):
        census = OccupancyCensus((1, 0, 1))  # one empty, one with 2
        assert census.average_occupancy() == 1.0

    def test_storage_utilization(self):
        census = OccupancyCensus((0, 0, 4))  # four full capacity-2 nodes
        assert census.storage_utilization() == 1.0

    def test_merged_with(self):
        a = OccupancyCensus((1, 2))
        b = OccupancyCensus((3, 4))
        assert a.merged_with(b).counts == (4, 6)

    def test_merged_capacity_mismatch(self):
        with pytest.raises(ValueError):
            OccupancyCensus((1, 2)).merged_with(OccupancyCensus((1, 2, 3)))

    @given(censuses(), censuses())
    def test_merge_preserves_totals(self, a, b):
        merged = a.merged_with(b)
        assert merged.total_nodes == a.total_nodes + b.total_nodes
        assert merged.total_items == a.total_items + b.total_items

    @given(censuses())
    def test_average_occupancy_bounded_by_capacity(self, census):
        assert 0.0 <= census.average_occupancy() <= census.capacity


class TestDepthCensus:
    def test_from_leaves(self):
        census = DepthCensus.from_leaves([(0, 1), (1, 0), (1, 1)], capacity=1)
        assert census.depths() == [0, 1]
        assert census.counts_at(0) == (0, 1)
        assert census.counts_at(1) == (1, 1)
        assert census.counts_at(5) == (0, 0)

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            DepthCensus.from_leaves([(-1, 0)], capacity=1)
        with pytest.raises(ValueError):
            DepthCensus.from_leaves([(0, 2)], capacity=1)

    def test_average_occupancy_at(self):
        census = DepthCensus.from_leaves([(2, 0), (2, 1), (2, 1)], capacity=1)
        assert census.average_occupancy_at(2) == pytest.approx(2 / 3)

    def test_average_occupancy_empty_depth_raises(self):
        census = DepthCensus.from_leaves([(0, 0)], capacity=1)
        with pytest.raises(ValueError):
            census.average_occupancy_at(3)

    def test_flatten(self):
        census = DepthCensus.from_leaves(
            [(0, 1), (1, 0), (2, 1)], capacity=1
        )
        flat = census.flatten()
        assert flat.counts == (1, 2)

    def test_nodes_at(self):
        census = DepthCensus.from_leaves([(1, 0), (1, 1)], capacity=2)
        assert census.nodes_at(1) == 2
        assert census.nodes_at(9) == 0


class TestCensusAccumulator:
    def test_running_average(self):
        acc = CensusAccumulator(capacity=1)
        acc.add(OccupancyCensus((2, 2)))
        acc.add(OccupancyCensus((4, 0)))
        assert acc.trials == 2
        assert acc.mean_counts() == (3.0, 1.0)
        assert acc.mean_total_nodes() == 4.0

    def test_mean_proportions_pooled(self):
        acc = CensusAccumulator(capacity=1)
        acc.add(OccupancyCensus((1, 3)))
        acc.add(OccupancyCensus((3, 1)))
        assert acc.mean_proportions() == (0.5, 0.5)

    def test_mean_occupancy_pooled(self):
        acc = CensusAccumulator(capacity=2)
        acc.add(OccupancyCensus((0, 0, 2)))  # 4 items / 2 nodes
        acc.add(OccupancyCensus((2, 0, 0)))  # 0 items / 2 nodes
        assert acc.mean_occupancy() == 1.0

    def test_capacity_mismatch(self):
        acc = CensusAccumulator(capacity=1)
        with pytest.raises(ValueError):
            acc.add(OccupancyCensus((1, 1, 1)))

    def test_no_trials_raises(self):
        acc = CensusAccumulator(capacity=1)
        with pytest.raises(ValueError):
            acc.mean_counts()
        with pytest.raises(ValueError):
            acc.mean_proportions()

    @given(st.lists(censuses(), min_size=1, max_size=10))
    def test_pooled_equals_merged(self, batch):
        """Accumulating censuses matches merging then normalizing."""
        acc = CensusAccumulator(capacity=batch[0].capacity)
        merged = batch[0]
        acc.add(batch[0])
        for census in batch[1:]:
            acc.add(census)
            merged = merged.merged_with(census)
        assert acc.mean_proportions() == pytest.approx(merged.proportions())
        assert acc.mean_occupancy() == pytest.approx(merged.average_occupancy())


class TestAccumulatorMerge:
    """CensusAccumulator.merge — the parallel harness's combine step."""

    def _accumulate(self, census_list, capacity=4):
        acc = CensusAccumulator(capacity)
        for census in census_list:
            acc.add(census)
        return acc

    def test_merge_equals_sequential_add(self):
        all_censuses = [
            OccupancyCensus((1, 2, 3, 0, 1)),
            OccupancyCensus((0, 0, 5, 2, 2)),
            OccupancyCensus((4, 1, 0, 0, 3)),
            OccupancyCensus((2, 2, 2, 2, 2)),
        ]
        sequential = self._accumulate(all_censuses)
        left = self._accumulate(all_censuses[:2])
        right = self._accumulate(all_censuses[2:])
        left.merge(right)
        assert left.trials == sequential.trials
        assert left.count_sums == sequential.count_sums
        assert left.mean_proportions() == sequential.mean_proportions()
        assert left.mean_occupancy() == sequential.mean_occupancy()
        assert left.mean_total_nodes() == sequential.mean_total_nodes()

    @given(
        st.lists(censuses(), min_size=3, max_size=9),
        st.data(),
    )
    def test_merge_associative(self, census_list, data):
        """(A + B) + C == A + (B + C) == sequential, for any split."""
        i = data.draw(st.integers(0, len(census_list)))
        j = data.draw(st.integers(i, len(census_list)))
        a = self._accumulate(census_list[:i])
        b = self._accumulate(census_list[i:j])
        c = self._accumulate(census_list[j:])
        left_first = self._accumulate(census_list[:i])
        left_first.merge(b)
        left_first.merge(c)
        bc = self._accumulate(census_list[i:j])
        bc.merge(c)
        right_first = self._accumulate(census_list[:i])
        right_first.merge(bc)
        sequential = self._accumulate(census_list)
        assert (
            left_first.count_sums
            == right_first.count_sums
            == sequential.count_sums
        )
        assert left_first.trials == right_first.trials == sequential.trials

    def test_merge_empty_is_identity(self):
        acc = self._accumulate([OccupancyCensus((1, 0, 2, 0, 1))])
        before = (acc.count_sums, acc.trials)
        acc.merge(CensusAccumulator(4))
        assert (acc.count_sums, acc.trials) == before

    def test_merge_capacity_mismatch(self):
        with pytest.raises(ValueError, match="capacity mismatch"):
            CensusAccumulator(4).merge(CensusAccumulator(3))

    def test_count_sums_snapshot(self):
        acc = self._accumulate([OccupancyCensus((1, 2, 0, 0, 0))])
        sums = acc.count_sums
        acc.add(OccupancyCensus((0, 0, 0, 0, 9)))
        assert sums == (1.0, 2.0, 0.0, 0.0, 0.0)
