"""Tests for the arbitrary-density statistical model."""

import numpy as np
import pytest

from repro.core import (
    Density,
    TruncatedGaussianDensity,
    UniformDensity,
    density_average_occupancy,
    density_expected_leaf_census,
    fagin,
)
from repro.experiments import run_trials
from repro.geometry import Point, Rect


class TestDensities:
    def test_uniform_masses(self):
        u = UniformDensity()
        assert u.block_mass(u.bounds) == pytest.approx(1.0)
        for child in u.bounds.split():
            assert u.block_mass(child) == pytest.approx(0.25)

    def test_gaussian_masses_sum_to_one(self):
        g = TruncatedGaussianDensity()
        children = g.bounds.split()
        assert sum(g.block_mass(c) for c in children) == pytest.approx(1.0)

    def test_gaussian_center_heavier_than_corner(self):
        g = TruncatedGaussianDensity(sigma_fraction=0.3)
        center = Rect(Point(0.375, 0.375), Point(0.625, 0.625))
        corner = Rect(Point(0.0, 0.0), Point(0.25, 0.25))
        assert g.block_mass(center) > g.block_mass(corner)

    def test_gaussian_additivity(self):
        g = TruncatedGaussianDensity()
        block = Rect(Point(0.25, 0.25), Point(0.5, 0.5))
        children_mass = sum(g.block_mass(c) for c in block.split())
        assert children_mass == pytest.approx(g.block_mass(block))

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            TruncatedGaussianDensity(sigma_fraction=0.0)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            Density().block_mass(Rect.unit(2))


class TestUniformReduction:
    @pytest.mark.parametrize("n,m", [(50, 2), (200, 4), (1000, 8)])
    def test_matches_fagin_exactly(self, n, m):
        """With a uniform density, the descent reproduces the closed
        per-depth computation of the fagin module."""
        ours = density_average_occupancy(n, m, UniformDensity())
        reference = fagin.average_occupancy(n, m)
        assert ours == pytest.approx(reference, rel=1e-6)

    def test_census_matches_fagin(self):
        census = density_expected_leaf_census(300, 4, UniformDensity())
        reference = np.sum(
            list(fagin.expected_leaf_profile(300, 4).values()), axis=0
        )
        assert census == pytest.approx(reference, rel=1e-6)

    def test_tiny_n_is_root_leaf(self):
        census = density_expected_leaf_census(2, 4, UniformDensity())
        assert census[2] == 1.0
        assert census.sum() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            density_expected_leaf_census(-1, 4, UniformDensity())
        with pytest.raises(ValueError):
            density_expected_leaf_census(10, 0, UniformDensity())


class TestGaussianModel:
    def test_matches_gaussian_simulation(self):
        """The analytic Gaussian census lands on the simulated one."""
        from repro.experiments.harness import gaussian_factory

        n, m = 362, 8
        analytic = density_average_occupancy(
            n, m, TruncatedGaussianDensity(), eps=1e-7
        )
        trials = run_trials(
            m, n_points=n, trials=10, seed=5,
            generator_factory=gaussian_factory(),
        )
        assert analytic == pytest.approx(trials.mean_occupancy(), rel=0.05)

    def test_conserves_points(self):
        n, m = 256, 8
        census = density_expected_leaf_census(
            n, m, TruncatedGaussianDensity(), eps=1e-9
        )
        assert float(census @ np.arange(m + 1)) == pytest.approx(n, rel=1e-4)

    def test_damping_is_analytic(self):
        """The Gaussian curve's swing between the n=256 crest region
        and n=512 trough region is smaller than the uniform curve's —
        damping derived, not simulated."""
        g = TruncatedGaussianDensity()
        u = UniformDensity()
        swing_g = abs(
            density_average_occupancy(256, 8, g, eps=1e-7)
            - density_average_occupancy(512, 8, g, eps=1e-7)
        )
        swing_u = abs(
            density_average_occupancy(256, 8, u, eps=1e-7)
            - density_average_occupancy(512, 8, u, eps=1e-7)
        )
        assert swing_g < swing_u
