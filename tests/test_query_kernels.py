"""Batch query kernels: bit-identical parity with the object engines.

The :class:`repro.kernels.QueryKernel` claims its batched range,
k-NN, and partial-match answers are the *same answers* an object tree
returns — same points, same order after the canonical sort — across
structures, dimensions, duplicates, and degenerate windows.  These
tests pin that claim, plus the partial-match visit accounting the
scaling-law experiment depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.excell import Excell
from repro.geometry import Point, Rect
from repro.gridfile import GridFile
from repro.kernels import QueryKernel
from repro.obs import Tracer, tracing
from repro.quadtree import PointQuadtree, PRQuadtree
from repro.workloads import UniformPoints
from repro.workloads.queries import QueryWorkload


def canonical(points, dim):
    """Object-engine answers in the kernel's canonical (lexicographic)
    order, as an (k, dim) array."""
    arr = np.array([tuple(p) for p in points], dtype=np.float64)
    arr = arr.reshape(len(points), dim)
    if arr.shape[0] > 1:
        keys = tuple(arr[:, a] for a in range(dim - 1, -1, -1))
        arr = arr[np.lexsort(keys)]
    return arr


def as_points(arr):
    return [Point(*row) for row in arr]


@pytest.fixture(scope="module")
def dataset_2d():
    return UniformPoints(dim=2, seed=42).generate_array(600)


@pytest.fixture(scope="module")
def kernel_2d(dataset_2d):
    return QueryKernel.build(dataset_2d, capacity=4, dim=2)


@pytest.fixture(scope="module")
def tree_2d(dataset_2d):
    tree = PRQuadtree(capacity=4)
    tree.insert_many(as_points(dataset_2d))
    return tree


class TestRangeParity:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_matches_pr_quadtree_across_dims(self, dim):
        pts = UniformPoints(dim=dim, seed=7).generate_array(400)
        tree = PRQuadtree(capacity=4, dim=dim)
        tree.insert_many(as_points(pts))
        kernel = QueryKernel.build(pts, capacity=4, dim=dim)
        rects = QueryWorkload(dim=dim, seed=3).range_rects(40, side=0.3)
        answers = kernel.batch_range(rects)
        for rect, got in zip(rects, answers):
            expected = canonical(tree.range_search(rect), dim)
            assert np.array_equal(expected, got)

    def test_matches_point_quadtree_gridfile_excell(self, dataset_2d,
                                                    kernel_2d):
        structures = [
            PointQuadtree(),
            GridFile(bucket_capacity=4),
            Excell(bucket_capacity=4),
        ]
        for s in structures:
            s.insert_many(as_points(dataset_2d))
        rects = QueryWorkload(dim=2, seed=5).range_rects(25, side=0.2)
        answers = kernel_2d.batch_range(rects)
        for rect, got in zip(rects, answers):
            for s in structures:
                expected = canonical(s.range_search(rect), 2)
                assert np.array_equal(expected, got), type(s).__name__

    def test_empty_and_outside_windows(self, kernel_2d, tree_2d):
        rects = [
            # fully outside the root
            Rect(Point(2.0, 2.0), Point(3.0, 3.0)),
            Rect(Point(-5.0, -5.0), Point(-1.0, -1.0)),
            # sliver overlapping the root edge
            Rect(Point(0.999999999, 0.0), Point(2.0, 1.0)),
            # near-degenerate window
            Rect(Point(0.5, 0.5), Point(0.5 + 1e-12, 0.5 + 1e-12)),
        ]
        answers = kernel_2d.batch_range(rects)
        for rect, got in zip(rects, answers):
            expected = canonical(tree_2d.range_search(rect), 2)
            assert np.array_equal(expected, got)
            assert got.shape[1] == 2

    def test_window_covering_everything(self, dataset_2d, kernel_2d):
        [got] = kernel_2d.batch_range(
            [Rect(Point(-1.0, -1.0), Point(2.0, 2.0))]
        )
        assert got.shape[0] == dataset_2d.shape[0]

    def test_half_open_boundary_semantics(self):
        pts = np.array([[0.25, 0.25], [0.5, 0.5], [0.75, 0.75]])
        kernel = QueryKernel.build(pts, capacity=1, dim=2)
        # hi corner is exclusive, lo corner inclusive
        [got] = kernel.batch_range([Rect(Point(0.25, 0.25),
                                         Point(0.5, 0.5))])
        assert np.array_equal(got, np.array([[0.25, 0.25]]))

    def test_duplicate_input_points_are_dropped(self):
        base = UniformPoints(dim=2, seed=11).generate_array(50)
        doubled = np.concatenate([base, base])
        kernel = QueryKernel.build(doubled, capacity=2, dim=2)
        assert kernel.size == 50
        [got] = kernel.batch_range([Rect.unit(2)])
        assert got.shape[0] == 50

    @settings(max_examples=30, deadline=None)
    @given(
        lox=st.floats(0.0, 0.9), loy=st.floats(0.0, 0.9),
        w=st.floats(1e-6, 1.0), h=st.floats(1e-6, 1.0),
    )
    def test_random_windows_property(self, dataset_2d, kernel_2d,
                                     tree_2d, lox, loy, w, h):
        rect = Rect(Point(lox, loy), Point(lox + w, loy + h))
        [got] = kernel_2d.batch_range([rect])
        expected = canonical(tree_2d.range_search(rect), 2)
        assert np.array_equal(expected, got)


class TestKnnParity:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_pr_quadtree(self, dim, k):
        pts = UniformPoints(dim=dim, seed=13).generate_array(300)
        tree = PRQuadtree(capacity=4, dim=dim)
        tree.insert_many(as_points(pts))
        kernel = QueryKernel.build(pts, capacity=4, dim=dim)
        queries = QueryWorkload(dim=dim, seed=17).knn_points(30)
        answers = kernel.batch_knn(queries, k=k)
        for q, got in zip(queries, answers):
            expected = tree.nearest(Point(*q), k)
            expected = np.array(
                [tuple(p) for p in expected], dtype=np.float64
            ).reshape(-1, dim)
            # order-sensitive: nearest returns (distance, lex) order
            assert np.array_equal(expected, got)

    def test_matches_gridfile_and_excell(self, dataset_2d, kernel_2d):
        grid = GridFile(bucket_capacity=4)
        grid.insert_many(as_points(dataset_2d))
        cells = Excell(bucket_capacity=4)
        cells.insert_many(as_points(dataset_2d))
        queries = QueryWorkload(dim=2, seed=19).knn_points(20)
        answers = kernel_2d.batch_knn(queries, k=5)
        for q, got in zip(queries, answers):
            for s in (grid, cells):
                expected = np.array(
                    [tuple(p) for p in s.nearest(Point(*q), 5)],
                    dtype=np.float64,
                ).reshape(-1, 2)
                assert np.array_equal(expected, got), type(s).__name__

    def test_k_exceeding_leaf_capacity_and_size(self, dataset_2d):
        kernel = QueryKernel.build(dataset_2d, capacity=1, dim=2)
        tree = PRQuadtree(capacity=1)
        tree.insert_many(as_points(dataset_2d))
        q = np.array([[0.31, 0.62]])
        # k far above the leaf capacity
        [got] = kernel.batch_knn(q, k=50)
        expected = np.array(
            [tuple(p) for p in tree.nearest(Point(0.31, 0.62), 50)]
        )
        assert np.array_equal(expected, got)
        # k above the stored size: everything, fully ordered
        [got] = kernel.batch_knn(q, k=10000)
        assert got.shape[0] == dataset_2d.shape[0]
        expected = np.array(
            [tuple(p) for p in tree.nearest(Point(0.31, 0.62), 10000)]
        )
        assert np.array_equal(expected, got)

    def test_queries_outside_root(self, kernel_2d, tree_2d):
        queries = np.array([[-3.0, 0.5], [1.7, 1.7], [0.5, 99.0]])
        answers = kernel_2d.batch_knn(queries, k=4)
        for q, got in zip(queries, answers):
            expected = np.array(
                [tuple(p) for p in tree_2d.nearest(Point(*q), 4)]
            )
            assert np.array_equal(expected, got)

    def test_exact_distance_ties_break_lexicographically(self):
        # four points equidistant from the query center
        pts = np.array([
            [0.25, 0.5], [0.75, 0.5], [0.5, 0.25], [0.5, 0.75],
        ])
        kernel = QueryKernel.build(pts, capacity=1, dim=2)
        tree = PRQuadtree(capacity=1)
        tree.insert_many(as_points(pts))
        [got] = kernel.batch_knn(np.array([[0.5, 0.5]]), k=3)
        expected = np.array(
            [tuple(p) for p in tree.nearest(Point(0.5, 0.5), 3)]
        )
        assert np.array_equal(expected, got)
        # lexicographic order among the equidistant
        assert np.array_equal(
            got, np.array([[0.25, 0.5], [0.5, 0.25], [0.5, 0.75]])
        )


class TestPartialMatchParity:
    @pytest.mark.parametrize("dim,axes", [
        (2, (0,)), (2, (1,)), (3, (0,)), (3, (0, 2)), (3, (1,)),
    ])
    @pytest.mark.parametrize("capacity", [1, 4])
    def test_matches_and_visit_counts(self, dim, axes, capacity):
        pts = UniformPoints(dim=dim, seed=23).generate_array(300)
        tree = PRQuadtree(capacity=capacity, dim=dim)
        tree.insert_many(as_points(pts))
        kernel = QueryKernel.build(pts, capacity=capacity, dim=dim)
        # half random values (no matches), half stored coordinates
        # (guaranteed matches)
        random_vals = QueryWorkload(dim=dim, seed=29).partial_match_values(
            10, axes
        )
        stored_vals = pts[:10][:, list(axes)]
        vals = np.concatenate([random_vals, stored_vals])
        result = kernel.batch_partial_match(axes, vals)
        for i, row in enumerate(vals):
            stats = {}
            expected = tree.partial_match(
                dict(zip(axes, row)), stats=stats
            )
            assert np.array_equal(
                canonical(expected, dim), result.matches[i]
            )
            # the kernel's cost accounting is the object walk's, exactly
            assert stats["nodes"] == result.nodes_visited[i]
            assert stats["leaves"] == result.leaves_visited[i]
            assert stats["scanned"] == result.points_scanned[i]
        # the stored-coordinate half found its points
        assert all(
            result.matches[10 + j].shape[0] >= 1 for j in range(10)
        )

    def test_out_of_root_value_visits_nothing(self, kernel_2d, tree_2d):
        result = kernel_2d.batch_partial_match((0,), [[4.2]])
        assert result.matches[0].shape == (0, 2)
        assert result.nodes_visited[0] == 0
        stats = {}
        assert tree_2d.partial_match({0: 4.2}, stats=stats) == []
        assert stats["nodes"] == 0

    def test_validation(self, kernel_2d):
        with pytest.raises(ValueError):
            kernel_2d.batch_partial_match((), [[]])
        with pytest.raises(ValueError):
            kernel_2d.batch_partial_match((0, 0), [[0.1, 0.2]])
        with pytest.raises(ValueError):
            kernel_2d.batch_partial_match((5,), [[0.1]])
        with pytest.raises(ValueError):
            kernel_2d.batch_partial_match((0,), [[0.1, 0.2]])


class TestKernelSurface:
    def test_build_validation(self):
        with pytest.raises(ValueError):
            QueryKernel.build([], capacity=0)
        with pytest.raises(ValueError):
            QueryKernel.build([Point(2.0, 2.0)])  # outside unit bounds

    def test_empty_kernel(self):
        kernel = QueryKernel.build([], capacity=4, dim=2)
        assert kernel.size == 0
        [r] = kernel.batch_range([Rect.unit(2)])
        assert r.shape == (0, 2)
        [n] = kernel.batch_knn(np.array([[0.5, 0.5]]), k=3)
        assert n.shape == (0, 2)
        pm = kernel.batch_partial_match((0,), [[0.5]])
        assert pm.matches[0].shape == (0, 2)

    def test_obs_counters(self, dataset_2d):
        kernel = QueryKernel.build(dataset_2d, capacity=4, dim=2)
        rects = QueryWorkload(dim=2, seed=31).range_rects(8, side=0.2)
        tracer = Tracer()
        with tracing(tracer):
            kernel.batch_range(rects)
            kernel.batch_knn(np.array([[0.5, 0.5]]), k=3)
            kernel.batch_partial_match((0,), [[0.25]])
        counters = tracer.counters
        assert counters["kernel.query.range"] == 8
        assert counters["kernel.query.knn"] == 1
        assert counters["kernel.query.partial_match"] == 1
        assert counters["kernel.query.pm_nodes"] >= 1
        spans = tracer.to_dict()["spans"]
        assert "kernel.query.range" in spans
        assert "kernel.query.knn" in spans
        assert "kernel.query.partial_match" in spans


class TestObjectPartialMatch:
    """The object walker added alongside the kernel."""

    def test_brute_force_equivalence(self, dataset_2d, tree_2d):
        # fix x to each of a few stored values
        for x in dataset_2d[:5, 0]:
            expected = sorted(
                tuple(p) for p in as_points(dataset_2d)
                if p.coords[0] == x
            )
            got = sorted(
                tuple(p) for p in tree_2d.partial_match({0: float(x)})
            )
            assert got == expected and len(got) >= 1

    def test_validation(self, tree_2d):
        with pytest.raises(ValueError):
            tree_2d.partial_match({})
        with pytest.raises(ValueError):
            tree_2d.partial_match({7: 0.5})
