"""Unit and property tests for the classical point quadtree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import PointQuadtree
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.001, max_value=0.999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=50, unique=True)


def build(pts):
    tree = PointQuadtree()
    tree.insert_many(pts)
    return tree


class TestBasics:
    def test_empty(self):
        tree = PointQuadtree()
        assert len(tree) == 0
        assert tree.height() == -1
        assert not tree.contains(Point(0.5, 0.5))
        tree.validate()

    def test_non_planar_bounds_rejected(self):
        with pytest.raises(ValueError):
            PointQuadtree(bounds=Rect.unit(3))

    def test_first_point_is_root(self):
        tree = build([Point(0.5, 0.5)])
        assert len(tree) == 1
        assert tree.height() == 0

    def test_duplicate_rejected(self):
        tree = PointQuadtree()
        assert tree.insert(Point(0.5, 0.5))
        assert not tree.insert(Point(0.5, 0.5))
        assert len(tree) == 1

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            PointQuadtree().insert(Point(1.5, 0.5))

    def test_partition_is_data_defined(self):
        tree = build([Point(0.5, 0.5), Point(0.7, 0.7), Point(0.2, 0.2)])
        assert len(tree) == 3
        assert tree.height() == 1
        tree.validate()

    def test_shape_depends_on_insertion_order(self):
        """The paper: 'the shape of the final structure depends
        critically on the order in which the information was inserted'."""
        pts = [Point(0.1, 0.1), Point(0.5, 0.5), Point(0.9, 0.9)]
        chain = build(pts)  # each point in the previous one's NE quadrant
        balanced = build([pts[1], pts[0], pts[2]])
        assert chain.height() == 2
        assert balanced.height() == 1


class TestQueries:
    def test_contains(self):
        pts = UniformPoints(seed=0).generate(100)
        tree = build(pts)
        for p in pts:
            assert tree.contains(p)
        assert not tree.contains(Point(0.123456, 0.654321))

    def test_range_search(self):
        pts = UniformPoints(seed=1).generate(200)
        tree = build(pts)
        query = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        assert set(tree.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    def test_nearest(self):
        pts = UniformPoints(seed=2).generate(150)
        tree = build(pts)
        q = Point(0.37, 0.61)
        best = min(pts, key=lambda p: p.distance_to(q))
        assert tree.nearest(q) == [best]

    def test_nearest_k_ordering(self):
        pts = UniformPoints(seed=3).generate(50)
        tree = build(pts)
        q = Point(0.5, 0.5)
        got = tree.nearest(q, k=5)
        dists = [p.distance_to(q) for p in got]
        assert dists == sorted(dists)
        brute = sorted(pts, key=lambda p: p.distance_to(q))[:5]
        assert got == brute

    def test_nearest_empty(self):
        assert PointQuadtree().nearest(Point(0.5, 0.5)) == []

    def test_nearest_invalid_k(self):
        with pytest.raises(ValueError):
            PointQuadtree().nearest(Point(0.5, 0.5), k=0)

    def test_points_iterates_all(self):
        pts = UniformPoints(seed=4).generate(80)
        tree = build(pts)
        assert set(tree.points()) == set(pts)


class TestProperties:
    @given(point_lists)
    @settings(max_examples=50, deadline=None)
    def test_membership_and_invariants(self, pts):
        tree = build(pts)
        assert len(tree) == len(pts)
        for p in pts:
            assert tree.contains(p)
        tree.validate()

    @given(point_lists, points)
    @settings(max_examples=50, deadline=None)
    def test_nearest_matches_brute_force(self, pts, q):
        tree = build(pts)
        got = tree.nearest(q)
        if not pts:
            assert got == []
        else:
            assert got[0].distance_to(q) == min(
                p.distance_to(q) for p in pts
            )

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_height_bounded_by_size(self, pts):
        tree = build(pts)
        if pts:
            assert tree.height() <= len(pts) - 1
