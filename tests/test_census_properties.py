"""Algebraic laws of census merging, across every census producer.

The parallel harness splits trials across workers and merges partial
censuses/accumulators; that is only sound if merging is associative
and commutative and behaves identically no matter which structure
(PR quadtree, grid file, EXCELL, extendible hashing) produced the
censuses.  These tests pin the laws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.excell import Excell
from repro.gridfile import GridFile
from repro.hashing import ExtendibleHashing
from repro.quadtree import CensusAccumulator, OccupancyCensus, PRQuadtree
from repro.workloads import UniformPoints

CAPACITY = 4


def _census_from(name, seed, n):
    structure = MAKERS[name]()
    pts = UniformPoints(seed=seed).generate(n)
    if name == "hashing":  # key/value store, not a point structure
        for i, p in enumerate(pts):
            structure.insert(p.coords, i)
    else:
        for p in pts:
            structure.insert(p)
    return structure.occupancy_census()


MAKERS = {
    "pr_quadtree": lambda: PRQuadtree(capacity=CAPACITY),
    "gridfile": lambda: GridFile(bucket_capacity=CAPACITY),
    "excell": lambda: Excell(bucket_capacity=CAPACITY),
    "hashing": lambda: ExtendibleHashing(bucket_capacity=CAPACITY),
}


@pytest.fixture(scope="module", params=sorted(MAKERS))
def censuses(request):
    """Three same-capacity censuses from one structure family."""
    return tuple(
        _census_from(request.param, seed, n)
        for seed, n in ((1, 60), (2, 90), (3, 40))
    )


class TestMergedWithLaws:
    def test_commutative(self, censuses):
        a, b, _ = censuses
        assert a.merged_with(b) == b.merged_with(a)

    def test_associative(self, censuses):
        a, b, c = censuses
        assert a.merged_with(b).merged_with(c) == a.merged_with(
            b.merged_with(c)
        )

    def test_identity(self, censuses):
        a, _, _ = censuses
        zero = OccupancyCensus(tuple([0] * (CAPACITY + 1)))
        assert a.merged_with(zero) == a

    def test_totals_add(self, censuses):
        a, b, _ = censuses
        merged = a.merged_with(b)
        assert merged.total_nodes == a.total_nodes + b.total_nodes
        assert merged.total_items == a.total_items + b.total_items

    def test_capacity_mismatch_rejected(self, censuses):
        a, _, _ = censuses
        other = OccupancyCensus((1, 2))
        with pytest.raises(ValueError):
            a.merged_with(other)


class TestAccumulatorMergeLaws:
    def _acc(self, *censuses):
        acc = CensusAccumulator(capacity=CAPACITY)
        for c in censuses:
            acc.add(c)
        return acc

    def test_merge_commutative(self, censuses):
        a, b, c = censuses
        left = self._acc(a)
        left.merge(self._acc(b, c))
        right = self._acc(b, c)
        right.merge(self._acc(a))
        assert left.count_sums == right.count_sums
        assert left.trials == right.trials

    def test_merge_associative(self, censuses):
        a, b, c = censuses
        abc = self._acc(a)
        bc = self._acc(b)
        bc.merge(self._acc(c))
        abc.merge(bc)

        ab = self._acc(a)
        ab.merge(self._acc(b))
        ab.merge(self._acc(c))
        assert abc.count_sums == ab.count_sums
        assert abc.trials == ab.trials

    def test_merge_equals_sequential_adds(self, censuses):
        a, b, c = censuses
        sequential = self._acc(a, b, c)
        merged = self._acc(a)
        merged.merge(self._acc(b, c))
        assert merged.count_sums == sequential.count_sums
        assert merged.mean_proportions() == sequential.mean_proportions()
        assert merged.mean_occupancy() == sequential.mean_occupancy()

    def test_merge_capacity_mismatch_rejected(self, censuses):
        acc = self._acc(censuses[0])
        with pytest.raises(ValueError):
            acc.merge(CensusAccumulator(capacity=CAPACITY + 1))


class TestCrossStructureAgreement:
    def test_pooling_is_structure_blind(self):
        """Merging censuses from different structures obeys the same
        arithmetic as pooling their leaf lists directly."""
        censuses = [
            _census_from(name, seed=5, n=70)
            for name in sorted(MAKERS)
        ]
        merged = censuses[0]
        for c in censuses[1:]:
            merged = merged.merged_with(c)
        assert merged.total_nodes == sum(c.total_nodes for c in censuses)
        assert merged.total_items == sum(c.total_items for c in censuses)
        for i in range(CAPACITY + 1):
            assert merged.counts[i] == sum(c.counts[i] for c in censuses)

    def test_accumulator_accepts_every_structure(self):
        acc = CensusAccumulator(capacity=CAPACITY)
        for name in sorted(MAKERS):
            acc.add(_census_from(name, seed=8, n=50))
        assert acc.trials == len(MAKERS)
        assert sum(acc.count_sums) > 0


@settings(max_examples=25, deadline=None)
@given(
    counts_a=st.lists(
        st.integers(min_value=0, max_value=50),
        min_size=CAPACITY + 1, max_size=CAPACITY + 1,
    ),
    counts_b=st.lists(
        st.integers(min_value=0, max_value=50),
        min_size=CAPACITY + 1, max_size=CAPACITY + 1,
    ),
    counts_c=st.lists(
        st.integers(min_value=0, max_value=50),
        min_size=CAPACITY + 1, max_size=CAPACITY + 1,
    ),
)
def test_merge_laws_hold_for_arbitrary_censuses(counts_a, counts_b, counts_c):
    a = OccupancyCensus(tuple(counts_a))
    b = OccupancyCensus(tuple(counts_b))
    c = OccupancyCensus(tuple(counts_c))
    assert a.merged_with(b) == b.merged_with(a)
    assert a.merged_with(b).merged_with(c) == a.merged_with(b.merged_with(c))
