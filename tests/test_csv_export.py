"""Unit tests for the CSV exporters."""

import csv
import io

from repro.experiments import (
    occupancy_vs_size,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    write_phasing_csv,
    write_sweep_csv,
    write_table1_csv,
    write_table2_csv,
    write_table3_csv,
)


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestWriters:
    def test_table1_csv(self):
        rows = run_table1(trials=1, n_points=200, capacities=(1, 2))
        out = io.StringIO()
        write_table1_csv(rows, out)
        parsed = parse(out.getvalue())
        assert parsed[0][:4] == ["capacity", "occupancy", "theory", "experiment"]
        # 2 classes for m=1 plus 3 for m=2
        assert len(parsed) == 1 + 2 + 3
        assert parsed[1][0] == "1"
        assert float(parsed[1][2]) > 0

    def test_table2_csv(self):
        rows = run_table2(trials=1, n_points=200, capacities=(3,))
        out = io.StringIO()
        write_table2_csv(rows, out)
        parsed = parse(out.getvalue())
        assert len(parsed) == 2
        assert parsed[1][0] == "3"
        assert float(parsed[1][2]) > 1.0  # theoretical occupancy for m=3

    def test_table3_csv(self):
        result = run_table3(trials=1, n_points=300, seed=0)
        out = io.StringIO()
        write_table3_csv(result, out)
        parsed = parse(out.getvalue())
        assert parsed[0][0] == "depth"
        assert parsed[0][-1] == "post_split_floor"
        assert len(parsed) == 1 + len(result.rows)
        assert float(parsed[1][-1]) == 0.4

    def test_phasing_csv(self):
        rows = run_table4(trials=1, sizes=[64, 128])
        out = io.StringIO()
        write_phasing_csv(rows, out)
        parsed = parse(out.getvalue())
        assert [r[0] for r in parsed[1:]] == ["64", "128"]
        assert float(parsed[1][4]) == 3.79  # paper occupancy at n=64

    def test_sweep_csv(self):
        points = occupancy_vs_size(2, [32, 64], trials=1, seed=1)
        out = io.StringIO()
        write_sweep_csv(points, out)
        parsed = parse(out.getvalue())
        assert parsed[0] == ["points", "mean_nodes", "mean_occupancy"]
        assert len(parsed) == 3

    def test_round_trip_values(self):
        """Values survive CSV round trip at the written precision."""
        rows = run_table2(trials=1, n_points=200, capacities=(2,))
        out = io.StringIO()
        write_table2_csv(rows, out)
        parsed = parse(out.getvalue())
        assert float(parsed[1][1]) == round(rows[0].experimental, 6)
