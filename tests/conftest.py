"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the runtime's default result cache at a per-test temp dir
    so tests never read from or write to the user's real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(autouse=True)
def _isolated_run_db(monkeypatch):
    """Disable run-database recording by default so tests invoking CLI
    entry points never touch the user's real runs.sqlite.  Tests that
    exercise recording opt back in by deleting REPRO_NO_DB and setting
    REPRO_DB (or passing --db) to a temp path."""
    monkeypatch.setenv("REPRO_NO_DB", "1")
    monkeypatch.delenv("REPRO_DB", raising=False)
