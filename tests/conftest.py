"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the runtime's default result cache at a per-test temp dir
    so tests never read from or write to the user's real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
