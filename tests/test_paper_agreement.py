"""Integration tests: the reproduction agrees with the paper.

These run the paper's actual protocol (scaled where noted) and assert
the qualitative and quantitative signatures the paper reports:

- Table 1: theory rows match to print precision; experiment rows are
  near the paper's (different RNG, same distribution).
- Table 2: theory uniformly over-predicts occupancy (aging), in the
  paper's 4-13% band.
- Table 3: per-depth occupancy decays toward the post-split floor 0.4,
  with the depth-9 truncation anomaly.
- Table 4 / Figure 2: uniform-data occupancy oscillates with period x4
  and does not damp.
- Table 5 / Figure 3: Gaussian-data oscillation is weaker/damps.
"""

import numpy as np
import pytest

from repro.core import (
    PopulationModel,
    damping_ratio,
    fit_oscillation,
    oscillation_period,
)
from repro.experiments import (
    paper_data,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

TRIALS = 5  # half the paper's 10, enough for the signatures
SEED = 20260707


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(trials=TRIALS, seed=SEED)


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(trials=TRIALS, seed=SEED)


@pytest.fixture(scope="module")
def table4_rows():
    return run_table4(trials=TRIALS, seed=SEED)


@pytest.fixture(scope="module")
def table5_rows():
    return run_table5(trials=TRIALS, seed=SEED)


class TestTable1Agreement:
    def test_theory_rows_match_paper_print(self, table1_rows):
        for row in table1_rows:
            assert row.theory == pytest.approx(
                paper_data.TABLE1_THEORY[row.capacity], abs=0.0015
            ), f"theory mismatch at m={row.capacity}"

    def test_experiment_rows_near_paper(self, table1_rows):
        """Componentwise within 0.04 of the paper's experimental rows
        (different random points; the paper's own trees varied ~10%)."""
        for row in table1_rows:
            paper = np.asarray(paper_data.TABLE1_EXPERIMENT[row.capacity])
            ours = np.asarray(row.experiment)
            assert np.max(np.abs(paper - ours)) < 0.04, (
                f"experiment mismatch at m={row.capacity}: {ours} vs {paper}"
            )

    def test_experimental_distribution_unimodal(self, table1_rows):
        for row in table1_rows:
            if row.capacity < 3:
                continue
            e = np.asarray(row.experiment)
            peak = int(np.argmax(e))
            assert 0 < peak < row.capacity


class TestTable2Agreement:
    def test_theory_column_matches_paper(self, table2_rows):
        for row in table2_rows:
            assert row.theoretical == pytest.approx(
                row.paper_theoretical, abs=0.015
            )

    def test_aging_overprediction(self, table2_rows):
        """'the theoretical occupancy predictions are slightly, but
        uniformly higher than the experimental values'."""
        for row in table2_rows:
            assert row.percent_difference > 0, (
                f"m={row.capacity}: theory did not over-predict"
            )

    def test_discrepancy_in_paper_band(self, table2_rows):
        """The paper's percent differences run 4.4-12.9%."""
        for row in table2_rows:
            assert 1.0 < row.percent_difference < 18.0

    def test_experimental_column_near_paper(self, table2_rows):
        for row in table2_rows:
            assert row.experimental == pytest.approx(
                row.paper_experimental, rel=0.06
            )


class TestTable3Agreement:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(trials=TRIALS, seed=SEED)

    def test_occupancy_decreases_with_depth(self, result):
        """Table 3: 0.75, 0.54, 0.44, 0.39, ... at depths 4-7."""
        rows = {r.depth: r for r in result.rows}
        well_populated = [
            rows[d] for d in sorted(rows) if rows[d].nodes >= 20
        ][:4]
        occupancies = [r.occupancy for r in well_populated]
        assert occupancies == sorted(occupancies, reverse=True)

    def test_decays_toward_post_split_floor(self, result):
        """Depths 7-8 sit near the 0.40 floor."""
        rows = {r.depth: r for r in result.rows}
        for depth in (7, 8):
            if depth in rows and rows[depth].nodes >= 10:
                assert rows[depth].occupancy == pytest.approx(0.40, abs=0.06)

    def test_paper_row_values_close(self, result):
        paper = {row[0]: row[3] for row in paper_data.TABLE3}
        ours = {r.depth: r.occupancy for r in result.rows}
        for depth in (5, 6, 7):
            assert ours[depth] == pytest.approx(paper[depth], abs=0.05)


class TestPhasingAgreement:
    def test_uniform_oscillates_with_period_four(self, table4_rows):
        sizes = [r.n_points for r in table4_rows]
        occ = [r.occupancy for r in table4_rows]
        period = oscillation_period(sizes, occ)
        assert period == pytest.approx(4.0, rel=0.25)

    def test_uniform_amplitude_substantial(self, table4_rows):
        """Paper's Table 4 swings ~3.3 to ~4.15 (amplitude ~0.4)."""
        sizes = [r.n_points for r in table4_rows]
        occ = [r.occupancy for r in table4_rows]
        fit = fit_oscillation(sizes, occ)
        assert fit.amplitude > 0.15
        assert fit.mean == pytest.approx(3.7, abs=0.25)

    def test_uniform_matches_paper_pointwise(self, table4_rows):
        """Same protocol, same sizes: each occupancy within 0.5 of the
        paper's (small-n rows at 5 trials carry ~0.2-0.4 of noise; the
        benchmark run at the paper's full 10 trials is tighter)."""
        for row in table4_rows:
            assert row.occupancy == pytest.approx(
                row.paper_occupancy, abs=0.5
            )

    def test_gaussian_damps_relative_to_uniform(
        self, table4_rows, table5_rows
    ):
        """Figure 3's signature: the Gaussian series' late-half
        oscillation is weaker than the uniform one's."""
        u_sizes = [r.n_points for r in table4_rows]
        u_occ = [r.occupancy for r in table4_rows]
        g_sizes = [r.n_points for r in table5_rows]
        g_occ = [r.occupancy for r in table5_rows]
        uniform_late = fit_oscillation(u_sizes[6:], u_occ[6:]).amplitude
        gaussian_late = fit_oscillation(g_sizes[6:], g_occ[6:]).amplitude
        assert gaussian_late < uniform_late

    def test_gaussian_occupancy_flatter(self, table5_rows):
        """Paper's Table 5 spans only 3.46-4.15 and settles ~3.7."""
        occ = [r.occupancy for r in table5_rows]
        later = occ[6:]
        assert max(later) - min(later) < 0.45

    def test_node_counts_track_paper(self, table4_rows):
        for row in table4_rows:
            assert row.nodes == pytest.approx(row.paper_nodes, rel=0.15)


class TestModelVsExperimentConsistency:
    def test_model_explains_experiment_within_aging_band(self, table2_rows):
        """End to end: for every m, simulation occupancy sits below the
        model's prediction by at most ~18% — aging is a correction, not
        a refutation."""
        for row in table2_rows:
            model = PopulationModel(row.capacity)
            predicted = model.average_occupancy()
            assert row.experimental < predicted
            assert row.experimental > 0.8 * predicted
