"""Nearest-neighbor parity across structures, plus the analytic
per-depth occupancy (Table 3 from exact statistics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fagin import occupancy_by_depth
from repro.core.transform import post_split_average_occupancy
from repro.excell import Excell
from repro.geometry import Point
from repro.gridfile import GridFile
from repro.quadtree import PRQuadtree
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)


class TestNearestParity:
    @pytest.fixture(scope="class")
    def dataset(self):
        return UniformPoints(seed=99).generate(300)

    @pytest.fixture(scope="class")
    def structures(self, dataset):
        tree = PRQuadtree(capacity=4)
        tree.insert_many(dataset)
        grid = GridFile(bucket_capacity=4)
        grid.insert_many(dataset)
        cells = Excell(bucket_capacity=4)
        cells.insert_many(dataset)
        return tree, grid, cells

    @pytest.mark.parametrize(
        "query",
        [Point(0.5, 0.5), Point(0.01, 0.99), Point(0.77, 0.13)],
    )
    def test_all_structures_agree_with_brute_force(
        self, dataset, structures, query
    ):
        tree, grid, cells = structures
        brute = sorted(dataset, key=lambda p: p.distance_to(query))[:5]
        for structure in (tree, grid, cells):
            got = structure.nearest(query, k=5)
            assert [p.distance_to(query) for p in got] == pytest.approx(
                [p.distance_to(query) for p in brute]
            )

    def test_k_validation(self, structures):
        _, grid, cells = structures
        with pytest.raises(ValueError):
            grid.nearest(Point(0.5, 0.5), k=0)
        with pytest.raises(ValueError):
            cells.nearest(Point(0.5, 0.5), k=0)

    def test_k_larger_than_size(self):
        grid = GridFile(bucket_capacity=2)
        grid.insert(Point(0.5, 0.5))
        assert grid.nearest(Point(0, 0), k=10) == [Point(0.5, 0.5)]
        cells = Excell(bucket_capacity=2)
        cells.insert(Point(0.5, 0.5))
        assert cells.nearest(Point(0, 0), k=10) == [Point(0.5, 0.5)]

    @given(points)
    @settings(max_examples=25, deadline=None)
    def test_gridfile_nearest_property(self, q):
        dataset = UniformPoints(seed=5).generate(80)
        grid = GridFile(bucket_capacity=3)
        grid.insert_many(dataset)
        got = grid.nearest(q)[0]
        best = min(p.distance_to(q) for p in dataset)
        assert got.distance_to(q) == pytest.approx(best)

    @given(points)
    @settings(max_examples=25, deadline=None)
    def test_excell_nearest_property(self, q):
        dataset = UniformPoints(seed=6).generate(80)
        cells = Excell(bucket_capacity=3)
        cells.insert_many(dataset)
        got = cells.nearest(q)[0]
        best = min(p.distance_to(q) for p in dataset)
        assert got.distance_to(q) == pytest.approx(best)


class TestAnalyticTable3:
    def test_occupancy_decreases_with_depth(self):
        """Aging falls out of the exact statistics: conditional
        occupancy declines with depth over the populated range."""
        table = occupancy_by_depth(1000, capacity=1, min_expected_nodes=20)
        depths = sorted(table)
        assert len(depths) >= 3
        occupancies = [table[d] for d in depths]
        assert occupancies == sorted(occupancies, reverse=True)

    def test_matches_paper_table3_rows(self):
        """The analytic per-depth values land on the paper's Table 3."""
        table = occupancy_by_depth(1000, capacity=1, min_expected_nodes=10)
        paper = {4: 0.75, 5: 0.54, 6: 0.44, 7: 0.39, 8: 0.41}
        for depth, expected in paper.items():
            assert table[depth] == pytest.approx(expected, abs=0.06)

    def test_deep_limit_is_post_split_floor(self):
        """Deep, rarely-created blocks sit at the fresh-split average
        0.40 (depths beyond ~17 have expected counts below float noise
        and are excluded by the node threshold)."""
        table = occupancy_by_depth(
            1000, capacity=1, min_expected_nodes=1e-3
        )
        floor = post_split_average_occupancy(1)
        for depth in (9, 10, 11, 12):
            assert table[depth] == pytest.approx(floor, abs=0.01)

    def test_poisson_model_agrees(self):
        exact = occupancy_by_depth(1000, 4, min_expected_nodes=5)
        poisson = occupancy_by_depth(
            1000, 4, model="poisson", min_expected_nodes=5
        )
        for depth in exact:
            if depth in poisson:
                assert exact[depth] == pytest.approx(poisson[depth], abs=0.05)


class TestNearestTieBreak:
    """Distance ties resolve deterministically — by point coordinates —
    in every structure, so k-NN results are a pure function of the
    point set rather than of insertion order or bucket layout."""

    # four points all exactly 0.25 from the query, plus two closer ones
    TIES = [
        Point(0.25, 0.5),
        Point(0.75, 0.5),
        Point(0.5, 0.25),
        Point(0.5, 0.75),
    ]
    QUERY = Point(0.5, 0.5)

    def _structures(self, pts):
        from repro.quadtree import PointQuadtree

        made = []
        for make in (
            lambda: PRQuadtree(capacity=2),
            lambda: PointQuadtree(),
            lambda: GridFile(bucket_capacity=2),
            lambda: Excell(bucket_capacity=2),
        ):
            s = make()
            s.insert_many(pts)
            made.append(s)
        return made

    @pytest.mark.parametrize("order", [0, 1, 2, 3])
    def test_ties_break_by_coordinates(self, order):
        pts = self.TIES[order:] + self.TIES[:order]  # rotate insertion
        expected = sorted(self.TIES, key=lambda p: p.coords)[:2]
        for s in self._structures(pts):
            got = s.nearest(self.QUERY, k=2)
            assert got == expected, type(s).__name__

    def test_all_structures_agree_on_tied_sets(self):
        pts = UniformPoints(seed=42).generate(60) + self.TIES
        results = [
            s.nearest(self.QUERY, k=7) for s in self._structures(pts)
        ]
        for other in results[1:]:
            assert other == results[0]

    def test_result_independent_of_insertion_order(self):
        base = UniformPoints(seed=13).generate(50) + self.TIES
        forward = self._structures(base)
        backward = self._structures(list(reversed(base)))
        for f, b in zip(forward, backward):
            assert f.nearest(self.QUERY, k=6) == b.nearest(
                self.QUERY, k=6
            ), type(f).__name__
