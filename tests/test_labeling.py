"""Tests for region-quadtree component labeling, cross-checked against
a pixel-level BFS reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import (
    RegionQuadtree,
    component_areas,
    component_count,
    label_components,
)


def pixel_component_count(image: np.ndarray) -> int:
    """Reference: BFS flood fill on the raster, 4-adjacency."""
    size = image.shape[0]
    seen = np.zeros_like(image, dtype=bool)
    count = 0
    for sy in range(size):
        for sx in range(size):
            if not image[sy][sx] or seen[sy][sx]:
                continue
            count += 1
            stack = [(sx, sy)]
            seen[sy][sx] = True
            while stack:
                x, y = stack.pop()
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if (
                        0 <= nx < size
                        and 0 <= ny < size
                        and image[ny][nx]
                        and not seen[ny][nx]
                    ):
                        seen[ny][nx] = True
                        stack.append((nx, ny))
    return count


def images(size=8):
    return st.builds(
        lambda bits: np.array(bits, dtype=bool).reshape(size, size),
        st.lists(st.booleans(), min_size=size * size, max_size=size * size),
    )


class TestKnownShapes:
    def test_empty_image(self):
        assert component_count(RegionQuadtree(8)) == 0
        assert component_areas(RegionQuadtree(8)) == []

    def test_full_image(self):
        tree = RegionQuadtree.from_array(np.ones((8, 8), dtype=bool))
        assert component_count(tree) == 1
        assert component_areas(tree) == [64]

    def test_two_separated_squares(self):
        image = np.zeros((8, 8), dtype=bool)
        image[0:2, 0:2] = True
        image[6:8, 6:8] = True
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == 2
        assert component_areas(tree) == [4, 4]

    def test_diagonal_pixels_not_connected(self):
        """4-adjacency: corner-touching pixels are separate components."""
        image = np.zeros((4, 4), dtype=bool)
        image[0][0] = True
        image[1][1] = True
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == 2

    def test_l_shape_single_component(self):
        image = np.zeros((8, 8), dtype=bool)
        image[0, :] = True
        image[:, 0] = True
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == 1

    def test_blocks_of_different_sizes_connect(self):
        """A 4x4 block next to 1x1 pixels is one component."""
        image = np.zeros((8, 8), dtype=bool)
        image[0:4, 0:4] = True  # one big block
        image[4, 0] = True      # pixel touching its top edge
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == 1

    def test_labels_contiguous(self):
        image = np.zeros((8, 8), dtype=bool)
        image[0, 0] = True
        image[0, 4] = True
        image[4, 0] = True
        tree = RegionQuadtree.from_array(image)
        labels = label_components(tree)
        assert set(labels.values()) == {0, 1, 2}


class TestAgainstPixelReference:
    @given(images())
    @settings(max_examples=60, deadline=None)
    def test_component_count_matches_bfs(self, image):
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == pixel_component_count(image)

    @given(images())
    @settings(max_examples=40, deadline=None)
    def test_areas_sum_to_black_area(self, image):
        tree = RegionQuadtree.from_array(image)
        assert sum(component_areas(tree)) == int(image.sum())

    @given(images(size=16))
    @settings(max_examples=20, deadline=None)
    def test_larger_images(self, image):
        tree = RegionQuadtree.from_array(image)
        assert component_count(tree) == pixel_component_count(image)
