"""The obs overhead contract: instrumentation left threaded through the
hot paths must cost <5% when no tracer is installed.

Two guards: a macro one (the pinned build+census microbenchmark from
the ISSUE, instrumented loop vs. a hand-inlined uninstrumented replica)
and a micro one (per-call cost of the disabled helpers), which is the
stable canary when wall-clock noise would drown a 5% macro signal.
"""

import time

from repro import obs
from repro.quadtree import PRQuadtree
from repro.runtime import ExperimentSpec, TrialResult, build_trials
from repro.service.telemetry import ServiceTelemetry

#: The pinned microbenchmark: a few mid-sized uniform trees, censused.
SPEC = ExperimentSpec(capacity=4, n_points=600, trials=4, seed=11)

#: Allowed slowdown of the instrumented-but-disabled path.
BUDGET = 1.05
#: Absolute slack (seconds) so scheduler jitter on a loaded CI box
#: cannot fail a run that is within the contract.
JITTER = 0.010


def _uninstrumented() -> TrialResult:
    """``build_trials`` with every obs call deleted, kept in lockstep
    with the real implementation."""
    result = TrialResult.empty(SPEC.capacity)
    bounds = SPEC.bounds_rect()
    for trial in range(SPEC.trials):
        generator = SPEC.make_generator(trial)
        tree = PRQuadtree(
            capacity=SPEC.capacity, bounds=bounds, max_depth=SPEC.max_depth
        )
        tree.insert_many(generator.generate(SPEC.n_points))
        result.accumulator.add(tree.occupancy_census())
    return result


def _instrumented() -> TrialResult:
    return build_trials(SPEC, 0, SPEC.trials)


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


class TestDisabledOverhead:
    def test_same_answer(self):
        assert (
            _instrumented().to_payload() == _uninstrumented().to_payload()
        )

    def test_macro_overhead_under_budget(self):
        assert obs.active_tracer() is None
        _uninstrumented(), _instrumented()  # warm caches/allocator
        base = _best_of(_uninstrumented)
        instrumented = _best_of(_instrumented)
        assert instrumented <= base * BUDGET + JITTER, (
            f"disabled instrumentation cost "
            f"{instrumented / base - 1.0:.1%} (budget 5%)"
        )

    def test_micro_per_call_cost(self):
        """Each disabled helper call must stay in the sub-microsecond
        range — the per-call form of the same 5% contract."""
        assert obs.active_tracer() is None
        calls = 20_000
        began = time.perf_counter()
        for _ in range(calls):
            with obs.span("x"):
                pass
            obs.count("x")
            obs.gauge("x", 1.0)
        per_call = (time.perf_counter() - began) / (3 * calls)
        assert per_call < 2e-6, f"{per_call * 1e9:.0f}ns per disabled call"

    def test_enabled_tracer_still_cheap_on_the_macro_bench(self):
        """Tracing ON should not distort what it measures: the pinned
        bench stays within a loose 25% of the uninstrumented loop."""
        base = _best_of(_uninstrumented)
        with obs.tracing():
            traced = _best_of(_instrumented)
        assert traced <= base * 1.25 + JITTER


class TestServePathOverhead:
    """The serve path's telemetry (default-on in ``serve start``) must
    stay far below the cost of the request it decorates: request ID +
    slow-op ring offer per request (the args digest is lazy — paid
    only by requests slow enough to be retained)."""

    REQUEST = {"op": "insert", "point": [0.4375, 0.8125], "id": 12345}

    def test_per_request_telemetry_cost(self):
        telemetry = ServiceTelemetry()
        # warm the ring to steady state (full, floor > 0) — the hot
        # path is a server that has already seen its slowest requests
        for i in range(64):
            telemetry.observe(
                telemetry.next_request_id(), "insert", "deadbeef",
                1.0 + i,
            )
        requests = 5_000
        began = time.perf_counter()
        for _ in range(requests):
            rid = telemetry.next_request_id()
            # the serve path hands the raw request over; the digest is
            # only computed for requests slow enough to be retained
            telemetry.observe(rid, "insert", self.REQUEST, 1e-6)
        per_request = (time.perf_counter() - began) / requests
        # a durable insert costs >= one group-commit interval (~2ms);
        # 20µs of telemetry is two orders of magnitude below that and
        # generous enough for a loaded CI runner
        assert per_request < 20e-6, (
            f"{per_request * 1e6:.1f}µs of telemetry per request"
        )

    def test_below_floor_requests_allocate_nothing_in_the_ring(self):
        telemetry = ServiceTelemetry(slow_k=4)
        for i in range(4):
            telemetry.observe(i + 1, "insert", "d", 1.0)
        before = len(telemetry.ring)
        evicted = telemetry.ring.evicted
        for i in range(1_000):
            telemetry.observe(i + 5, "insert", "d", 1e-9)
        assert len(telemetry.ring) == before
        assert telemetry.ring.evicted == evicted
