"""The obs overhead contract: instrumentation left threaded through the
hot paths must cost <5% when no tracer is installed.

Two guards: a macro one (the pinned build+census microbenchmark from
the ISSUE, instrumented loop vs. a hand-inlined uninstrumented replica)
and a micro one (per-call cost of the disabled helpers), which is the
stable canary when wall-clock noise would drown a 5% macro signal.
"""

import time

from repro import obs
from repro.quadtree import PRQuadtree
from repro.runtime import ExperimentSpec, TrialResult, build_trials

#: The pinned microbenchmark: a few mid-sized uniform trees, censused.
SPEC = ExperimentSpec(capacity=4, n_points=600, trials=4, seed=11)

#: Allowed slowdown of the instrumented-but-disabled path.
BUDGET = 1.05
#: Absolute slack (seconds) so scheduler jitter on a loaded CI box
#: cannot fail a run that is within the contract.
JITTER = 0.010


def _uninstrumented() -> TrialResult:
    """``build_trials`` with every obs call deleted, kept in lockstep
    with the real implementation."""
    result = TrialResult.empty(SPEC.capacity)
    bounds = SPEC.bounds_rect()
    for trial in range(SPEC.trials):
        generator = SPEC.make_generator(trial)
        tree = PRQuadtree(
            capacity=SPEC.capacity, bounds=bounds, max_depth=SPEC.max_depth
        )
        tree.insert_many(generator.generate(SPEC.n_points))
        result.accumulator.add(tree.occupancy_census())
    return result


def _instrumented() -> TrialResult:
    return build_trials(SPEC, 0, SPEC.trials)


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best


class TestDisabledOverhead:
    def test_same_answer(self):
        assert (
            _instrumented().to_payload() == _uninstrumented().to_payload()
        )

    def test_macro_overhead_under_budget(self):
        assert obs.active_tracer() is None
        _uninstrumented(), _instrumented()  # warm caches/allocator
        base = _best_of(_uninstrumented)
        instrumented = _best_of(_instrumented)
        assert instrumented <= base * BUDGET + JITTER, (
            f"disabled instrumentation cost "
            f"{instrumented / base - 1.0:.1%} (budget 5%)"
        )

    def test_micro_per_call_cost(self):
        """Each disabled helper call must stay in the sub-microsecond
        range — the per-call form of the same 5% contract."""
        assert obs.active_tracer() is None
        calls = 20_000
        began = time.perf_counter()
        for _ in range(calls):
            with obs.span("x"):
                pass
            obs.count("x")
            obs.gauge("x", 1.0)
        per_call = (time.perf_counter() - began) / (3 * calls)
        assert per_call < 2e-6, f"{per_call * 1e9:.0f}ns per disabled call"

    def test_enabled_tracer_still_cheap_on_the_macro_bench(self):
        """Tracing ON should not distort what it measures: the pinned
        bench stays within a loose 25% of the uninstrumented loop."""
        base = _best_of(_uninstrumented)
        with obs.tracing():
            traced = _best_of(_instrumented)
        assert traced <= base * 1.25 + JITTER
