"""Unit and property tests for the transform matrices."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    post_split_average_occupancy,
    recursion_probability,
    row_sums,
    row_sums_exact,
    split_distribution,
    split_row,
    transform_matrix,
    transform_matrix_exact,
)

caps = st.integers(min_value=1, max_value=12)
fanouts = st.sampled_from([2, 4, 8, 16])


class TestSplitDistribution:
    def test_paper_p_formula_m1(self):
        """m=1, b=4: P = (9/4, 6/4, 1/4) for 0,1 items and P_2 = 1/16."""
        P = split_distribution(1, 4)
        assert P[0] == Fraction(9, 4)
        assert P[1] == Fraction(6, 4)
        assert P[2] == Fraction(1, 4)

    def test_bucket_conservation(self):
        """Entries sum to b: every quadrant has exactly one occupancy."""
        for m in range(1, 9):
            assert sum(split_distribution(m, 4)) == 4

    def test_item_conservation(self):
        """Occupancy-weighted sum is m+1: every point lands somewhere."""
        for m in range(1, 9):
            P = split_distribution(m, 4)
            assert sum(i * p for i, p in enumerate(P)) == m + 1

    def test_recursion_term(self):
        """P_{m+1} = b^-m, the all-in-one-quadrant case."""
        for m in range(1, 6):
            assert split_distribution(m, 4)[m + 1] == Fraction(1, 4**m)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_distribution(0, 4)
        with pytest.raises(ValueError):
            split_distribution(1, 1)

    @given(caps, fanouts)
    def test_conservation_general(self, m, b):
        P = split_distribution(m, b)
        assert sum(P) == b
        assert sum(i * p for i, p in enumerate(P)) == m + 1


class TestSplitRow:
    def test_paper_t1(self):
        """The paper's worked example: t_1 = (3, 2)."""
        assert split_row(1, 4) == [Fraction(3), Fraction(2)]

    def test_closed_form(self):
        """T_mi = C(m+1,i) 3^(m+1-i) / (4^m - 1)."""
        from math import comb

        for m in (2, 3, 5):
            row = split_row(m, 4)
            for i, val in enumerate(row):
                assert val == Fraction(
                    comb(m + 1, i) * 3 ** (m + 1 - i), 4**m - 1
                )

    def test_recurrence_satisfied(self):
        """t_m = (P_0..P_m) + P_{m+1} t_m, exactly."""
        for m in range(1, 8):
            P = split_distribution(m, 4)
            t = split_row(m, 4)
            for i in range(m + 1):
                assert t[i] == P[i] + P[m + 1] * t[i]

    @given(caps, fanouts)
    def test_recurrence_general(self, m, b):
        P = split_distribution(m, b)
        t = split_row(m, b)
        assert all(t[i] == P[i] + P[m + 1] * t[i] for i in range(m + 1))


class TestTransformMatrix:
    def test_shape(self):
        assert transform_matrix(4).shape == (5, 5)

    def test_m1_matches_paper(self):
        T = transform_matrix(1)
        assert T.tolist() == [[0.0, 1.0], [3.0, 2.0]]

    def test_shift_rows(self):
        T = transform_matrix(3)
        for i in range(3):
            expected = np.zeros(4)
            expected[i + 1] = 1.0
            assert np.array_equal(T[i], expected)

    def test_nonnegative(self):
        for m in range(1, 9):
            assert (transform_matrix(m) >= 0).all()

    def test_exact_matches_float(self):
        for m in (1, 4, 8):
            exact = transform_matrix_exact(m, 4)
            T = transform_matrix(m, 4)
            for i in range(m + 1):
                for j in range(m + 1):
                    assert T[i, j] == pytest.approx(float(exact[i][j]))


class TestRowSums:
    def test_paper_formula(self):
        """All 1 except row m: (4^{m+1}-1)/(4^m-1), 'slightly > 4'."""
        for m in range(1, 9):
            sums = row_sums_exact(m, 4)
            assert all(s == 1 for s in sums[:-1])
            assert sums[-1] == Fraction(4 ** (m + 1) - 1, 4**m - 1)
            assert 4 < float(sums[-1]) <= 5

    def test_m1_split_row_sum_is_5(self):
        assert row_sums_exact(1, 4)[-1] == 5

    def test_float_version_matches(self):
        for m in (1, 3, 8):
            exact = row_sums_exact(m, 4)
            floats = row_sums(m, 4)
            assert floats == pytest.approx([float(x) for x in exact])

    @given(caps, fanouts)
    def test_matrix_rows_sum_correctly(self, m, b):
        T = transform_matrix(m, b)
        sums = row_sums(m, b)
        assert T.sum(axis=1) == pytest.approx(sums)


class TestDerivedQuantities:
    def test_post_split_occupancy_m1(self):
        """Paper: t_m . (0..m) / nodes = 0.40 for m=1 (Table 3 floor)."""
        assert post_split_average_occupancy(1, 4) == pytest.approx(0.4)

    def test_post_split_occupancy_closed_form(self):
        for m in range(1, 9):
            expected = (m + 1) * (4**m - 1) / (4 ** (m + 1) - 1)
            assert post_split_average_occupancy(m, 4) == pytest.approx(expected)

    def test_post_split_equals_dot_product(self):
        """Cross-check against the literal definition."""
        for m in range(1, 8):
            t = split_row(m, 4)
            dot = sum(i * float(x) for i, x in enumerate(t))
            nodes = float(sum(t))
            assert post_split_average_occupancy(m, 4) == pytest.approx(
                dot / nodes
            )

    def test_split_conserves_items(self):
        """t_m . (0..m) = m+1: splits never lose points."""
        for m in range(1, 10):
            t = split_row(m, 4)
            assert sum(i * x for i, x in enumerate(t)) == m + 1

    def test_recursion_probability(self):
        assert recursion_probability(1, 4) == 0.25
        assert recursion_probability(2, 4) == pytest.approx(1 / 16)
        assert recursion_probability(4, 4) < 0.005  # "negligible for m > 3"

    def test_paper_approximation_claim(self):
        """For m > 3, T_mi is closely approximated by P_i."""
        m = 5
        P = split_distribution(m, 4)
        t = split_row(m, 4)
        for i in range(m + 1):
            assert float(t[i]) == pytest.approx(float(P[i]), rel=0.002)
