"""Tests for the PM2/PM3 relaxations and the family ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Segment
from repro.quadtree import PM1Quadtree, PM2Quadtree, PM3Quadtree
from repro.workloads import LatticeSubdivision


def build(cls, segments, max_depth=16):
    tree = cls(max_depth=max_depth)
    tree.insert_many(segments)
    return tree


def two_parallel_edges():
    """Close parallel edges: their shared mid-span blocks are vertex-
    free with two unrelated edges — legal for PM3 only."""
    return [
        Segment(Point(0.02, 0.30), Point(0.98, 0.31)),
        Segment(Point(0.02, 0.36), Point(0.98, 0.37)),
    ]


def spokes():
    """Nearly-parallel edges radiating from a hub — vertex-free blocks
    along the bundle hold several edges sharing the hub endpoint,
    PM2's showcase shape."""
    hub = Point(0.05, 0.1)
    return [
        Segment(hub, Point(0.95, 0.15)),
        Segment(hub, Point(0.95, 0.3)),
        Segment(hub, Point(0.9, 0.45)),
    ]


class TestPM3:
    def test_only_vertex_rule(self):
        """Two long parallel edges: PM3 splits only to isolate the four
        endpoints; mid-map blocks hold both edges."""
        segments = two_parallel_edges()
        tree = build(PM3Quadtree, segments)
        tree.validate()
        # some vertex-free block holds both edges — PM1 forbids this
        both = [
            occ
            for rect, _, occ in tree.leaves()
            if occ >= 2
            and not PM3Quadtree._vertices_in(rect, segments)
        ]
        assert both

    def test_shallower_than_pm1(self):
        segments = two_parallel_edges()
        pm1 = build(PM1Quadtree, segments)
        pm3 = build(PM3Quadtree, segments)
        assert pm3.leaf_count() <= pm1.leaf_count()
        assert pm3.height() <= pm1.height()


class TestPM2:
    def test_spokes_stay_coarse(self):
        """Away from the hub, PM2 blocks may hold several spokes (they
        share the hub endpoint); PM1 must keep splitting them apart."""
        pm1 = build(PM1Quadtree, spokes())
        pm2 = build(PM2Quadtree, spokes())
        pm1.validate()
        pm2.validate()
        assert pm2.leaf_count() < pm1.leaf_count()

    def test_rejects_unrelated_edge_pairs(self):
        """Edges NOT sharing an endpoint still force PM2 splits."""
        tree = build(PM2Quadtree, two_parallel_edges())
        tree.validate()
        for rect, _, occ in tree.leaves():
            if occ >= 2 and not PM2Quadtree._vertices_in(
                rect, two_parallel_edges()
            ):
                # any multi-edge vertex-free block must be spokes
                segs = tree.stabbing_query(rect.center)
                assert PM2Quadtree._share_an_endpoint(segs)


class TestFamilyOrdering:
    @pytest.mark.parametrize("seed", range(3))
    def test_leaf_counts_ordered(self, seed):
        segments = LatticeSubdivision(cells=4, seed=seed).generate()
        pm1 = build(PM1Quadtree, segments, max_depth=18)
        pm2 = build(PM2Quadtree, segments, max_depth=18)
        pm3 = build(PM3Quadtree, segments, max_depth=18)
        for tree in (pm1, pm2, pm3):
            tree.validate()
        assert pm3.leaf_count() <= pm2.leaf_count() <= pm1.leaf_count()

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_all_rules_validate_on_random_maps(self, seed):
        segments = LatticeSubdivision(cells=4, seed=seed).generate()
        for cls in (PM1Quadtree, PM2Quadtree, PM3Quadtree):
            tree = build(cls, segments, max_depth=18)
            tree.validate()
            assert len(tree) == len(segments)

    def test_deletion_works_across_family(self):
        segments = LatticeSubdivision(cells=4, seed=7).generate()
        for cls in (PM2Quadtree, PM3Quadtree):
            tree = build(cls, segments)
            for s in segments:
                assert tree.delete(s)
            assert tree.leaf_count() == 1
