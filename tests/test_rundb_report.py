"""Telemetry persistence + the ``db report`` dashboard: schema v3,
the serve telemetry recorder's delta flushes, by-commit trends, and
the inline-SVG markdown report."""

import re

import pytest

from repro.obs import Tracer, tracing
from repro.rundb import analyzer
from repro.rundb.cli import main as db_main
from repro.rundb.recorder import ServeTelemetryRecorder
from repro.rundb.report import (
    latest_telemetry_run,
    render_report,
    svg_line_chart,
)
from repro.rundb.repository import RunDB
from repro.rundb.schema import SCHEMA_VERSION

DRIFT = {
    "n_points": 500, "actual_pages": 180, "page_error": 0.05,
    "occupancy_error": 0.02, "armed": True, "alarm": False,
}


def _histogram_sample(name, count=10, p50=0.002, p99=0.008):
    return {
        "name": name, "kind": "histogram", "count": count,
        "value": count * p50, "mean": p50, "p50": p50,
        "p90": (p50 + p99) / 2, "p99": p99,
    }


class TestSchemaV3:
    def test_fresh_db_is_at_v3_with_telemetry_table(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            conn = db.connect()
            assert conn.execute("PRAGMA user_version").fetchone()[0] \
                == SCHEMA_VERSION >= 3
            names = {
                row[0] for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            assert "telemetry_samples" in names
            assert db.counts()["telemetry_samples"] == 0

    def test_telemetry_rows_cascade_with_their_run(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("serve")
            db.record_telemetry(
                run_id, 0, [_histogram_sample("service.op.insert")]
            )
            keep_id = db.begin_run("serve")
            db.record_telemetry(
                keep_id, 0, [_histogram_sample("service.op.range")]
            )
            result = db.gc(keep=1, vacuum=False)
            assert result["deleted_runs"] == 1
            rows = db.telemetry_history()
            assert [r["run_id"] for r in rows] == [keep_id]


class TestTelemetryHistory:
    def test_round_trip_and_prefix_match(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("serve", label="serve x.pf")
            for seq in range(3):
                db.record_telemetry(run_id, seq, [
                    _histogram_sample(
                        "service.op.insert", count=10 + seq,
                        p50=0.001 * (seq + 1),
                    ),
                    {"name": "service.writer.queue_depth",
                     "kind": "gauge", "count": 1, "value": float(seq)},
                ], sampled_unix=1000.0 + seq)
            rows = db.telemetry_history(
                run_id=run_id, name="service.op.*", kind="histogram"
            )
            assert [r["seq"] for r in rows] == [0, 1, 2]
            assert [r["count"] for r in rows] == [10, 11, 12]
            assert rows[1]["p50"] == pytest.approx(0.002)
            assert rows[0]["label"] == "serve x.pf"
            gauges = db.telemetry_history(run_id=run_id, kind="gauge")
            assert [r["value"] for r in gauges] == [0.0, 1.0, 2.0]
            # exact-name match, no wildcard
            exact = db.telemetry_history(name="service.op.insert")
            assert len(exact) == 3

    def test_empty_flush_is_a_no_op(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("serve")
            db.record_telemetry(run_id, 0, [])
            assert db.telemetry_history() == []


class TestServeTelemetryRecorder:
    def test_flushes_are_interval_deltas(self, tmp_path):
        """Each flush writes only what the tracer accumulated since the
        previous one — row counts are per-interval, not cumulative."""
        db_path = tmp_path / "db.sqlite"
        recorder = ServeTelemetryRecorder(db_path, label="serve test")
        recorder.start()
        tracer = Tracer()
        with tracing(tracer):
            from repro import obs

            for _ in range(10):
                obs.record("service.op.insert", 0.002)
            obs.gauge("service.writer.queue_depth", 3.0)
            recorder.telemetry(tracer)
            for _ in range(4):
                obs.record("service.op.insert", 0.004)
            recorder.telemetry(tracer)
            # an idle interval re-reports gauges (current value) but
            # writes no histogram delta rows
            recorder.telemetry(tracer)
        assert recorder.telemetry_flushes == 3
        recorder.finish()
        with RunDB(db_path) as db:
            rows = db.telemetry_history(
                name="service.op.insert", kind="histogram"
            )
            assert [r["count"] for r in rows] == [10, 4]
            assert [r["seq"] for r in rows] == [0, 1]
            # the second interval's own percentile, not the cumulative
            assert rows[1]["p50"] >= rows[0]["p50"]
            gauges = db.telemetry_history(kind="gauge")
            assert any(
                r["name"] == "service.writer.queue_depth" for r in gauges
            )

    def test_ignores_non_service_metrics(self, tmp_path):
        db_path = tmp_path / "db.sqlite"
        recorder = ServeTelemetryRecorder(db_path)
        recorder.start()
        tracer = Tracer()
        with tracing(tracer):
            from repro import obs

            obs.record("runtime.build", 0.5)
            obs.count("cache.hit", 3)
            recorder.telemetry(tracer)
        recorder.finish()
        with RunDB(db_path) as db:
            assert db.telemetry_history() == []

    def test_none_tracer_is_a_no_op(self, tmp_path):
        recorder = ServeTelemetryRecorder(tmp_path / "db.sqlite")
        recorder.start()
        recorder.telemetry(None)
        assert recorder.telemetry_flushes == 0
        recorder.finish()

    def test_run_env_carries_git_sha_for_by_commit(self, tmp_path):
        """Serve runs stamp the commit into runs.env (when inside a
        checkout), which is what run_shas() reads."""
        db_path = tmp_path / "db.sqlite"
        recorder = ServeTelemetryRecorder(db_path)
        recorder.start()
        run_id = recorder.run_id
        recorder.finish()
        with RunDB(db_path) as db:
            shas = db.run_shas()
            assert run_id in shas  # value may be None outside a repo


class TestByCommit:
    def _seed(self, db):
        ids = []
        for index, sha in enumerate(["a" * 40, "a" * 40, "b" * 40, None]):
            run_id = db.begin_run(
                "bench", created_unix=1000.0 + index,
                env={"git_sha": sha} if sha else None,
            )
            db.record_stage(run_id, "census", 1.0 + index, None, None)
            db.finish_run(run_id)
            ids.append(run_id)
        return ids

    def test_groups_runs_by_sha_with_median_and_mad(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            self._seed(db)
            trend = analyzer.stage_trend(db, "census")
            collapsed = analyzer.by_commit(db, trend)
            assert len(collapsed.points) == 3
            labels = [p.label for p in collapsed.points]
            assert labels[0].startswith("aaaaaaaaaa n=2 mad=")
            assert labels[1].startswith("bbbbbbbbbb n=1")
            assert labels[2].startswith("(no sha) n=1")
            # commit a: runs with walls 1.0 and 2.0 -> median 1.5
            assert collapsed.points[0].value == pytest.approx(1.5)
            assert collapsed.name.endswith("(by commit)")

    def test_trend_cli_by_commit_flag(self, tmp_path, capsys):
        db_path = tmp_path / "db.sqlite"
        with RunDB(db_path) as db:
            self._seed(db)
        code = db_main([
            "--db", str(db_path), "trend", "--stage", "census",
            "--by-commit",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "(by commit)" in out
        assert "aaaaaaaaaa n=2" in out


class TestSvgLineChart:
    def test_empty_series_render_nothing(self):
        assert svg_line_chart([], "t") == ""
        assert svg_line_chart([("a", [])], "t") == ""

    def test_geometry_spans_the_plot_area(self):
        svg = svg_line_chart(
            [("walk", [(0.0, 0.0), (10.0, 5.0)])],
            "test chart", x_label="n", y_label="s",
            width=640, height=260,
        )
        assert svg.startswith("<svg ") and svg.endswith("</svg>")
        assert 'width="640"' in svg and 'height="260"' in svg
        # x extremes land on the plot's left/right edges
        # (margin_l = 56, width - margin_r = 624)
        assert "56.0," in svg
        assert "624.0," in svg
        assert "<polyline" in svg
        assert "test chart" in svg and "walk" in svg

    def test_single_point_becomes_a_circle(self):
        svg = svg_line_chart([("only", [(1.0, 2.0)])], "t")
        assert "<circle" in svg and "<polyline" not in svg

    def test_labels_are_escaped(self):
        svg = svg_line_chart(
            [("a<b", [(0, 1), (1, 2)])], 'x & "y"'
        )
        assert "a&lt;b" in svg
        assert "x &amp;" in svg
        assert ">a<b<" not in svg

    def test_many_series_wrap_the_legend_inside_the_frame(self):
        # 14 op-percentile series once overflowed a single legend row
        # past the viewBox; entries must wrap onto extra rows instead
        series = [
            (f"operation{i} p99", [(0.0, 1.0), (1.0, float(i))])
            for i in range(14)
        ]
        svg = svg_line_chart(series, title="t", width=640)
        xs = [
            float(m.group(1))
            for m in re.finditer(r'<rect x="([\d.]+)" y="\d+" width="10"', svg)
        ]
        ys = {
            m.group(1)
            for m in re.finditer(r'<rect x="[\d.]+" y="(\d+)" width="10"', svg)
        }
        assert len(xs) == 14
        assert max(xs) + 26 <= 640  # every swatch + label fits
        assert len(ys) >= 2  # actually wrapped onto further rows

    def test_multiple_series_get_distinct_colors(self):
        svg = svg_line_chart(
            [("a", [(0, 1), (1, 2)]), ("b", [(0, 2), (1, 3)])], "t"
        )
        assert svg.count("<polyline") == 2
        assert '#268bd2' in svg and '#dc322f' in svg


class TestRenderReport:
    def _populate(self, db_path):
        with RunDB(db_path) as db:
            run_id = db.begin_run("serve", label="serve smoke")
            for seq in range(4):
                db.record_telemetry(run_id, seq, [
                    _histogram_sample(
                        "service.op.insert", count=20,
                        p50=0.001 + 0.0005 * seq,
                    ),
                    _histogram_sample(
                        "service.op.range", count=5, p50=0.003,
                    ),
                ])
                db.record_drift(run_id, seq, DRIFT)
            db.finish_run(run_id)
            return run_id

    def test_populated_report_has_charts_and_sections(self, tmp_path):
        db_path = tmp_path / "db.sqlite"
        run_id = self._populate(db_path)
        with RunDB(db_path) as db:
            assert latest_telemetry_run(db) == run_id
            markdown = render_report(db)
        assert markdown.count("<svg") >= 2
        assert "# repro run report" in markdown
        assert "## Service latency percentiles" in markdown
        assert f"serve run **#{run_id}**" in markdown
        assert "insert p99" in markdown
        assert "## Drift over time" in markdown
        assert markdown.endswith("\n")

    def test_empty_db_report_degrades_gracefully(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            markdown = render_report(db)
        assert "_No trial results recorded._" in markdown
        assert "_No serve telemetry recorded" in markdown
        assert "_No drift samples recorded._" in markdown
        assert "<svg" not in markdown

    def test_report_cli_writes_file_and_counts_charts(
        self, tmp_path, capsys
    ):
        db_path = tmp_path / "db.sqlite"
        self._populate(db_path)
        out = tmp_path / "report.md"
        assert db_main([
            "--db", str(db_path), "report", "--out", str(out)
        ]) == 0
        message = capsys.readouterr().out
        assert "chart(s)" in message
        text = out.read_text(encoding="utf-8")
        assert text.count("<svg") >= 2

    def test_report_cli_prints_to_stdout_without_out(
        self, tmp_path, capsys
    ):
        db_path = tmp_path / "db.sqlite"
        self._populate(db_path)
        assert db_main(["--db", str(db_path), "report"]) == 0
        assert "# repro run report" in capsys.readouterr().out
