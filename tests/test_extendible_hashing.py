"""Unit and property tests for extendible hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    HASH_BITS,
    ExtendibleHashing,
    default_hash,
    splitmix64,
    uniform_float_hash,
)

# Keys on a 2^-16 grid: distinct keys always differ within their top 16
# hash bits, so directory depth stays bounded no matter how adversarial
# the draw (raw floats can share 60+ leading bits and overflow any
# realistic directory).
keys = st.integers(min_value=0, max_value=2**16 - 1).map(
    lambda i: i / 2.0**16
)
key_lists = st.lists(keys, min_size=0, max_size=120, unique=True)


def build(key_list, capacity=4, max_global_depth=22):
    table = ExtendibleHashing(
        bucket_capacity=capacity,
        hash_func=uniform_float_hash,
        max_global_depth=max_global_depth,
    )
    for k in key_list:
        table.insert(k, f"v{k}")
    return table


class TestHashFunctions:
    def test_splitmix64_range(self):
        for x in (0, 1, 2**63, -5, 2**70):
            h = splitmix64(x)
            assert 0 <= h < 2**64

    def test_splitmix64_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_splitmix64_mixes(self):
        # consecutive inputs should produce very different outputs
        a, b = splitmix64(1), splitmix64(2)
        assert bin(a ^ b).count("1") > 10

    def test_default_hash_range(self):
        assert 0 <= default_hash("hello") < 2**64
        assert 0 <= default_hash(42) < 2**64

    def test_uniform_float_hash_prefix_is_binary_expansion(self):
        assert uniform_float_hash(0.5) >> (HASH_BITS - 1) == 1
        assert uniform_float_hash(0.25) >> (HASH_BITS - 2) == 0b01
        assert uniform_float_hash(0.75) >> (HASH_BITS - 2) == 0b11

    def test_uniform_float_hash_domain(self):
        with pytest.raises(ValueError):
            uniform_float_hash(1.0)
        with pytest.raises(ValueError):
            uniform_float_hash(-0.1)


class TestBasics:
    def test_empty(self):
        table = ExtendibleHashing()
        assert len(table) == 0
        assert table.global_depth == 0
        assert table.directory_size == 1
        assert table.get("missing") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExtendibleHashing(bucket_capacity=0)

    def test_insert_get(self):
        table = ExtendibleHashing(bucket_capacity=2)
        table.insert("a", 1)
        table.insert("b", 2)
        assert table.get("a") == 1
        assert table.get("b") == 2
        assert "a" in table

    def test_overwrite(self):
        table = ExtendibleHashing()
        table.insert("k", 1)
        table.insert("k", 2)
        assert table.get("k") == 2
        assert len(table) == 1

    def test_split_on_overflow(self):
        table = build([0.1, 0.2, 0.6, 0.7, 0.9], capacity=2)
        assert table.global_depth >= 1
        table.validate()
        for k in (0.1, 0.2, 0.6, 0.7, 0.9):
            assert table.get(k) == f"v{k}"

    def test_directory_size_power_of_two(self):
        table = build(list(np.random.default_rng(0).random(200)), capacity=3)
        assert table.directory_size == 1 << table.global_depth
        table.validate()

    def test_identical_hash_keys_raise(self):
        table = ExtendibleHashing(
            bucket_capacity=1, hash_func=lambda k: 0, max_global_depth=6
        )
        table.insert("a", 1)
        with pytest.raises(RuntimeError):
            table.insert("b", 2)

    def test_max_global_depth_validation(self):
        with pytest.raises(ValueError):
            ExtendibleHashing(max_global_depth=0)
        with pytest.raises(ValueError):
            ExtendibleHashing(max_global_depth=100)


class TestDelete:
    def test_delete_present(self):
        table = build([0.1, 0.9], capacity=1)
        assert table.delete(0.1)
        assert table.get(0.1) is None
        assert len(table) == 1

    def test_delete_absent(self):
        table = build([0.1])
        assert not table.delete(0.5)

    def test_delete_merges_and_shrinks(self):
        key_list = list(np.random.default_rng(1).random(100))
        table = build(key_list, capacity=4)
        for k in key_list:
            assert table.delete(k)
            table.validate()
        assert len(table) == 0
        assert table.global_depth == 0
        assert table.directory_size == 1


class TestCensus:
    def test_bucket_count_and_census(self):
        table = build(list(np.random.default_rng(2).random(300)), capacity=4)
        census = table.occupancy_census()
        assert census.total_nodes == table.bucket_count()
        assert census.total_items == 300

    def test_average_occupancy_and_utilization(self):
        table = build(list(np.random.default_rng(3).random(200)), capacity=4)
        occ = table.average_occupancy()
        assert occ == pytest.approx(200 / table.bucket_count())
        assert table.storage_utilization() == pytest.approx(occ / 4)

    def test_fagin_utilization_near_ln2(self):
        """Fagin et al.: asymptotic storage utilization ~ ln 2 = 0.693."""
        rng = np.random.default_rng(4)
        utils = []
        for trial in range(5):
            table = build(list(rng.random(2000)), capacity=8)
            utils.append(table.storage_utilization())
        assert 0.58 < float(np.mean(utils)) < 0.80


class TestProperties:
    @given(key_lists)
    @settings(max_examples=40, deadline=None)
    def test_all_keys_retrievable(self, key_list):
        table = build(key_list, capacity=2)
        assert len(table) == len(key_list)
        for k in key_list:
            assert table.get(k) == f"v{k}"
        table.validate()

    @given(key_lists)
    @settings(max_examples=30, deadline=None)
    def test_items_round_trip(self, key_list):
        table = build(key_list, capacity=3)
        assert dict(table.items()) == {k: f"v{k}" for k in key_list}

    @given(key_lists, st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_no_bucket_over_capacity(self, key_list, capacity):
        table = build(key_list, capacity=capacity)
        assert all(occ <= capacity for _, occ in table.buckets())

    @given(key_lists)
    @settings(max_examples=25, deadline=None)
    def test_insert_delete_everything(self, key_list):
        table = build(key_list, capacity=2)
        for k in key_list:
            assert table.delete(k)
        assert len(table) == 0
        assert table.global_depth == 0
