"""PagedPRQuadtree: bit-identical censuses, durability, queries."""

import pytest

from repro.geometry import Point, Rect
from repro.quadtree import PRQuadtree
from repro.storage import (
    PagedPRQuadtree,
    StorageError,
    required_page_size,
)
from repro.workloads import GaussianPoints, UniformPoints


def _coords(points):
    return sorted(p.coords for p in points)


def _build_pair(tmp_path, capacity, points, **kwargs):
    mem = PRQuadtree(capacity=capacity)
    mem.insert_many(points)
    paged = PagedPRQuadtree.create(
        tmp_path / f"m{capacity}.pf", capacity=capacity, **kwargs
    )
    paged.insert_many(points)
    return mem, paged


class TestParity:
    @pytest.mark.parametrize("capacity", [1, 4, 8])
    def test_census_bit_identical(self, tmp_path, capacity):
        points = UniformPoints(seed=1987).generate(1000)
        mem, paged = _build_pair(tmp_path, capacity, points, pool_pages=16)
        try:
            assert paged.occupancy_census() == mem.occupancy_census()
            assert paged.depth_census() == mem.depth_census()
            assert len(paged) == len(mem)
            assert paged.leaf_count() == mem.leaf_count()
            assert paged.node_count() == mem.node_count()
            assert paged.height() == mem.height()
        finally:
            paged.close()

    def test_census_bit_identical_gaussian(self, tmp_path):
        points = GaussianPoints(seed=7).generate(500)
        mem, paged = _build_pair(tmp_path, 4, points, pool_pages=8)
        try:
            assert paged.occupancy_census() == mem.occupancy_census()
            assert paged.depth_census() == mem.depth_census()
        finally:
            paged.close()

    def test_query_parity(self, tmp_path):
        points = UniformPoints(seed=11).generate(300)
        mem, paged = _build_pair(tmp_path, 4, points, pool_pages=8)
        try:
            q = Point(0.31, 0.62)
            assert paged.nearest(q, 5) == mem.nearest(q, 5)
            box = Rect(Point(0.2, 0.1), Point(0.7, 0.5))
            assert _coords(paged.range_search(box)) == _coords(
                mem.range_search(box)
            )
            for p in points[:20]:
                assert paged.contains(p)
            assert not paged.contains(Point(0.123456, 0.654321))
            assert _coords(paged.points()) == _coords(mem.points())
        finally:
            paged.close()

    def test_duplicates_rejected(self, tmp_path):
        paged = PagedPRQuadtree.create(tmp_path / "d.pf", capacity=2)
        try:
            p = Point(0.5, 0.5)
            assert paged.insert(p)
            assert not paged.insert(p)
            assert len(paged) == 1
        finally:
            paged.close()

    def test_out_of_bounds_rejected(self, tmp_path):
        paged = PagedPRQuadtree.create(tmp_path / "b.pf", capacity=2)
        try:
            with pytest.raises(ValueError):
                paged.insert(Point(1.5, 0.5))
            assert not paged.delete(Point(1.5, 0.5))
            assert not paged.contains(Point(-0.1, 0.5))
        finally:
            paged.close()


class TestDeleteAndMerge:
    def test_delete_merges_like_memory_tree(self, tmp_path):
        points = UniformPoints(seed=3).generate(400)
        mem, paged = _build_pair(tmp_path, 4, points, pool_pages=8)
        try:
            for p in points[:250]:
                assert paged.delete(p) == mem.delete(p)
            paged.validate()
            mem.validate()
            assert paged.occupancy_census() == mem.occupancy_census()
            assert paged.merge_count > 0
        finally:
            paged.close()

    def test_delete_everything_frees_pages(self, tmp_path):
        points = UniformPoints(seed=5).generate(100)
        paged = PagedPRQuadtree.create(tmp_path / "e.pf", capacity=2)
        try:
            paged.insert_many(points)
            for p in points:
                assert paged.delete(p)
            assert len(paged) == 0
            paged.validate()
            # one (empty) root leaf page remains
            assert paged.pagefile.data_page_count == 1
        finally:
            paged.close()

    def test_delete_absent_returns_false(self, tmp_path):
        paged = PagedPRQuadtree.create(tmp_path / "a.pf", capacity=2)
        try:
            paged.insert(Point(0.25, 0.25))
            assert not paged.delete(Point(0.75, 0.75))
            assert len(paged) == 1
        finally:
            paged.close()


class TestDurability:
    def test_reopen_round_trip(self, tmp_path):
        points = UniformPoints(seed=1987).generate(500)
        mem, paged = _build_pair(tmp_path, 4, points, pool_pages=16)
        path = paged.pagefile.path
        paged.close()
        with PagedPRQuadtree.open(path, pool_pages=8) as reopened:
            reopened.validate()
            assert reopened.capacity == 4
            assert len(reopened) == len(mem)
            assert reopened.occupancy_census() == mem.occupancy_census()
            assert reopened.depth_census() == mem.depth_census()
            assert _coords(reopened.points()) == _coords(mem.points())

    def test_mutations_survive_reopen(self, tmp_path):
        points = UniformPoints(seed=2).generate(200)
        paged = PagedPRQuadtree.create(tmp_path / "m.pf", capacity=4)
        paged.insert_many(points[:150])
        paged.close()
        with PagedPRQuadtree.open(tmp_path / "m.pf") as t:
            t.insert_many(points[150:])
            for p in points[:30]:
                t.delete(p)
        mem = PRQuadtree(capacity=4)
        mem.insert_many(points)
        for p in points[:30]:
            mem.delete(p)
        with PagedPRQuadtree.open(tmp_path / "m.pf") as t:
            assert t.occupancy_census() == mem.occupancy_census()

    def test_crash_before_checkpoint_loses_nothing_durable(self, tmp_path):
        points = UniformPoints(seed=4).generate(120)
        paged = PagedPRQuadtree.create(tmp_path / "c.pf", capacity=4)
        paged.insert_many(points[:100])
        paged.checkpoint()
        paged.insert_many(points[100:])  # never checkpointed
        # simulate a crash: drop the handles without checkpointing
        paged.pagefile.close(checkpoint=False)
        with PagedPRQuadtree.open(tmp_path / "c.pf") as t:
            t.validate()
            assert len(t) == 100

    def test_open_rejects_foreign_file(self, tmp_path):
        from repro.storage import PageFile

        PageFile.create(tmp_path / "f.pf", meta={"format": "other"}).close()
        with pytest.raises(StorageError):
            PagedPRQuadtree.open(tmp_path / "f.pf")

    def test_empty_tree_round_trips(self, tmp_path):
        PagedPRQuadtree.create(tmp_path / "z.pf", capacity=4).close()
        with PagedPRQuadtree.open(tmp_path / "z.pf") as t:
            assert len(t) == 0
            assert t.leaf_count() == 1
            t.validate()


class TestConfiguration:
    def test_page_size_must_fit_bucket(self, tmp_path):
        with pytest.raises(ValueError):
            PagedPRQuadtree.create(
                tmp_path / "s.pf", capacity=64, page_size=256
            )
        # the advertised floor is sufficient
        size = max(128, required_page_size(64, 2))
        PagedPRQuadtree.create(
            tmp_path / "s2.pf", capacity=64, page_size=size
        ).close()

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PagedPRQuadtree.create(tmp_path / "v.pf", capacity=0)

    def test_max_depth_pins_like_memory_tree(self, tmp_path):
        points = UniformPoints(seed=9).generate(300)
        mem = PRQuadtree(capacity=1, max_depth=3)
        mem.insert_many(points)
        paged = PagedPRQuadtree.create(
            tmp_path / "p.pf", capacity=1, max_depth=3,
        )
        try:
            paged.insert_many(points)
            assert paged.occupancy_census() == mem.occupancy_census()
            assert paged.height() <= 3
            paged.validate()
        finally:
            paged.close()

    def test_stats_shape(self, tmp_path):
        paged = PagedPRQuadtree.create(tmp_path / "st.pf", capacity=4)
        try:
            paged.insert_many(UniformPoints(seed=1).generate(50))
            s = paged.stats()
            assert s["points"] == 50
            assert s["leaf_pages"] == paged.leaf_count()
            assert s["splits"] == paged.split_count
            assert set(s["pool"]) == {
                "hits", "misses", "evictions", "writebacks",
            }
        finally:
            paged.close()

    def test_small_pool_still_correct(self, tmp_path):
        points = UniformPoints(seed=12).generate(400)
        mem, paged = _build_pair(tmp_path, 1, points, pool_pages=4)
        try:
            assert paged.occupancy_census() == mem.occupancy_census()
            assert paged.pool.evictions > 0
        finally:
            paged.close()
