"""Buffer pool: pin/unpin protocol, eviction policies, write-back."""

import pytest

from repro.storage.pagefile import PageFile, StorageError
from repro.storage.pool import (
    BufferPool,
    BufferPoolFullError,
    ClockPolicy,
    LRUPolicy,
)


@pytest.fixture
def pf(tmp_path):
    f = PageFile.create(tmp_path / "t.pf", page_size=256)
    yield f
    f.close(checkpoint=False)


def _fill(pool, n):
    """Allocate n pages with distinct first bytes, unpinned+flushed."""
    pids = []
    for i in range(n):
        pid = pool.allocate()
        pool._frames[pid].page.insert(bytes([i + 1]))
        pool.unpin(pid, dirty=True)
        pids.append(pid)
    pool.flush()
    return pids


class TestFetchProtocol:
    def test_miss_then_hit(self, pf):
        (pid,) = _fill(BufferPool(pf, capacity=4), 1)
        pool = BufferPool(pf, capacity=4)  # fresh pool: nothing resident
        page = pool.fetch(pid)
        assert page.get(0) == bytes([1])
        pool.unpin(pid)
        pool.fetch(pid)
        pool.unpin(pid)
        assert pool.misses == 1
        assert pool.hits == 1

    def test_unpin_without_pin_raises(self, pf):
        pool = BufferPool(pf, capacity=4)
        (pid,) = _fill(pool, 1)
        with pytest.raises(StorageError):
            pool.unpin(pid)

    def test_pinned_page_context_manager(self, pf):
        pool = BufferPool(pf, capacity=4)
        (pid,) = _fill(pool, 1)
        with pool.pinned_page(pid) as page:
            assert pool.pinned == 1
            assert page.get(0) == bytes([1])
        assert pool.pinned == 0

    def test_nested_pins(self, pf):
        pool = BufferPool(pf, capacity=4)
        (pid,) = _fill(pool, 1)
        pool.fetch(pid)
        pool.fetch(pid)
        pool.unpin(pid)
        assert pool.pinned == 1
        pool.unpin(pid)
        assert pool.pinned == 0

    def test_capacity_validation(self, pf):
        with pytest.raises(ValueError):
            BufferPool(pf, capacity=0)
        with pytest.raises(ValueError):
            BufferPool(pf, policy="fifo")


class TestEviction:
    def test_capacity_is_respected(self, pf):
        pool = BufferPool(pf, capacity=3)
        _fill(pool, 8)
        assert pool.resident <= 3
        assert pool.evictions > 0

    def test_pinned_pages_survive_eviction(self, pf):
        pool = BufferPool(pf, capacity=2)
        pids = _fill(pool, 2)
        pool.fetch(pids[0])  # pin
        for pid in _fill(pool, 3):
            pass
        assert pids[0] in pool._frames  # never evicted while pinned
        pool.unpin(pids[0])

    def test_all_pinned_raises(self, pf):
        pool = BufferPool(pf, capacity=2)
        pids = _fill(pool, 2)
        pool.fetch(pids[0])
        pool.fetch(pids[1])
        with pytest.raises(BufferPoolFullError):
            pool.allocate()
        pool.unpin(pids[0])
        pool.unpin(pids[1])

    def test_dirty_eviction_writes_back(self, pf):
        pool = BufferPool(pf, capacity=2)
        pids = _fill(pool, 2)
        with pool.pinned_page(pids[0], dirty=True) as page:
            page.insert(b"mutated")
        _fill(pool, 3)  # force pids[0] out
        assert pids[0] not in pool._frames
        with pool.pinned_page(pids[0]) as page:  # re-read from file
            assert page.get(1) == b"mutated"

    def test_lru_evicts_least_recent(self, pf):
        pool = BufferPool(pf, capacity=2, policy="lru")
        a, b = _fill(pool, 2)
        # touch a so b is the LRU victim
        with pool.pinned_page(a):
            pass
        with pool.pinned_page(b):
            pass
        with pool.pinned_page(a):
            pass
        pool.allocate()  # evicts b
        pool.unpin(pool.pagefile.page_count - 1, dirty=True)
        assert a in pool._frames
        assert b not in pool._frames

    def test_clock_policy_works(self, pf):
        pool = BufferPool(pf, capacity=3, policy="clock")
        pids = _fill(pool, 10)
        # every page readable regardless of eviction order
        for i, pid in enumerate(pids):
            with pool.pinned_page(pid) as page:
                assert page.get(0) == bytes([i + 1])
        assert pool.resident <= 3

    def test_free_drops_frame_without_writeback(self, pf):
        pool = BufferPool(pf, capacity=4)
        (pid,) = _fill(pool, 1)
        before = pool.writebacks
        pool.free(pid)
        assert pool.writebacks == before
        assert pid not in pool._frames
        assert pf.free_page_count == 1

    def test_free_pinned_raises(self, pf):
        pool = BufferPool(pf, capacity=4)
        (pid,) = _fill(pool, 1)
        pool.fetch(pid)
        with pytest.raises(StorageError):
            pool.free(pid)
        pool.unpin(pid)


class TestFlush:
    def test_flush_returns_dirty_count(self, pf):
        pool = BufferPool(pf, capacity=8)
        pids = _fill(pool, 3)
        assert pool.flush() == 0  # _fill already flushed
        with pool.pinned_page(pids[0], dirty=True) as page:
            page.insert(b"x")
        with pool.pinned_page(pids[1], dirty=True) as page:
            page.insert(b"y")
        assert pool.flush() == 2
        assert pool.flush() == 0

    def test_counters_exposed(self, pf):
        pool = BufferPool(pf, capacity=2)
        _fill(pool, 4)
        c = pool.counters
        assert set(c) == {"hits", "misses", "evictions", "writebacks"}
        assert c["evictions"] == pool.evictions


class TestPolicies:
    def test_lru_victim_order(self):
        p = LRUPolicy()
        for pid in (1, 2, 3):
            p.note_insert(pid)
        p.note_access(1)
        assert p.victim(lambda pid: True) == 2
        p.note_remove(2)
        assert p.victim(lambda pid: True) == 3

    def test_lru_respects_evictable(self):
        p = LRUPolicy()
        for pid in (1, 2):
            p.note_insert(pid)
        assert p.victim(lambda pid: pid != 1) == 2
        assert p.victim(lambda pid: False) is None

    def test_clock_second_chance(self):
        p = ClockPolicy()
        for pid in (1, 2, 3):
            p.note_insert(pid)
        # all referenced: first sweep clears, second finds a victim
        assert p.victim(lambda pid: True) in (1, 2, 3)

    def test_clock_skips_unevictable(self):
        p = ClockPolicy()
        for pid in (1, 2):
            p.note_insert(pid)
        assert p.victim(lambda pid: pid == 2) == 2
        assert p.victim(lambda pid: False) is None

    def test_clock_remove_keeps_ring_consistent(self):
        p = ClockPolicy()
        for pid in (1, 2, 3, 4):
            p.note_insert(pid)
        p.note_remove(2)
        p.note_remove(4)
        survivors = {p.victim(lambda pid: True) for _ in range(4)}
        assert survivors <= {1, 3}
