"""Telemetry v2: histograms, event rings, tracer merging, exports,
and the span-level regression diff + ``repro obs`` CLI on top."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    EventRecorder,
    GaugeStats,
    Histogram,
    SpanEvent,
    Tracer,
    diff_traces,
    export_chrome_trace,
    export_folded,
    tracing,
)
from repro.obs.diff import extract_traces
from repro.obs.histogram import BUCKETS, bucket_bounds, bucket_index


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------


class TestBucketMapping:
    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_value_falls_inside_its_bucket(self, value):
        index = bucket_index(value)
        low, high = bucket_bounds(index)
        assert low < value <= high or (index == 0 and value <= high)

    def test_boundary_value_closes_its_bucket(self):
        # bucket i covers (bound(i-1), bound(i)]: an exact boundary
        # must land in the bucket it closes, not open the next one
        low, high = bucket_bounds(bucket_index(2.0))
        assert high == 2.0

    def test_extremes_route_to_sentinel_buckets(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-5.0) == 0
        assert bucket_index(1e-300) == 0
        assert bucket_index(1e300) == BUCKETS - 1
        assert bucket_index(float("nan")) == 0


class TestHistogram:
    def test_aggregates_and_quantile_ordering(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.008, 0.1):
            h.observe(v)
        assert h.count == 5
        assert h.min == 0.001
        assert h.max == 0.1
        assert h.mean == pytest.approx(0.115 / 5)
        assert h.min <= h.p50 <= h.p90 <= h.p99 <= h.max

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram()
        h.observe(0.005)
        assert h.p50 == 0.005
        assert h.p99 == 0.005

    def test_merge_equals_observing_the_union(self):
        a, b, u = Histogram(), Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
            u.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
            u.observe(v)
        a.merge(b)
        assert a.count == u.count
        assert a.sum == u.sum
        assert a.min == u.min and a.max == u.max
        assert a.p50 == u.p50 and a.p99 == u.p99

    def test_nonfinite_observations_stay_json_safe(self):
        h = Histogram()
        h.observe(float("inf"))
        h.observe(float("-inf"))
        h.observe(float("nan"))
        h.observe(1.5)
        assert h.count == 4
        assert h.min == 1.5 and h.max == 1.5
        json.dumps(h.to_dict(), allow_nan=False)  # must not raise

    def test_dict_round_trip(self):
        h = Histogram()
        for v in (0.001, 0.5, 2.0, 2.0):
            h.observe(v)
        back = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert back.count == h.count
        assert back.sum == h.sum
        assert back.min == h.min and back.max == h.max
        assert back.p50 == h.p50 and back.p99 == h.p99

    def test_empty_histogram(self):
        h = Histogram()
        assert h.is_empty()
        assert h.quantile(0.5) == 0.0
        data = h.to_dict()
        assert "min" not in data and "max" not in data
        json.dumps(data, allow_nan=False)

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


# ----------------------------------------------------------------------
# event ring
# ----------------------------------------------------------------------


class TestEventRecorder:
    def test_bounded_ring_counts_drops(self):
        r = EventRecorder(3)
        for i in range(5):
            r.record(("a", f"s{i}"), float(i), 0.1)
        assert len(r) == 3
        assert r.total == 5
        assert r.dropped == 2
        assert [e.name for e in r.events] == ["s2", "s3", "s4"]

    def test_dict_round_trip(self):
        r = EventRecorder(4)
        r.record(("root", "leaf"), 1.0, 0.25)
        back = EventRecorder.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.capacity == 4
        assert back.events == r.events

    def test_tracer_records_span_events(self):
        t = Tracer(events=8)
        with t.span("outer"):
            with t.span("inner"):
                pass
        paths = [e.path for e in t.events]
        assert ("outer", "inner") in paths
        assert ("outer",) in paths
        inner = next(e for e in t.events if e.name == "inner")
        assert inner.depth == 1  # 0 = root span
        assert inner.dur >= 0.0

    def test_events_survive_snapshot_round_trip(self):
        t = Tracer(events=8)
        with t.span("work"):
            t.record("sub", 0.5)
        back = Tracer.from_dict(json.loads(json.dumps(t.to_dict())))
        assert back.events == t.events
        assert back.events_dropped == 0


# ----------------------------------------------------------------------
# gauge JSON regression (never-observed gauges emitted inf/-inf)
# ----------------------------------------------------------------------


class TestGaugeJsonSafety:
    def test_unobserved_gauge_omits_min_max(self):
        data = GaugeStats().to_dict()
        assert "min" not in data and "max" not in data
        json.dumps(data, allow_nan=False)  # must not raise

    def test_tracer_snapshot_with_unobserved_gauge_is_valid_json(self):
        t = Tracer.from_dict({"gauges": {"never": {"count": 0}}})
        json.dumps(t.to_dict(), allow_nan=False)

    def test_observed_gauge_keeps_min_max(self):
        g = GaugeStats()
        g.observe(3.0)
        data = g.to_dict()
        assert data["min"] == 3.0 and data["max"] == 3.0

    def test_gauge_dict_round_trip(self):
        g = GaugeStats()
        for v in (1.0, 4.0, 2.0):
            g.observe(v)
        back = GaugeStats.from_dict(json.loads(json.dumps(g.to_dict())))
        assert back.last == 2.0
        assert back.min == 1.0 and back.max == 4.0
        assert back.count == 3
        assert back.mean == pytest.approx(g.mean)


# ----------------------------------------------------------------------
# merge algebra (property-style, like the census merge tests)
# ----------------------------------------------------------------------

_NAMES = ("alpha", "beta", "gamma")

# integer-valued observations keep float addition exact, so merged
# totals can be compared with == instead of approx
_OPS = st.lists(
    st.tuples(
        st.sampled_from(("record", "count", "gauge")),
        st.sampled_from(_NAMES),
        st.integers(min_value=0, max_value=1000),
    ),
    max_size=20,
)


def _tracer_from(ops):
    t = Tracer()
    for kind, name, value in ops:
        if kind == "record":
            t.record(name, float(value))
        elif kind == "count":
            t.count(name, value)
        else:
            t.gauge(name, float(value))
    return t


def _canonical(t):
    """Snapshot minus gauge ``last`` — the one documented
    merge-order-dependent field."""
    data = t.to_dict()
    for stats in data.get("gauges", {}).values():
        stats.pop("last", None)
    return data


def _combined(x, y):
    t = Tracer()
    t.merge(x)
    t.merge(y)
    return t


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(_OPS, _OPS)
    def test_merge_is_commutative(self, ops_a, ops_b):
        a, b = _tracer_from(ops_a), _tracer_from(ops_b)
        ab = _combined(a, b)
        ba = _combined(b, a)
        assert _canonical(ab) == _canonical(ba)

    @settings(max_examples=50, deadline=None)
    @given(_OPS, _OPS, _OPS)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        a, b, c = map(_tracer_from, (ops_a, ops_b, ops_c))
        left = _combined(_combined(a, b), c)
        right = _combined(a, _combined(b, c))
        assert _canonical(left) == _canonical(right)

    @settings(max_examples=25, deadline=None)
    @given(_OPS)
    def test_empty_tracer_is_the_identity(self, ops):
        t = _tracer_from(ops)
        merged = _combined(t, Tracer())
        assert _canonical(merged) == _canonical(t)

    def test_merge_nests_trees_by_position(self):
        a, b = Tracer(), Tracer()
        with a.span("run"):
            a.record("chunk", 1.0)
        with b.span("run"):
            b.record("chunk", 3.0)
        a.merge(b)
        run = a.roots["run"]
        assert run.count == 2
        assert run.children["chunk"].count == 2
        assert run.children["chunk"].total == pytest.approx(4.0)

    def test_graft_mounts_a_subtree_under_the_open_span(self):
        worker = Tracer()
        with worker.span("trial.build"):
            pass
        worker.count("tree.built", 3)
        t = Tracer()
        with t.span("runtime.build"):
            t.graft("worker.0", worker, count=2, total=1.5)
        mount = t.roots["runtime.build"].children["worker.0"]
        assert mount.count == 2
        assert mount.total == pytest.approx(1.5)
        assert "trial.build" in mount.children
        assert t.counters["tree.built"] == 3


# ----------------------------------------------------------------------
# exception safety
# ----------------------------------------------------------------------


class TestExceptionSafety:
    def test_raising_span_still_closes_and_records_event(self):
        t = Tracer(events=4)
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        assert t.open_depth == 0
        assert t.roots["risky"].count == 1
        assert [e.name for e in t.events] == ["risky"]
        assert t.span_histograms["risky"].count == 1

    def test_raising_nested_span_unwinds_cleanly(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("outer"):
                with t.span("inner"):
                    raise ValueError
        assert t.open_depth == 0
        # the tracer still works afterwards
        with t.span("outer"):
            pass
        assert t.roots["outer"].count == 2

    def test_ambient_tracer_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError
        assert obs.active_tracer() is None


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------


def _worker_tracer():
    t = Tracer()
    with t.span("runtime.build"):
        t.record("chunk.pool", 0.05)
        worker = Tracer()
        with worker.span("trial.build"):
            pass
        t.graft("worker.1", worker, count=1, total=0.04)
    t.count("tree.built", 4)
    t.gauge("tree.max_depth", 5.0)
    return t


class TestChromeExport:
    def test_span_events_have_ph_ts_dur(self):
        doc = export_chrome_trace(_worker_tracer())
        json.dumps(doc, allow_nan=False)  # valid JSON throughout
        spans = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert spans
        for event in spans:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0

    def test_worker_subtree_gets_its_own_thread_row(self):
        doc = export_chrome_trace(_worker_tracer())
        worker_events = [
            e for e in doc["traceEvents"] if e.get("name") == "worker.1"
        ]
        assert worker_events and worker_events[0]["tid"] == 2
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M"
        ]
        assert "main" in names and "worker.1" in names

    def test_counters_export_as_counter_track(self):
        doc = export_chrome_trace(_worker_tracer())
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert {e["name"] for e in counters} == {"tree.built"}
        assert counters[0]["args"]["value"] == 4

    def test_recorded_events_export_as_real_timeline(self):
        t = Tracer(events=16)
        with t.span("a"):
            with t.span("b"):
                pass
        doc = export_chrome_trace(t)
        spans = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert len(spans) == 2
        assert min(e["ts"] for e in spans) == 0.0
        b = next(e for e in spans if e["name"] == "b")
        assert b["args"]["path"] == "a/b"

    def test_round_trips_through_snapshot(self):
        # exporting a saved snapshot must equal exporting the live tracer
        t = _worker_tracer()
        snapshot = json.loads(json.dumps(t.to_dict()))
        assert export_chrome_trace(snapshot) == export_chrome_trace(t)


class TestFoldedExport:
    def test_lines_are_path_and_integer_self_time(self):
        text = export_folded(_worker_tracer())
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path
            assert int(value) >= 0

    def test_self_time_subtracts_children(self):
        t = Tracer()
        with t.span("parent"):
            t.record("child", 0.25)
        t.roots["parent"].total = 1.0  # pin for determinism
        text = export_folded(t)
        stacks = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert int(stacks["parent"]) == 750000
        assert int(stacks["parent;child"]) == 250000


# ----------------------------------------------------------------------
# regression diffing
# ----------------------------------------------------------------------


def _snapshot_with_mean(mean_s, count=10, name="stage"):
    return {
        "spans": {
            name: {"count": count, "total_s": mean_s * count}
        },
        "counters": {},
        "gauges": {},
    }


class TestDiff:
    def test_regression_detected_past_threshold(self):
        diff = diff_traces(
            _snapshot_with_mean(0.010), _snapshot_with_mean(0.030),
            threshold=1.5,
        )
        assert not diff.ok
        assert [d.path for d in diff.regressions] == ["stage"]
        assert diff.regressions[0].ratio == pytest.approx(3.0)

    def test_improvement_does_not_fail(self):
        diff = diff_traces(
            _snapshot_with_mean(0.030), _snapshot_with_mean(0.010),
            threshold=1.5,
        )
        assert diff.ok
        assert [d.path for d in diff.improvements] == ["stage"]

    def test_within_threshold_is_quiet(self):
        diff = diff_traces(
            _snapshot_with_mean(0.010), _snapshot_with_mean(0.012),
            threshold=1.5,
        )
        assert diff.ok and not diff.improvements
        assert diff.compared == 1

    def test_min_mean_floor_suppresses_micro_spans(self):
        diff = diff_traces(
            _snapshot_with_mean(1e-6), _snapshot_with_mean(10e-6),
            threshold=1.5,
        )
        assert diff.ok  # 10x slower, but both sides are noise-scale

    def test_structural_changes_reported_but_not_failing(self):
        old = _snapshot_with_mean(0.010, name="kept")
        new = _snapshot_with_mean(0.010, name="kept")
        new["spans"]["added"] = {"count": 1, "total_s": 0.5}
        old["spans"]["removed"] = {"count": 1, "total_s": 0.5}
        diff = diff_traces(old, new)
        assert diff.ok
        assert diff.added == ["added"]
        assert diff.removed == ["removed"]

    def test_nested_paths_compare_by_position(self):
        old = {"spans": {"a": {
            "count": 1, "total_s": 0.01,
            "children": {"b": {"count": 5, "total_s": 0.005}},
        }}}
        new = {"spans": {"a": {
            "count": 1, "total_s": 0.01,
            "children": {"b": {"count": 5, "total_s": 0.5}},
        }}}
        diff = diff_traces(old, new)
        assert [d.path for d in diff.regressions] == ["a/b"]

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            diff_traces(_snapshot_with_mean(1.0), _snapshot_with_mean(1.0),
                        threshold=1.0)

    def test_render_mentions_verdict(self):
        diff = diff_traces(
            _snapshot_with_mean(0.010), _snapshot_with_mean(0.030),
        )
        assert "REGRESSION" in diff.render()
        assert "1 regression(s)" in diff.render()


class TestExtractTraces:
    def test_raw_snapshot(self):
        t = _worker_tracer()
        assert extract_traces(t.to_dict()) == {"": t.to_dict()}

    def test_bench_snapshot_with_stage_traces(self):
        trace = _snapshot_with_mean(0.01)
        data = {"stages": {
            "build": {"wall_s": 1.0, "trace": trace},
            "parallel": {
                "serial_trace": trace,
                "pool_trace": trace,
            },
        }}
        names = set(extract_traces(data))
        assert names == {"build", "parallel.serial", "parallel.pool"}

    def test_trace_bundle(self):
        trace = _snapshot_with_mean(0.01)
        data = {"bench_version": 5, "stages": {"census": trace}}
        assert extract_traces(data) == {"census": trace}


# ----------------------------------------------------------------------
# repro obs CLI
# ----------------------------------------------------------------------


def _write_trace(path, snapshot):
    path.write_text(json.dumps(snapshot), encoding="utf-8")
    return str(path)


class TestObsCli:
    def _main(self, argv):
        from repro.obs.cli import main
        return main(argv)

    def test_report_renders_span_tree(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "t.json", _worker_tracer().to_dict())
        assert self._main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "runtime.build" in out
        assert "worker.1" in out

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        old = _write_trace(tmp_path / "old.json", _snapshot_with_mean(0.010))
        new = _write_trace(tmp_path / "new.json", _snapshot_with_mean(0.050))
        assert self._main(["diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_exits_zero_on_improvement(self, tmp_path, capsys):
        old = _write_trace(tmp_path / "old.json", _snapshot_with_mean(0.050))
        new = _write_trace(tmp_path / "new.json", _snapshot_with_mean(0.010))
        assert self._main(["diff", old, new]) == 0
        assert "improved" in capsys.readouterr().out

    def test_diff_respects_threshold_flag(self, tmp_path, capsys):
        old = _write_trace(tmp_path / "old.json", _snapshot_with_mean(0.010))
        new = _write_trace(tmp_path / "new.json", _snapshot_with_mean(0.020))
        assert self._main(["diff", old, new, "--threshold", "3.0"]) == 0
        assert self._main(["diff", old, new, "--threshold", "1.5"]) == 1

    def test_diff_works_on_bench_shaped_files(self, tmp_path, capsys):
        def bench_file(mean):
            return {"bench_version": 5, "stages": {
                "build": {"trace": _snapshot_with_mean(mean)},
            }}
        old = _write_trace(tmp_path / "old.json", bench_file(0.010))
        new = _write_trace(tmp_path / "new.json", bench_file(0.050))
        assert self._main(["diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "build/stage" in out

    def test_diff_rejects_threshold_at_or_below_one(self, tmp_path):
        old = _write_trace(tmp_path / "old.json", _snapshot_with_mean(0.01))
        with pytest.raises(SystemExit):
            self._main(["diff", old, old, "--threshold", "1.0"])

    def test_export_chrome_is_valid_json(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "t.json", _worker_tracer().to_dict())
        out_path = tmp_path / "trace.chrome.json"
        argv = ["export", path, "--format", "chrome", "--out", str(out_path)]
        assert self._main(argv) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_export_folded_to_stdout(self, tmp_path, capsys):
        path = _write_trace(tmp_path / "t.json", _worker_tracer().to_dict())
        assert self._main(["export", path, "--format", "folded"]) == 0
        out = capsys.readouterr().out
        assert "runtime.build;worker.1" in out

    def test_rejects_non_trace_files(self, tmp_path):
        path = _write_trace(tmp_path / "junk.json", {"not": "a trace"})
        with pytest.raises(SystemExit):
            self._main(["report", path])

    def test_repro_cli_dispatches_obs(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main
        path = _write_trace(tmp_path / "t.json", _worker_tracer().to_dict())
        assert repro_main(["obs", "report", path]) == 0
        assert "runtime.build" in capsys.readouterr().out


# ----------------------------------------------------------------------
# pool rescue accounting
# ----------------------------------------------------------------------


class TestPoolRescueFraction:
    """Pinned semantics of ``pool.rescue_fraction``: rescue seconds over
    total (pool + rescue) seconds, gauged on every traced pool run —
    exactly 0.0 when no chunk needed in-process rescue, strictly
    positive when rescued/degraded chunk time would otherwise vanish
    from the utilization signal the chunk autotuner reads."""

    def _run(self, monkeypatch=None, crash=False):
        from repro.runtime import ExperimentSpec, RuntimeConfig, execute
        from repro.runtime import executor as executor_module
        from tests.test_runtime_executor import _crashing

        spec = ExperimentSpec(capacity=2, n_points=50, trials=5, seed=3)
        if crash:
            monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
        tracer = Tracer()
        config = RuntimeConfig(workers=2, chunk_size=2, tracer=tracer)
        execute(spec, config)
        return tracer

    def test_clean_pool_run_gauges_zero(self):
        tracer = self._run()
        gauge = tracer.gauges["pool.rescue_fraction"]
        assert gauge.count == 1
        assert gauge.last == 0.0

    def test_crash_rescue_is_accounted(self, monkeypatch):
        tracer = self._run(monkeypatch, crash=True)
        gauge = tracer.gauges["pool.rescue_fraction"]
        assert 0.0 < gauge.last <= 1.0

    def test_serial_runs_do_not_gauge(self):
        from repro.runtime import ExperimentSpec, RuntimeConfig, execute

        spec = ExperimentSpec(capacity=2, n_points=50, trials=5, seed=3)
        tracer = Tracer()
        execute(spec, RuntimeConfig(workers=1, tracer=tracer))
        assert "pool.rescue_fraction" not in tracer.gauges
