"""Property-based tests for PR quadtree invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import PRQuadtree

unit_coord = st.floats(
    min_value=0.0, max_value=0.999999, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=60, unique=True)
capacities = st.integers(min_value=1, max_value=5)


@given(point_lists, capacities)
@settings(max_examples=60, deadline=None)
def test_all_points_retrievable(pts, capacity):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    assert len(tree) == len(pts)
    for p in pts:
        assert p in tree


@given(point_lists, capacities)
@settings(max_examples=60, deadline=None)
def test_structural_invariants(pts, capacity):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    tree.validate()


@given(point_lists, capacities)
@settings(max_examples=60, deadline=None)
def test_leaves_partition_space(pts, capacity):
    """Leaf blocks are pairwise disjoint and their volumes tile the root."""
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    leaves = [rect for rect, _, _ in tree.leaves()]
    total = sum(r.volume for r in leaves)
    assert abs(total - tree.bounds.volume) < 1e-9
    for i, a in enumerate(leaves):
        for b in leaves[i + 1 :]:
            assert not a.intersects(b)


@given(point_lists, capacities)
@settings(max_examples=60, deadline=None)
def test_census_conserves_points(pts, capacity):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    census = tree.occupancy_census()
    assert census.total_nodes == tree.leaf_count()
    # Clamping folds overflowed (precision-pinned) leaves into the top
    # class, so the census item total equals the clamped sum exactly.
    clamped = sum(min(occ, capacity) for _, _, occ in tree.leaves())
    assert census.total_items == clamped
    if all(occ <= capacity for _, _, occ in tree.leaves()):
        assert census.total_items == len(pts)


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_insertion_order_irrelevant(pts):
    """Regular decomposition is order-independent: any insertion order
    yields the same leaf structure (unlike the point quadtree)."""
    forward = PRQuadtree(capacity=2)
    forward.insert_many(pts)
    backward = PRQuadtree(capacity=2)
    backward.insert_many(list(reversed(pts)))
    assert sorted(
        (r.lo.coords, r.hi.coords, occ) for r, _, occ in forward.leaves()
    ) == sorted(
        (r.lo.coords, r.hi.coords, occ) for r, _, occ in backward.leaves()
    )


@given(point_lists, capacities)
@settings(max_examples=40, deadline=None)
def test_delete_everything_restores_empty_tree(pts, capacity):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    for p in pts:
        assert tree.delete(p)
        tree.validate()
    assert len(tree) == 0
    assert tree.leaf_count() == 1


@given(point_lists, points, capacities)
@settings(max_examples=60, deadline=None)
def test_nearest_matches_brute_force(pts, query, capacity):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    got = tree.nearest(query, k=1)
    if not pts:
        assert got == []
    else:
        best = min(p.distance_to(query) for p in pts)
        assert got[0].distance_to(query) == best


@given(point_lists, capacities, st.data())
@settings(max_examples=60, deadline=None)
def test_range_matches_brute_force(pts, capacity, data):
    tree = PRQuadtree(capacity=capacity)
    tree.insert_many(pts)
    x0 = data.draw(unit_coord)
    y0 = data.draw(unit_coord)
    x1 = data.draw(st.floats(min_value=x0 + 1e-6, max_value=1.0))
    y1 = data.draw(st.floats(min_value=y0 + 1e-6, max_value=1.0))
    query = Rect(Point(x0, y0), Point(x1, y1))
    got = set(tree.range_search(query))
    expected = {p for p in pts if query.contains_point(p)}
    assert got == expected


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_max_depth_bounds_height(pts):
    tree = PRQuadtree(capacity=1, max_depth=3)
    tree.insert_many(pts)
    if pts:
        assert tree.height() <= 3
    tree.validate()
    assert tree.occupancy_census().total_nodes == tree.leaf_count()
