"""Sorted bulk-load: the fast cold-start path must be indistinguishable
from an incremental build of the same point set."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.obs import Tracer, tracing
from repro.storage import PagedPRQuadtree, bulk_load_paged
from repro.storage.cli import main as storage_main
from repro.workloads import GaussianPoints, UniformPoints


def build_incremental(path, points, **kwargs):
    tree = PagedPRQuadtree.create(str(path), **kwargs)
    tree.insert_many(points)
    tree.checkpoint()
    return tree


def assert_equivalent(bulk, incr):
    """Same point set, same censuses, same page-level shape."""
    assert len(bulk) == len(incr)
    assert bulk.occupancy_census().counts == incr.occupancy_census().counts
    assert bulk.leaf_count() == incr.leaf_count()
    assert bulk.height() == incr.height()
    assert sorted(tuple(p) for p in bulk.points()) == sorted(
        tuple(p) for p in incr.points()
    )
    bulk.validate()


class TestParity:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("capacity", [1, 4])
    def test_uniform(self, tmp_path, dim, capacity):
        points = UniformPoints(dim=dim, seed=5).generate(500)
        bulk = bulk_load_paged(
            tmp_path / "bulk.pf", points, capacity=capacity, dim=dim
        )
        incr = build_incremental(
            tmp_path / "incr.pf", points, capacity=capacity, dim=dim
        )
        try:
            assert_equivalent(bulk, incr)
        finally:
            bulk.close()
            incr.close()

    def test_gaussian_cluster(self, tmp_path):
        points = GaussianPoints(seed=9).generate(800)
        bulk = bulk_load_paged(tmp_path / "bulk.pf", points, capacity=8)
        incr = build_incremental(
            tmp_path / "incr.pf", points, capacity=8
        )
        try:
            assert_equivalent(bulk, incr)
        finally:
            bulk.close()
            incr.close()

    def test_queries_after_reopen(self, tmp_path):
        points = UniformPoints(seed=12).generate(400)
        tree = bulk_load_paged(tmp_path / "t.pf", points, capacity=4)
        tree.close()
        with PagedPRQuadtree.open(tmp_path / "t.pf") as tree:
            hits = tree.range_search(
                Rect(Point(0.2, 0.2), Point(0.6, 0.6))
            )
            expected = [
                p for p in points
                if 0.2 <= p.x < 0.6 and 0.2 <= p.y < 0.6
            ]
            assert sorted(tuple(p) for p in hits) == sorted(
                tuple(p) for p in expected
            )
            assert tree.nearest(Point(0.5, 0.5), 3) is not None

    def test_duplicates_dropped(self, tmp_path):
        points = UniformPoints(seed=3).generate(100)
        tree = bulk_load_paged(
            tmp_path / "t.pf", points + points[:20], capacity=4
        )
        try:
            assert len(tree) == 100
        finally:
            tree.close()

    def test_empty_and_single(self, tmp_path):
        tree = bulk_load_paged(tmp_path / "e.pf", [], capacity=4)
        try:
            assert len(tree) == 0
            tree.validate()
        finally:
            tree.close()
        tree = bulk_load_paged(
            tmp_path / "s.pf", [Point(0.3, 0.7)], capacity=4
        )
        try:
            assert len(tree) == 1
            tree.validate()
        finally:
            tree.close()


class TestFallback:
    def test_near_coincident_points_take_incremental_path(self, tmp_path):
        # a cluster spaced ~2 ulp apart: the tree splits deeper than
        # the 62-bit Morton budget can discriminate, so the bulk path
        # must hand off wholesale — and still match the honest build
        base = 0.3
        cluster = [
            Point(base + i * 1e-16, base + i * 1e-16) for i in range(4)
        ]
        points = cluster + UniformPoints(seed=8).generate(50)
        tracer = Tracer()
        with tracing(tracer):
            bulk = bulk_load_paged(
                tmp_path / "bulk.pf", points, capacity=1
            )
        assert tracer.counters.get("storage.bulk.fallback") == 1
        incr = build_incremental(
            tmp_path / "incr.pf", points, capacity=1
        )
        try:
            assert_equivalent(bulk, incr)
        finally:
            bulk.close()
            incr.close()

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ValueError):
            bulk_load_paged(tmp_path / "x.pf", [], capacity=0)
        with pytest.raises(ValueError):
            bulk_load_paged(
                tmp_path / "x.pf", [], capacity=64, page_size=64
            )
        with pytest.raises(ValueError):
            bulk_load_paged(
                tmp_path / "x.pf", [Point(1.5, 0.5)], capacity=4
            )
        # a failed load must not leave a partial file behind
        assert not (tmp_path / "x.pf").exists()

    def test_existing_file_refused(self, tmp_path):
        path = tmp_path / "dup.pf"
        tree = bulk_load_paged(path, [Point(0.5, 0.5)], capacity=4)
        tree.close()
        with pytest.raises(Exception):
            bulk_load_paged(path, [Point(0.5, 0.5)], capacity=4)


class TestObservability:
    def test_counters(self, tmp_path):
        points = UniformPoints(seed=4).generate(200)
        tracer = Tracer()
        with tracing(tracer):
            tree = bulk_load_paged(tmp_path / "t.pf", points, capacity=4)
        tree.close()
        assert tracer.counters["storage.bulk.points"] == 200
        assert tracer.counters["storage.bulk.pages"] >= 1
        assert "storage.bulk_load" in tracer.to_dict()["spans"]


class TestServePreload:
    def test_preload_then_open_state(self, tmp_path):
        import argparse

        from repro.service.cli import _preload
        from repro.service.server import open_state

        path = tmp_path / "state.pf"
        args = argparse.Namespace(
            path=str(path), dim=2, preload=500, preload_seed=7,
            capacity=4, page_size=4096, pool_pages=64,
        )
        _preload(args)
        assert path.exists()
        tree, wal, replayed = open_state(
            str(path), create=True, capacity=4, dim=2,
            page_size=4096, pool_pages=64,
        )
        try:
            assert len(tree) == 500
            assert replayed == 0
            tree.validate()
        finally:
            tree.close()
            wal.close()


class TestCli:
    def test_build_bulk_flag(self, tmp_path, capsys):
        path = str(tmp_path / "cli.pf")
        assert storage_main(
            ["build", path, "--n", "300", "--bulk", "--capacity", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "bulk-loaded" in out
        assert "300 points" in out
        # the bulk file validates and matches an incremental build
        assert storage_main(["validate", path]) == 0
        incr_path = str(tmp_path / "cli-incr.pf")
        assert storage_main(
            ["build", incr_path, "--n", "300", "--capacity", "4"]
        ) == 0
        with PagedPRQuadtree.open(path) as bulk, \
                PagedPRQuadtree.open(incr_path) as incr:
            assert_equivalent(bulk, incr)
