"""Unit tests for the generalized PR quadtree."""

import pytest

from repro.geometry import Point, Rect
from repro.quadtree import PRQuadtree
from repro.workloads import UniformPoints


def build(points, capacity=1, **kwargs):
    tree = PRQuadtree(capacity=capacity, **kwargs)
    tree.insert_many(points)
    return tree


class TestConstruction:
    def test_defaults(self):
        tree = PRQuadtree()
        assert tree.capacity == 1
        assert tree.dim == 2
        assert tree.fanout == 4
        assert tree.bounds == Rect.unit(2)
        assert len(tree) == 0
        assert tree.leaf_count() == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PRQuadtree(capacity=0)

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            PRQuadtree(max_depth=-1)

    def test_octree_fanout(self):
        tree = PRQuadtree(dim=3)
        assert tree.fanout == 8
        assert tree.bounds == Rect.unit(3)

    def test_custom_bounds(self):
        bounds = Rect(Point(-1, -1), Point(1, 1))
        tree = PRQuadtree(bounds=bounds)
        assert tree.bounds == bounds
        assert tree.insert(Point(-0.5, 0.5))


class TestInsert:
    def test_single_point(self):
        tree = PRQuadtree()
        assert tree.insert(Point(0.3, 0.3))
        assert len(tree) == 1
        assert Point(0.3, 0.3) in tree

    def test_duplicate_rejected(self):
        tree = PRQuadtree()
        assert tree.insert(Point(0.3, 0.3))
        assert not tree.insert(Point(0.3, 0.3))
        assert len(tree) == 1

    def test_out_of_bounds_raises(self):
        tree = PRQuadtree()
        with pytest.raises(ValueError):
            tree.insert(Point(1.5, 0.5))

    def test_split_on_overflow(self):
        tree = build([Point(0.1, 0.1), Point(0.9, 0.9)])
        # one split: two occupied quadrants, two empty
        assert tree.leaf_count() == 4
        census = tree.occupancy_census()
        assert census.counts == (2, 2)

    def test_recursive_split(self):
        # both points in the SW quadrant force two levels of splitting
        tree = build([Point(0.1, 0.1), Point(0.3, 0.3)])
        assert tree.height() == 2
        assert tree.leaf_count() == 7  # 3 top-level leaves + 4 at level 2

    def test_figure1_reproduction(self):
        """The paper's Figure 1: four points, max depth 2, 13 leaves."""
        tree = build([
            Point(0.125, 0.875),
            Point(0.625, 0.625),
            Point(0.875, 0.625),
            Point(0.625, 0.125),
        ])
        assert tree.height() == 2
        census = tree.occupancy_census()
        assert census.total_items == 4

    def test_capacity_m_defers_split(self):
        pts = [Point(0.1, 0.1), Point(0.2, 0.2), Point(0.3, 0.3)]
        tree = build(pts, capacity=3)
        assert tree.leaf_count() == 1
        tree.insert(Point(0.4, 0.4))
        assert tree.leaf_count() > 1

    def test_insert_many_counts_new(self):
        tree = PRQuadtree()
        pts = [Point(0.1, 0.1), Point(0.9, 0.9), Point(0.1, 0.1)]
        assert tree.insert_many(pts) == 2

    def test_boundary_point_routed_high(self):
        tree = build([Point(0.5, 0.5), Point(0.9, 0.9)])
        # (0.5, 0.5) belongs to the NE quadrant under the half-open rule
        assert Point(0.5, 0.5) in tree
        for rect, _, occ in tree.leaves():
            if rect.contains_point(Point(0.5, 0.5)):
                assert occ >= 1


class TestMaxDepth:
    def test_overflow_at_depth_limit(self):
        tree = PRQuadtree(capacity=1, max_depth=1)
        # all four points in the same depth-1 quadrant: leaf overflows
        pts = [Point(0.01, 0.01), Point(0.02, 0.02), Point(0.03, 0.03)]
        tree.insert_many(pts)
        assert tree.height() == 1
        assert len(tree) == 3
        tree.validate()

    def test_census_clamps_overflow(self):
        tree = PRQuadtree(capacity=1, max_depth=0)
        tree.insert_many([Point(0.1, 0.1), Point(0.9, 0.9)])
        census = tree.occupancy_census()
        assert census.counts == (0, 1)
        with pytest.raises(ValueError):
            tree.occupancy_census(clamp_overflow=False)

    def test_zero_max_depth_never_splits(self):
        tree = PRQuadtree(capacity=1, max_depth=0)
        tree.insert_many(UniformPoints(seed=0).generate(50))
        assert tree.leaf_count() == 1


class TestDelete:
    def test_delete_present(self):
        tree = build([Point(0.1, 0.1), Point(0.9, 0.9)])
        assert tree.delete(Point(0.1, 0.1))
        assert len(tree) == 1
        assert Point(0.1, 0.1) not in tree

    def test_delete_absent(self):
        tree = build([Point(0.1, 0.1)])
        assert not tree.delete(Point(0.2, 0.2))
        assert not tree.delete(Point(2.0, 2.0))

    def test_delete_merges_back_to_root(self):
        tree = build([Point(0.1, 0.1), Point(0.9, 0.9)])
        tree.delete(Point(0.9, 0.9))
        assert tree.leaf_count() == 1
        tree.validate()

    def test_delete_merges_recursively(self):
        tree = build([Point(0.1, 0.1), Point(0.3, 0.3)])
        assert tree.height() == 2
        tree.delete(Point(0.3, 0.3))
        assert tree.leaf_count() == 1
        tree.validate()

    def test_insert_delete_round_trip(self):
        pts = UniformPoints(seed=5).generate(200)
        tree = build(pts, capacity=2)
        for p in pts:
            assert tree.delete(p)
        assert len(tree) == 0
        assert tree.leaf_count() == 1
        tree.validate()


class TestQueries:
    def test_range_search(self):
        pts = [Point(0.1, 0.1), Point(0.9, 0.9), Point(0.45, 0.45)]
        tree = build(pts, capacity=1)
        found = tree.range_search(Rect(Point(0, 0), Point(0.5, 0.5)))
        assert set(found) == {Point(0.1, 0.1), Point(0.45, 0.45)}

    def test_range_search_half_open(self):
        tree = build([Point(0.5, 0.5)])
        assert tree.range_search(Rect(Point(0, 0), Point(0.5, 0.5))) == []
        hits = tree.range_search(Rect(Point(0.5, 0.5), Point(1, 1)))
        assert hits == [Point(0.5, 0.5)]

    def test_range_dimension_mismatch(self):
        tree = PRQuadtree()
        with pytest.raises(ValueError):
            tree.range_search(Rect.unit(3))

    def test_nearest_single(self):
        pts = [Point(0.1, 0.1), Point(0.9, 0.9), Point(0.4, 0.6)]
        tree = build(pts)
        assert tree.nearest(Point(0.35, 0.65)) == [Point(0.4, 0.6)]

    def test_nearest_k(self):
        pts = [Point(0.1, 0.1), Point(0.2, 0.2), Point(0.9, 0.9)]
        tree = build(pts)
        got = tree.nearest(Point(0.0, 0.0), k=2)
        assert got == [Point(0.1, 0.1), Point(0.2, 0.2)]

    def test_nearest_k_larger_than_size(self):
        tree = build([Point(0.5, 0.5)])
        assert tree.nearest(Point(0, 0), k=5) == [Point(0.5, 0.5)]

    def test_nearest_invalid_k(self):
        with pytest.raises(ValueError):
            PRQuadtree().nearest(Point(0, 0), k=0)

    def test_points_iterates_all(self):
        pts = UniformPoints(seed=3).generate(100)
        tree = build(pts, capacity=4)
        assert set(tree.points()) == set(pts)


class TestMeasurement:
    def test_census_matches_size(self):
        pts = UniformPoints(seed=9).generate(500)
        tree = build(pts, capacity=3)
        census = tree.occupancy_census()
        assert census.total_items == 500
        assert census.total_nodes == tree.leaf_count()

    def test_depth_census_flatten_matches(self):
        pts = UniformPoints(seed=9).generate(300)
        tree = build(pts, capacity=2)
        depth = tree.depth_census()
        flat = tree.occupancy_census()
        assert depth.flatten().counts == flat.counts

    def test_leaf_count_formula(self):
        """Splitting only ever adds fanout-1 leaves, so leaf count is
        1 mod (fanout - 1)."""
        pts = UniformPoints(seed=2).generate(400)
        tree = build(pts, capacity=1)
        assert tree.leaf_count() % 3 == 1

    def test_node_count_consistent(self):
        pts = UniformPoints(seed=2).generate(200)
        tree = build(pts, capacity=2)
        leaves = tree.leaf_count()
        internals = (leaves - 1) // 3
        assert tree.node_count() == leaves + internals

    def test_validate_clean_tree(self):
        pts = UniformPoints(seed=1).generate(1000)
        tree = build(pts, capacity=4)
        tree.validate()


class TestDimensions:
    def test_1d_bintree_like(self):
        tree = PRQuadtree(dim=1, capacity=1)
        tree.insert(Point(0.2))
        tree.insert(Point(0.8))
        assert tree.leaf_count() == 2
        tree.validate()

    def test_3d_octree(self):
        tree = PRQuadtree(dim=3, capacity=2)
        gen = UniformPoints(dim=3, seed=4)
        tree.insert_many(gen.generate(300))
        tree.validate()
        census = tree.occupancy_census()
        assert census.total_items == 300
        assert census.total_nodes % 7 == 1


class TestReplaceIsConstantTime:
    """Regression for the quadratic clustered-insertion defect:
    ``_replace`` used to walk from the root on every split/merge, so a
    cluster driving splits D levels deep cost O(D^2) node visits.  The
    parent is now threaded through; ``replace_scans`` counts fallback
    root-walk visits and must stay 0."""

    def _pathological_cluster(self, levels=24):
        # successive points halve their distance to the origin corner,
        # forcing one extra split level per insertion at capacity 1
        return [
            Point(0.75 * 0.5 ** i, 0.75 * 0.5 ** i) for i in range(levels)
        ]

    def test_clustered_inserts_never_walk_from_root(self):
        tree = build(self._pathological_cluster(), capacity=1)
        assert tree.replace_scans == 0
        assert tree.max_depth_reached >= 20
        assert tree.split_count >= tree.max_depth_reached
        tree.validate()

    def test_clustered_deletes_never_walk_from_root(self):
        points = self._pathological_cluster()
        tree = build(points, capacity=1)
        for p in points:
            assert tree.delete(p)
        assert tree.replace_scans == 0
        assert tree.merge_count > 0
        assert len(tree) == 0
        tree.validate()

    def test_uniform_workload_never_walks_from_root(self):
        tree = build(UniformPoints(seed=3).generate(500), capacity=4)
        assert tree.replace_scans == 0
        assert tree.split_count > 0
        tree.validate()

    def test_counters_start_at_zero(self):
        tree = PRQuadtree(capacity=2)
        assert tree.split_count == 0
        assert tree.merge_count == 0
        assert tree.replace_scans == 0
        assert tree.max_depth_reached == 0


class TestNearestDeterministicTies:
    """Regression: equidistant neighbors used to be ordered by
    heap-insertion accident, so equivalent trees (same point set,
    different insertion order) could answer differently."""

    # four points exactly 0.25 from the center, in lexicographic order
    RING = [
        Point(0.25, 0.5),
        Point(0.5, 0.25),
        Point(0.5, 0.75),
        Point(0.75, 0.5),
    ]
    QUERY = Point(0.5, 0.5)

    def test_full_tie_ordering_is_point_order(self):
        tree = build(self.RING, capacity=1)
        assert tree.nearest(self.QUERY, k=4) == self.RING

    def test_partial_k_takes_smallest_point_order(self):
        tree = build(self.RING, capacity=1)
        assert tree.nearest(self.QUERY, k=2) == self.RING[:2]

    def test_insertion_order_is_irrelevant(self):
        import itertools

        for perm in itertools.permutations(self.RING):
            tree = build(list(perm), capacity=2)
            assert tree.nearest(self.QUERY, k=2) == self.RING[:2], perm
            assert tree.nearest(self.QUERY, k=3) == self.RING[:3], perm

    def test_distance_still_dominates_point_order(self):
        # a strictly closer point beats all tied ones regardless of order
        closer = Point(0.5, 0.6)
        tree = build(self.RING + [closer], capacity=1)
        got = tree.nearest(self.QUERY, k=3)
        assert got == [closer, self.RING[0], self.RING[1]]

    def test_ties_at_the_kth_slot_pick_smaller_coords(self):
        # worst candidate eviction: the late-arriving tied point with
        # smaller coordinates must replace the larger one
        tree = build([Point(0.75, 0.5), Point(0.25, 0.5)], capacity=1)
        assert tree.nearest(self.QUERY, k=1) == [Point(0.25, 0.5)]
