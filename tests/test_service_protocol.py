"""Wire protocol: frame codec, EOF semantics, hostile peers."""

import asyncio
import struct

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
)


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def _read(data: bytes):
    async def go():
        return await read_frame(_reader_with(data))
    return asyncio.run(go())


class TestCodec:
    def test_roundtrip(self):
        message = {"id": 7, "op": "insert", "point": [0.25, 0.75]}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_roundtrip_through_reader(self):
        message = {"id": 1, "op": "census"}
        assert _read(encode_frame(message)) == message

    def test_two_frames_in_one_buffer(self):
        a = {"id": 1, "op": "ping"}
        b = {"id": 2, "op": "stat"}

        async def go():
            reader = _reader_with(encode_frame(a) + encode_frame(b))
            return await read_frame(reader), await read_frame(reader)

        assert asyncio.run(go()) == (a, b)

    def test_encode_rejects_oversized(self):
        huge = {"blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(FrameTooLargeError):
            encode_frame(huge)

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")


class TestReadFrame:
    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_eof_mid_prefix_raises(self):
        with pytest.raises(ProtocolError):
            _read(b"\x00\x00")

    def test_eof_mid_payload_raises(self):
        frame = encode_frame({"id": 1, "op": "ping"})
        with pytest.raises(ProtocolError):
            _read(frame[:-3])

    def test_oversized_declared_length_raises_before_reading(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            _read(prefix)

    def test_undecodable_payload_raises(self):
        payload = b"not json at all"
        with pytest.raises(ProtocolError):
            _read(struct.pack(">I", len(payload)) + payload)
