"""``repro db`` CLI: golden outputs for ls/show/trend, backfill of the
committed bench baselines, diff exit codes, gc, and the REPRO_NO_DB
guard.  Everything runs against a temp database via --db."""

from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.rundb.cli import main as db_main
from repro.rundb.repository import RunDB

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SNAPSHOT = REPO_ROOT / "BENCH_10.json"
BENCH_TRACE = REPO_ROOT / "BENCH_TRACE_10.json"


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "runs.sqlite"


def _seed(db_path, walls, stage="census"):
    with RunDB(db_path) as db:
        for i, wall in enumerate(walls):
            run_id = db.begin_run(
                "bench", label=f"run-{i}", profile="smoke",
                created_unix=1000.0 + i,
            )
            db.record_stage(run_id, stage, wall)
            db.record_trace(run_id, "census", {
                "spans": {"kernel.census": {
                    "count": 2, "total_s": wall, "mean_s": wall / 2,
                    "children": {},
                }},
            })
            db.finish_run(run_id, wall_s=wall)


class TestInitAndGuard:
    def test_init_creates(self, db_path, capsys):
        assert db_main(["--db", str(db_path), "init"]) == 0
        out = capsys.readouterr().out
        assert "run DB ready" in out
        assert "schema v3" in out
        assert db_path.exists()

    def test_no_db_env_refuses(self, db_path):
        # conftest sets REPRO_NO_DB=1; without --db the CLI must refuse
        # rather than touch the user's default database
        with pytest.raises(SystemExit, match="REPRO_NO_DB"):
            db_main(["init"])

    def test_repro_db_env_is_honored(self, db_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_DB", raising=False)
        monkeypatch.setenv("REPRO_DB", str(db_path))
        assert db_main(["init"]) == 0
        assert db_path.exists()

    def test_read_commands_require_existing_file(self, db_path):
        with pytest.raises(SystemExit, match="no database"):
            db_main(["--db", str(db_path), "ls"])


class TestIngest:
    def test_backfills_committed_baselines(self, db_path, capsys):
        assert db_main([
            "--db", str(db_path), "ingest",
            str(BENCH_SNAPSHOT), str(BENCH_TRACE),
        ]) == 0
        out = capsys.readouterr().out
        assert f"{BENCH_SNAPSHOT}: run #1" in out
        # the snapshot embeds its traces, so the bundle is a no-op
        assert f"{BENCH_TRACE}: already ingested" in out
        with RunDB(db_path) as db:
            run = db.run(1)
            assert run["kind"] == "bench"
            assert run["source"] == "ingest"
            assert run["bench_version"] == 10
            assert run["stages"]
            assert run["traces"]

    def test_reingest_is_idempotent(self, db_path, capsys):
        db_main(["--db", str(db_path), "ingest", str(BENCH_SNAPSHOT)])
        capsys.readouterr()
        assert db_main([
            "--db", str(db_path), "ingest", str(BENCH_SNAPSHOT)
        ]) == 0
        assert "already ingested" in capsys.readouterr().out
        with RunDB(db_path) as db:
            assert db.counts()["runs"] == 1

    def test_bad_file_reports_and_fails(self, db_path, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("[1, 2, 3]\n", encoding="utf-8")
        assert db_main(["--db", str(db_path), "ingest", str(bogus)]) == 1
        assert "SKIPPED" in capsys.readouterr().err


class TestListShow:
    def test_ls_golden(self, db_path, capsys):
        _seed(db_path, [0.1, 0.2])
        assert db_main(["--db", str(db_path), "ls"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].split() == [
            "id", "kind", "when", "status", "profile", "label"
        ]
        # newest first
        assert "run-1" in lines[1] and "run-0" in lines[2]
        assert "(2 run(s), 0 trial row(s), 2 span row(s))" in out

    def test_ls_empty(self, db_path, capsys):
        db_main(["--db", str(db_path), "init"])
        capsys.readouterr()
        assert db_main(["--db", str(db_path), "ls"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show_golden(self, db_path, capsys):
        _seed(db_path, [0.125])
        assert db_main(["--db", str(db_path), "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "run #1: bench (live, done)" in out
        assert "profile      : smoke" in out
        assert "census       0.1250s" in out
        assert "traces       : census" in out

    def test_show_unknown_run_exits_2(self, db_path, capsys):
        db_main(["--db", str(db_path), "init"])
        assert db_main(["--db", str(db_path), "show", "9"]) == 2
        assert "no run #9" in capsys.readouterr().err


class TestTrend:
    def test_requires_exactly_one_selector(self, db_path):
        _seed(db_path, [0.1])
        with pytest.raises(SystemExit, match="exactly one"):
            db_main(["--db", str(db_path), "trend"])
        with pytest.raises(SystemExit, match="exactly one"):
            db_main(["--db", str(db_path), "trend",
                     "--stage", "census", "--span", "x"])

    def test_healthy_trend_exits_0(self, db_path, capsys):
        _seed(db_path, [0.1, 0.102, 0.098, 0.101])
        code = db_main([
            "--db", str(db_path), "trend", "--stage", "census",
            "--metric", "stage_wall_s",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "trend: census.stage_wall_s (4 run(s))" in out
        assert "verdict: ok" in out

    def test_regression_exits_1(self, db_path, capsys):
        _seed(db_path, [0.1, 0.102, 0.098, 0.3])
        code = db_main([
            "--db", str(db_path), "trend", "--stage", "census",
        ])
        assert code == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_span_trend(self, db_path, capsys):
        _seed(db_path, [0.1, 0.1, 0.1])
        code = db_main([
            "--db", str(db_path), "trend", "--span", "kernel.census",
        ])
        assert code == 0
        assert "kernel.census" in capsys.readouterr().out

    def test_drift_gauge_prints_alarm_table(self, db_path, capsys):
        with RunDB(db_path) as db:
            for i in range(3):
                run_id = db.begin_run("serve", created_unix=float(i))
                db.record_trace(run_id, "", {
                    "gauges": {"planner.drift": {
                        "last": 0.01, "mean": 0.01, "count": 1,
                    }},
                })
                db.record_drift(run_id, 0, {
                    "n_points": 512, "actual_pages": 40,
                    "page_error": 0.01, "occupancy_error": 0.0,
                    "armed": True, "alarm": i == 2,
                })
        code = db_main([
            "--db", str(db_path), "trend", "--gauge", "planner.drift",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "drift: alarms over time" in out
        assert "total: 1 alarm(s) across 3 run(s)" in out
        assert "trend: gauge:planner.drift" in out


class TestDiff:
    def test_explicit_pair(self, db_path, capsys):
        _seed(db_path, [0.1, 0.1])
        assert db_main(["--db", str(db_path), "diff", "1", "2"]) == 0
        assert "diff: run #1 -> run #2" in capsys.readouterr().out

    def test_default_pair_and_regression_exit(self, db_path, capsys):
        _seed(db_path, [0.1, 0.5])  # span mean 0.05 -> 0.25
        assert db_main(["--db", str(db_path), "diff"]) == 1
        out = capsys.readouterr().out
        assert "diff: run #1 -> run #2" in out
        assert "REGRESSION" in out

    def test_single_run_needs_allow_missing(self, db_path, capsys):
        _seed(db_path, [0.1])
        assert db_main(["--db", str(db_path), "diff"]) == 2
        capsys.readouterr()
        assert db_main([
            "--db", str(db_path), "diff", "--allow-missing"
        ]) == 0
        assert "need two recorded" in capsys.readouterr().out

    def test_one_run_id_rejected(self, db_path):
        _seed(db_path, [0.1])
        with pytest.raises(SystemExit, match="zero or two"):
            db_main(["--db", str(db_path), "diff", "1"])


class TestGcAndOccupancy:
    def test_gc_output(self, db_path, capsys):
        _seed(db_path, [0.1, 0.2, 0.3])
        assert db_main([
            "--db", str(db_path), "gc", "--keep", "1", "--no-vacuum"
        ]) == 0
        assert "deleted 2 run(s)" in capsys.readouterr().out
        with RunDB(db_path) as db:
            assert db.counts()["runs"] == 1

    def test_occupancy(self, db_path, capsys):
        with RunDB(db_path) as db:
            run_id = db.begin_run("session")
            db.record_trials(run_id, [{
                "spec": {"capacity": 4, "n_points": 300, "trials": 2,
                         "seed": 1, "generator": "uniform"},
                "cache_key": "k", "engine": "object", "workers": 1,
                "cache_hit": False, "wall_s": 0.1, "trials": 2,
                "mean_occupancy": 1.5, "count_sums": [],
            }])
        assert db_main(["--db", str(db_path), "occupancy"]) == 0
        assert "occupancy vs n" in capsys.readouterr().out


class TestMainDispatch:
    def test_repro_main_routes_db(self, db_path, capsys):
        assert repro_main(["db", "--db", str(db_path), "init"]) == 0
        assert "run DB ready" in capsys.readouterr().out
