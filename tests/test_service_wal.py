"""Write-ahead log: roundtrip, torn tails, generations, rotation."""

import struct

import pytest

from repro.geometry import Point
from repro.service.wal import (
    OP_DELETE,
    OP_INSERT,
    WalError,
    WalRecord,
    WriteAheadLog,
)

_POINTS = [Point(0.1, 0.2), Point(0.3, 0.4), Point(0.5, 0.6)]


def _populate(path, generation=0, points=_POINTS):
    wal = WriteAheadLog.create(path, generation, 2)
    for i, p in enumerate(points):
        wal.append(OP_INSERT if i % 2 == 0 else OP_DELETE, p)
    wal.sync()
    wal.close()
    return path


class TestRoundtrip:
    def test_append_sync_reopen_replays(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        wal, records = WriteAheadLog.open(path)
        try:
            assert [r.point for r in records] == _POINTS
            assert [r.op for r in records] == [OP_INSERT, OP_DELETE, OP_INSERT]
            assert [r.op_name for r in records] == \
                ["insert", "delete", "insert"]
            assert wal.record_count == 3
            assert wal.generation == 0
            assert wal.dim == 2
        finally:
            wal.close()

    def test_append_after_reopen_extends(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.append(OP_INSERT, Point(0.9, 0.9))
        wal.close()  # close syncs
        _, records = WriteAheadLog.open(path)
        assert len(records) == 4
        assert records[-1].point == Point(0.9, 0.9)

    def test_unsynced_counter(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "log.wal", 0, 2)
        try:
            wal.append(OP_INSERT, Point(0.1, 0.1))
            wal.append(OP_INSERT, Point(0.2, 0.2))
            assert wal.unsynced == 2
            assert wal.sync() == 2
            assert wal.unsynced == 0
            assert wal.sync() == 0  # nothing new: no-op
        finally:
            wal.close()

    def test_higher_dim_points(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "log.wal", 0, 3)
        wal.append(OP_INSERT, Point(0.1, 0.2, 0.3))
        wal.close()
        _, records = WriteAheadLog.open(tmp_path / "log.wal")
        assert records == [WalRecord(OP_INSERT, Point(0.1, 0.2, 0.3))]


class TestTornTail:
    """A crash mid-write leaves a torn final record — recovery drops
    exactly that record and keeps everything before it."""

    @pytest.mark.parametrize("chop", [1, 5, 16])
    def test_truncated_final_record_is_dropped(self, tmp_path, chop):
        path = _populate(tmp_path / "log.wal")
        full = path.read_bytes()
        path.write_bytes(full[:-chop])
        wal, records = WriteAheadLog.open(path)
        try:
            assert len(records) == 2  # third record torn away
            assert [r.point for r in records] == _POINTS[:2]
        finally:
            wal.close()

    def test_truncation_resets_to_clean_boundary(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        full_len = len(path.read_bytes())
        path.write_bytes(path.read_bytes()[:-1])
        wal, _ = WriteAheadLog.open(path)
        wal.append(OP_INSERT, Point(0.7, 0.7))
        wal.close()
        # the file holds exactly 3 intact records again, no junk between
        assert len(path.read_bytes()) == full_len
        _, records = WriteAheadLog.open(path)
        assert len(records) == 3
        assert records[-1].point == Point(0.7, 0.7)

    def test_corrupt_crc_drops_tail(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a bit in the last record's payload
        path.write_bytes(bytes(raw))
        _, records = WriteAheadLog.open(path)
        assert len(records) == 2

    def test_corrupt_mid_record_drops_everything_after(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        raw = bytearray(path.read_bytes())
        # header is 8+8+2+4 = 22 bytes; corrupt the first record's payload
        raw[22 + 8 + 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        _, records = WriteAheadLog.open(path)
        assert records == []


class TestHeader:
    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"NOTAWAL0" + b"\x00" * 20)
        with pytest.raises(WalError):
            WriteAheadLog.open(path)

    def test_truncated_header_refused(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"RPRO")
        with pytest.raises(WalError):
            WriteAheadLog.open(path)

    def test_header_crc_mismatch_refused(self, tmp_path):
        path = _populate(tmp_path / "log.wal")
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0xFF  # corrupt the generation field
        path.write_bytes(bytes(raw))
        with pytest.raises(WalError):
            WriteAheadLog.open(path)

    def test_generation_survives_roundtrip(self, tmp_path):
        path = _populate(tmp_path / "log.wal", generation=41)
        wal, _ = WriteAheadLog.open(path)
        try:
            assert wal.generation == 41
        finally:
            wal.close()


class TestRotation:
    def test_create_over_existing_resets(self, tmp_path):
        path = _populate(tmp_path / "log.wal", generation=3)
        wal = WriteAheadLog.create(path, 4, 2)  # rotation: replace in place
        wal.close()
        wal, records = WriteAheadLog.open(path)
        try:
            assert records == []
            assert wal.generation == 4
        finally:
            wal.close()

    def test_no_tmp_litter_on_create(self, tmp_path):
        _populate(tmp_path / "log.wal")
        assert [p.name for p in tmp_path.iterdir()] == ["log.wal"]


class TestValidation:
    def test_bad_op_refused(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "log.wal", 0, 2)
        try:
            with pytest.raises(ValueError):
                wal.append(9, Point(0.1, 0.1))
        finally:
            wal.close()

    def test_dim_mismatch_refused(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "log.wal", 0, 2)
        try:
            with pytest.raises(ValueError):
                wal.append(OP_INSERT, Point(0.1, 0.2, 0.3))
        finally:
            wal.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "log.wal", 0, 2)
        wal.close()
        with pytest.raises(WalError):
            wal.append(OP_INSERT, Point(0.1, 0.1))

    def test_create_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog.create(tmp_path / "a.wal", -1, 2)
        with pytest.raises(ValueError):
            WriteAheadLog.create(tmp_path / "b.wal", 0, 0)
