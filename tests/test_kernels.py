"""Unit tests for the vectorized census engine (repro.kernels)."""

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.kernels import LeafPartition, vector_census
from repro.obs import Tracer, tracing
from repro.quadtree import PRQuadtree


class TestVectorCensusBasics:
    def test_empty_tree_is_one_empty_leaf(self):
        partition = vector_census([], capacity=4)
        assert partition.leaf_count == 1
        assert partition.size == 0
        assert partition.occupancy_census().counts == (1, 0, 0, 0, 0)

    def test_single_point(self):
        partition = vector_census([Point(0.5, 0.5)], capacity=1)
        assert partition.leaf_count == 1
        assert partition.height() == 0
        assert partition.occupancy_census().counts == (0, 1)

    def test_under_capacity_never_splits(self):
        pts = [Point(0.1, 0.1), Point(0.9, 0.9)]
        partition = vector_census(pts, capacity=2)
        assert partition.leaf_count == 1
        assert partition.occupancy_census().counts == (0, 0, 1)

    def test_one_split_counts_empty_siblings(self):
        # two points in opposite quadrants: 4 leaves, 2 of them empty
        pts = [Point(0.1, 0.1), Point(0.9, 0.9)]
        partition = vector_census(pts, capacity=1)
        assert partition.leaf_count == 4
        assert partition.occupancy_census().counts == (2, 2)
        assert partition.depth_census().by_depth == {1: (2, 2)}

    def test_accepts_coordinate_array(self):
        arr = np.array([[0.1, 0.1], [0.9, 0.9], [0.2, 0.7]])
        from_array = vector_census(arr, capacity=1)
        from_points = vector_census(
            [Point(*row) for row in arr], capacity=1
        )
        assert from_array.occupancy_census() == from_points.occupancy_census()

    def test_duplicates_collapse_like_tree_insert(self):
        p = Point(0.3, 0.4)
        partition = vector_census([p, p, p, Point(0.8, 0.8)], capacity=2)
        assert partition.size == 2
        assert partition.leaf_count == 1

    def test_negative_zero_is_a_duplicate_of_zero(self):
        bounds = Rect(Point(-1.0, -1.0), Point(1.0, 1.0))
        pts = [Point(0.0, 0.5), Point(-0.0, 0.5)]
        partition = vector_census(pts, capacity=8, bounds=bounds)
        assert partition.size == 1

    def test_max_depth_zero_pins_the_root(self):
        pts = [Point(0.1, 0.2), Point(0.6, 0.7), Point(0.9, 0.1)]
        partition = vector_census(pts, capacity=1, max_depth=0)
        assert partition.leaf_count == 1
        assert int(partition.occupancies[0]) == 3


class TestValidation:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            vector_census([], capacity=0)

    def test_max_depth_validated(self):
        with pytest.raises(ValueError, match="max_depth"):
            vector_census([], capacity=1, max_depth=-1)

    def test_point_outside_bounds(self):
        with pytest.raises(ValueError, match="outside tree bounds"):
            vector_census([Point(1.5, 0.5)], capacity=1)

    def test_hi_edge_is_exclusive(self):
        # half-open bounds, exactly like PRQuadtree.insert
        with pytest.raises(ValueError, match="outside tree bounds"):
            vector_census([Point(1.0, 0.5)], capacity=1)

    def test_dim_bounds_conflict(self):
        with pytest.raises(ValueError, match="conflicts"):
            vector_census([], capacity=1, bounds=Rect.unit(3), dim=4)

    def test_dim_mismatch_in_points(self):
        with pytest.raises(ValueError):
            vector_census([Point(0.5, 0.5, 0.5)], capacity=1, dim=2)

    def test_dim_defaults_to_bounds(self):
        # dim=2 default defers to explicit 3-d bounds, like the tree
        partition = vector_census(
            [Point(0.5, 0.5, 0.5)], capacity=1, bounds=Rect.unit(3)
        )
        assert partition.leaf_count == 1


class TestLeafPartition:
    def test_clamp_overflow(self):
        part = LeafPartition(
            capacity=2,
            depths=np.array([0]),
            occupancies=np.array([5]),
        )
        assert part.occupancy_census().counts == (0, 0, 1)
        with pytest.raises(ValueError, match="exceeds capacity"):
            part.occupancy_census(clamp_overflow=False)
        with pytest.raises(ValueError, match="exceeds capacity"):
            part.depth_census(clamp_overflow=False)

    def test_census_counts_are_plain_ints(self):
        partition = vector_census(
            [Point(0.1, 0.1), Point(0.9, 0.9)], capacity=1
        )
        assert all(
            type(c) is int for c in partition.occupancy_census().counts
        )
        for row in partition.depth_census().by_depth.values():
            assert all(type(c) is int for c in row)


class TestObservability:
    def test_kernel_spans_and_counters(self):
        tracer = Tracer()
        pts = [Point(x / 40.0, (x * 7 % 40) / 40.0) for x in range(40)]
        with tracing(tracer):
            partition = vector_census(pts, capacity=2)
        spans = tracer.to_dict()["spans"]
        assert "kernel.census" in spans
        children = spans["kernel.census"]["children"]
        assert "kernel.codes" in children
        assert "kernel.sort" in children
        assert "kernel.partition" in children
        assert tracer.counters["kernel.census"] == 1
        assert tracer.counters["kernel.points"] == 40
        assert tracer.counters["kernel.leaves"] == partition.leaf_count
        assert tracer.gauges["kernel.depth"].max == partition.height()

    def test_untraced_runs_free(self):
        # no tracer installed: kernel must not blow up on obs calls
        partition = vector_census([Point(0.2, 0.3)], capacity=1)
        assert partition.leaf_count == 1


class TestAgainstTree:
    def test_leaf_records_match_tree_shape(self):
        pts = [Point(x / 50.0, (x * 13 % 50) / 50.0) for x in range(50)]
        tree = PRQuadtree(capacity=2)
        tree.insert_many(pts)
        partition = vector_census(pts, capacity=2)
        assert partition.leaf_count == tree.leaf_count()
        assert partition.height() == tree.height()
        assert partition.size == len(tree)
