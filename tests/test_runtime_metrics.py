"""Unit tests for repro.runtime.metrics."""

import time

from repro.runtime import MetricsCollector, RunReport
from repro.runtime.metrics import ChunkMetric, Stopwatch


class TestCollector:
    def test_starts_empty(self):
        report = MetricsCollector().report()
        assert report.trees_built == 0
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert report.retries == 0
        assert report.chunks == []
        assert report.runs == 0

    def test_records_everything(self):
        collector = MetricsCollector()
        collector.record_workers(4)
        collector.record_workers(2)  # narrower pool does not shrink it
        collector.record_chunk(3, 0.5, "pool")
        collector.record_chunk(2, 0.25, "degraded")
        collector.record_cache_hit()
        collector.record_cache_miss()
        collector.record_retry()
        collector.add_wall_time(1.0)
        report = collector.report()
        assert report.workers == 4
        assert report.trees_built == 5
        assert report.cache_hits == 1
        assert report.cache_misses == 1
        assert report.runs == 2
        assert report.retries == 1
        assert report.wall_time == 1.0
        assert report.chunk_wall_time == 0.75
        assert report.trees_per_second == 5.0

    def test_report_is_a_snapshot(self):
        collector = MetricsCollector()
        collector.record_chunk(1, 0.1, "serial")
        report = collector.report()
        collector.record_chunk(1, 0.1, "serial")
        assert len(report.chunks) == 1
        assert collector.report().trees_built == 2

    def test_live_properties(self):
        collector = MetricsCollector()
        collector.record_chunk(7, 0.1, "serial")
        collector.record_cache_hit()
        collector.record_cache_miss()
        assert collector.trees_built == 7
        assert collector.cache_hits == 1
        assert collector.cache_misses == 1


class TestRunReport:
    def test_zero_wall_time_throughput(self):
        assert RunReport().trees_per_second == 0.0

    def test_summary_mentions_the_numbers(self):
        report = RunReport(
            workers=3,
            chunks=[ChunkMetric(2, 0.1, "pool"), ChunkMetric(1, 0.1, "pool")],
            trees_built=3,
            cache_hits=4,
            cache_misses=2,
            retries=1,
            wall_time=0.5,
        )
        text = report.summary()
        assert "workers        : 3" in text
        assert "4 cache hits" in text
        assert "2 misses" in text
        assert "trees built    : 3" in text
        assert "2 pool" in text
        assert "6.0 trees/sec" in text

    def test_summary_with_no_chunks(self):
        assert "none" in RunReport().summary()


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01
