"""Telemetry plane: metrics op deltas, slow-op ring, the ``serve
top`` aggregation/gates, and connection close races."""

import argparse
import asyncio
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, Tracer, tracing
from repro.service import SpatialIndexServer, open_state
from repro.service.cli import (
    _top_loop,
    check_top_gates,
    merge_metrics,
    parse_p99_specs,
    render_top,
)
from repro.service.loadgen import LoadError, ServiceClient, run_load
from repro.service.telemetry import (
    MetricsCursor,
    ServiceTelemetry,
    SlowOp,
    SlowOpRing,
    args_digest,
)
from repro.workloads import UniformPoints


def _with_server(tmp_path, coroutine_fn, tracer=None, **server_kwargs):
    """Run ``coroutine_fn(server, client)`` against a fresh server on an
    ephemeral port, tearing everything down afterwards."""

    async def go():
        tree, wal, _ = open_state(
            tmp_path / "state.pf", create=True, capacity=4
        )
        server = SpatialIndexServer(tree, wal, port=0, **server_kwargs)
        await server.start()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        try:
            return await coroutine_fn(server, client)
        finally:
            await client.close()
            await server.stop()

    if tracer is not None:
        with tracing(tracer):
            return asyncio.run(go())
    return asyncio.run(go())


async def _insert_many(client, points):
    for p in points:
        response = await client.call("insert", point=list(p.coords))
        assert response["ok"]


class TestMetricsOp:
    def test_deltas_across_polls(self, tmp_path):
        """Each poll reports only what accumulated since the previous
        one; merging the deltas reconstructs the cumulative stream."""
        points = UniformPoints(seed=3).generate(80)

        async def go(server, client):
            await _insert_many(client, points[:50])
            first = (await client.call("metrics"))["result"]
            await _insert_many(client, points[50:])
            second = (await client.call("metrics"))["result"]
            third = (await client.call("metrics"))["result"]
            return first, second, third

        first, second, third = _with_server(tmp_path, go, tracer=Tracer())

        assert (first["seq"], second["seq"], third["seq"]) == (1, 2, 3)
        h1 = Histogram.from_dict(first["histograms"]["service.op.insert"])
        h2 = Histogram.from_dict(second["histograms"]["service.op.insert"])
        assert h1.count == 50
        assert h2.count == 30
        # an idle poll reports no insert delta at all
        assert "service.op.insert" not in third["histograms"]
        # requests/ops are cumulative, not deltas
        assert third["requests"] > second["requests"]
        assert third["ops"]["insert"] == 80

    def test_cursors_are_per_connection(self, tmp_path):
        """Two pollers each see the complete stream — neither steals
        the other's deltas."""
        points = UniformPoints(seed=7).generate(40)

        async def go(server, client):
            other = await ServiceClient.connect(*server.address)
            try:
                await _insert_many(client, points)
                a = (await client.call("metrics"))["result"]
                b = (await other.call("metrics"))["result"]
                return a, b
            finally:
                await other.close()

        a, b = _with_server(tmp_path, go, tracer=Tracer())
        ha = Histogram.from_dict(a["histograms"]["service.op.insert"])
        hb = Histogram.from_dict(b["histograms"]["service.op.insert"])
        assert a["seq"] == 1 and b["seq"] == 1
        assert ha.count == 40
        assert hb.count == 40

    def test_metrics_without_tracer_still_answers(self, tmp_path):
        async def go(server, client):
            await client.call("insert", point=[0.5, 0.5])
            return (await client.call("metrics"))["result"]

        payload = _with_server(tmp_path, go)  # no tracer
        assert payload["histograms"] == {}
        assert payload["counters"] == {}
        assert payload["seq"] == 1
        assert payload["requests"] >= 1
        assert payload["ops"]["insert"] == 1
        # slow-op ring runs regardless of tracing
        assert any(e["op"] == "insert" for e in payload["slow_ops"])

    def test_slow_ops_carry_request_ids_and_spans(self, tmp_path):
        points = UniformPoints(seed=11).generate(60)

        async def go(server, client):
            await _insert_many(client, points)
            await client.call("range", lo=[0.1, 0.1], hi=[0.9, 0.9])
            return (await client.call("metrics"))["result"]

        payload = _with_server(tmp_path, go, tracer=Tracer())
        slow = payload["slow_ops"]
        assert slow, "expected retained slow ops after 60 mutations"
        # slowest first, every entry resolvable to a span breakdown
        latencies = [e["latency_ms"] for e in slow]
        assert latencies == sorted(latencies, reverse=True)
        ids = [e["request_id"] for e in slow]
        assert len(set(ids)) == len(ids)
        for entry in slow:
            assert entry["request_id"] >= 1
            assert len(entry["args_digest"]) == 8
            if entry["op"] in ("insert", "delete"):
                assert set(entry["spans"]) >= {
                    "queue_s", "wal_sync_s", "apply_s"
                }
            elif entry["op"] == "range":
                assert "handler_s" in entry["spans"]

    def test_percentiles_agree_with_loadgen(self, tmp_path):
        """Server-side op histograms (via the metrics op) must agree
        with the load generator's client-side measurements: exact
        count parity, percentiles within pipelining + bucket slack."""

        async def go(server, client):
            host, port = server.address
            # verify=False keeps the loadgen's op stream the *only*
            # traffic per op, so counts must match exactly
            report = await run_load(
                host, port, ops=400, size=120, seed=23,
                query_fraction=0.3, window=4, verify=False,
            )
            payload = (await client.call("metrics"))["result"]
            return report, payload

        report, payload = _with_server(tmp_path, go, tracer=Tracer())
        assert report.failures == 0
        assert set(report.latencies) >= {"insert", "delete"}
        for op, client_hist in report.latencies.items():
            server_hist = Histogram.from_dict(
                payload["histograms"][f"service.op.{op}"]
            )
            assert server_hist.count == client_hist.count
            for q in (0.5, 0.99):
                client_q = client_hist.quantile(q)
                server_q = server_hist.quantile(q)
                # the client sees server time + queueing/loop overhead,
                # never less (modulo one log-bucket of resolution)
                assert client_q >= server_q * 0.8 - 1e-3
                assert client_q <= server_q * 5.0 + 20e-3

    def test_client_side_merge_reconstructs_cumulative(self, tmp_path):
        """Merging every poll's delta equals the server's cumulative
        histogram bucket for bucket — the property ``serve top``'s
        totals rely on."""
        points = UniformPoints(seed=29).generate(90)

        async def go(server, client):
            polls = []
            for lo in range(0, 90, 30):
                await _insert_many(client, points[lo:lo + 30])
                polls.append((await client.call("metrics"))["result"])
            return polls

        polls = _with_server(tmp_path, go, tracer=Tracer())
        merged = Histogram()
        for payload in polls:
            delta = payload["histograms"].get("service.op.insert")
            if delta:
                merged.merge(Histogram.from_dict(delta))
        assert merged.count == 90


class TestSlowOpRing:
    def test_keeps_top_k_and_evicts_fastest(self):
        ring = SlowOpRing(4)
        latencies = [0.010, 0.002, 0.050, 0.001, 0.030, 0.020, 0.005]
        for i, latency in enumerate(latencies):
            ring.observe(SlowOp(
                request_id=i + 1, op="insert", digest="d",
                latency_s=latency, unix=0.0,
            ))
        kept = [e["latency_ms"] for e in ring.to_list()]
        assert kept == [50.0, 30.0, 20.0, 10.0]
        assert ring.evicted == 2  # 0.002 and 0.005 pushed out; 0.001 refused
        assert ring.floor == pytest.approx(0.010)

    def test_too_fast_entries_are_refused_once_full(self):
        ring = SlowOpRing(2)
        for i, latency in enumerate([0.5, 0.4]):
            ring.observe(SlowOp(i + 1, "range", "d", latency, 0.0))
        assert not ring.observe(SlowOp(3, "range", "d", 0.1, 0.0))
        assert ring.evicted == 0
        assert [e["request_id"] for e in ring.to_list()] == [1, 2]

    def test_random_streams_converge_on_the_k_slowest(self):
        rng = random.Random(1987)
        for _trial in range(20):
            k = rng.randrange(1, 8)
            ring = SlowOpRing(k)
            latencies = [rng.random() for _ in range(rng.randrange(1, 60))]
            for i, latency in enumerate(latencies):
                ring.observe(SlowOp(i, "op", "d", latency, 0.0))
            expected = sorted(latencies, reverse=True)[:k]
            got = [e["latency_ms"] / 1e3 for e in ring.to_list()]
            assert got == pytest.approx(expected)
            # every eviction was a ring resident pushed out by a
            # slower arrival; never more than arrivals - capacity
            assert 0 <= ring.evicted <= max(0, len(latencies) - k)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            SlowOpRing(0)

    def test_telemetry_skips_below_floor(self):
        telemetry = ServiceTelemetry(slow_k=2)
        telemetry.observe(telemetry.next_request_id(), "a", "d", 0.5)
        telemetry.observe(telemetry.next_request_id(), "a", "d", 0.4)
        telemetry.observe(telemetry.next_request_id(), "a", "d", 0.4)
        assert len(telemetry.ring) == 2
        assert telemetry.requests == 3

    def test_args_digest_ignores_request_id(self):
        a = args_digest({"op": "range", "lo": [0, 0], "hi": [1, 1], "id": 1})
        b = args_digest({"op": "range", "lo": [0, 0], "hi": [1, 1], "id": 9})
        c = args_digest({"op": "range", "lo": [0, 0], "hi": [0.5, 1]})
        assert a == b
        assert a != c
        assert len(a) == 8


_durations = st.lists(
    st.floats(min_value=1e-7, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=60,
)


class TestHistogramDelta:
    @settings(max_examples=60, deadline=None)
    @given(_durations, _durations)
    def test_delta_is_exact_bucketwise_subtraction(self, prefix, suffix):
        """full.delta(snapshot at prefix) has exactly the suffix's
        buckets, and merging it back onto the snapshot reconstructs
        the full histogram — delta is merge's inverse."""
        snap = Histogram()
        for value in prefix:
            snap.observe(value)
        mark = snap.copy()
        full = snap  # keep observing into the same histogram
        for value in suffix:
            full.observe(value)

        delta = full.delta(mark)
        suffix_only = Histogram()
        for value in suffix:
            suffix_only.observe(value)
        assert delta.count == suffix_only.count
        assert delta.to_dict().get("buckets") == \
            suffix_only.to_dict().get("buckets")

        rebuilt = mark.copy()
        rebuilt.merge(delta)
        assert rebuilt.to_dict().get("buckets") == \
            full.to_dict().get("buckets")
        assert rebuilt.count == full.count

    @settings(max_examples=40, deadline=None)
    @given(_durations)
    def test_delta_against_none_is_a_full_copy(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        delta = hist.delta(None)
        assert delta.count == hist.count
        assert delta.to_dict() == hist.to_dict()

    def test_delta_resyncs_when_earlier_is_ahead(self):
        """A mark from a *different* histogram that saw more than the
        current one (tracer swapped) resynchronizes to a full copy."""
        ahead = Histogram()
        for _ in range(10):
            ahead.observe(0.5)
        current = Histogram()
        current.observe(0.5)
        delta = current.delta(ahead)
        assert delta.count == current.count
        assert delta.to_dict()["buckets"] == current.to_dict()["buckets"]

    def test_cursor_filters_prefixes_and_tracks_marks(self):
        cursor = MetricsCursor()
        service = Histogram()
        service.observe(0.01)
        other = Histogram()
        other.observe(0.01)
        hists = {"service.op.insert": service, "runtime.build": other}
        first = cursor.histogram_deltas(hists)
        assert set(first) == {"service.op.insert"}
        service.observe(0.02)
        second = cursor.histogram_deltas(hists)
        assert Histogram.from_dict(second["service.op.insert"]).count == 1
        assert cursor.histogram_deltas(hists) == {}

    def test_cursor_counter_resync_and_sparsity(self):
        cursor = MetricsCursor()
        assert cursor.counter_deltas({"a": 5, "b": 0}) == {"a": 5}
        assert cursor.counter_deltas({"a": 7}) == {"a": 2}
        # counter went backwards (tracer swapped): resync to full value
        assert cursor.counter_deltas({"a": 3}) == {"a": 3}
        assert cursor.advance() == 1 and cursor.advance() == 2


class TestCloseRace:
    def test_poll_racing_server_close_fails_cleanly(self):
        """A metrics/stat poll racing a connection close must fail
        with a clear LoadError — never hang on a dead future."""

        async def drop_after_partial_read(reader, writer):
            await reader.read(10)  # swallow part of the frame, then die
            writer.close()

        async def go():
            server = await asyncio.start_server(
                drop_after_partial_read, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            client = await ServiceClient.connect(host, port)
            # the poll's response never arrives: the future must fail,
            # not wedge the await forever
            with pytest.raises(LoadError):
                await asyncio.wait_for(client.call("metrics"), timeout=5.0)
            # the connection error is sticky — later polls fail fast
            # at submit() instead of queueing doomed futures
            with pytest.raises(LoadError):
                await asyncio.wait_for(client.call("stat"), timeout=5.0)
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(go())

    def test_all_pending_polls_fail_on_close(self):
        """Every in-flight future fails when the connection dies, not
        just the oldest one."""

        async def drop_everything(reader, writer):
            await reader.read(10)
            writer.close()

        async def go():
            server = await asyncio.start_server(
                drop_everything, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            client = await ServiceClient.connect(host, port)
            futures = [await client.submit("metrics") for _ in range(3)]
            results = await asyncio.gather(
                *(asyncio.wait_for(f, timeout=5.0) for f in futures),
                return_exceptions=True,
            )
            assert all(isinstance(r, LoadError) for r in results)
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(go())

    def test_pending_futures_fail_when_client_closes(self, tmp_path):
        async def go():
            tree, wal, _ = open_state(
                tmp_path / "state.pf", create=True, capacity=4
            )
            server = SpatialIndexServer(tree, wal, port=0)
            await server.start()
            client = await ServiceClient.connect(*server.address)
            await client.close()
            with pytest.raises(LoadError):
                await client.call("ping")
            await server.stop()

        asyncio.run(go())


class TestServeTop:
    def _payload(self, count=10, p50=0.002):
        hist = Histogram()
        for _ in range(count):
            hist.observe(p50)
        return {
            "seq": 1, "uptime_s": 2.0, "requests": count,
            "ops": {"insert": count}, "queue_depth": 0,
            "pool_hit_rate": 0.99,
            "counters": {"service.ops": count},
            "gauges": {},
            "histograms": {"service.op.insert": hist.to_dict()},
            "slow_ops": [{
                "request_id": 7, "op": "insert", "args_digest": "ab12cd34",
                "latency_ms": 9.5, "unix": 0.0,
                "spans": {"queue_s": 1.0, "wal_sync_s": 6.0,
                          "apply_s": 0.5},
            }],
            "slow_ops_evicted": 3,
        }

    def test_merge_metrics_accumulates_deltas(self):
        totals, counters = {}, {}
        merge_metrics(self._payload(count=10), totals, counters)
        merge_metrics(self._payload(count=4), totals, counters)
        assert totals["service.op.insert"].count == 14
        assert counters["service.ops"] == 14

    def test_render_top_is_pure_and_complete(self):
        totals, counters = {}, {}
        payload = self._payload()
        merge_metrics(payload, totals, counters)
        frame = render_top(payload, totals, "127.0.0.1:7871", poll=1)
        assert frame == render_top(payload, totals, "127.0.0.1:7871", 1)
        assert "127.0.0.1:7871" in frame and "poll #1" in frame
        assert "insert" in frame and "p99" in frame
        assert "#7" in frame and "ab12cd34" in frame
        assert "wal_sync" in frame and "3 evicted" in frame

    def test_parse_p99_specs(self):
        assert parse_p99_specs(["range=5", "2.5"]) == {
            "range": 5.0, "insert": 2.5,
        }
        with pytest.raises(SystemExit):
            parse_p99_specs(["insert=fast"])

    def test_check_top_gates(self):
        totals = {}
        merge_metrics(self._payload(count=10, p50=0.002), totals, {})
        assert check_top_gates(totals, ["insert"], {"insert": 50.0}) == []
        missing = check_top_gates(totals, ["range"], {})
        assert missing and "range" in missing[0]
        too_slow = check_top_gates(totals, [], {"insert": 0.001})
        assert too_slow and "exceeds" in too_slow[0]
        ungated = check_top_gates(totals, [], {"range": 5.0})
        assert ungated and "no requests" in ungated[0]

    def test_top_loop_against_live_server(self, tmp_path, capsys):
        """Two polls against a real server: totals hold the cumulative
        insert histogram, frames render to stdout."""
        points = UniformPoints(seed=13).generate(30)

        async def go(server, client):
            await _insert_many(client, points)
            host, port = server.address
            args = argparse.Namespace(
                host=host, port=port, interval=0.01, iterations=2,
                no_clear=True,
            )
            return await _top_loop(args)

        totals, counters = _with_server(tmp_path, go, tracer=Tracer())
        assert totals["service.op.insert"].count == 30
        out = capsys.readouterr().out
        assert out.count("repro serve top") == 2
        assert check_top_gates(
            totals, ["insert"], {"insert": 10_000.0}
        ) == []
