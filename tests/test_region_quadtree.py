"""Unit and property tests for the region quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import RegionQuadtree


def images(size=8):
    return st.builds(
        lambda bits: np.array(bits, dtype=bool).reshape(size, size),
        st.lists(st.booleans(), min_size=size * size, max_size=size * size),
    )


class TestConstruction:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            RegionQuadtree(0)
        with pytest.raises(ValueError):
            RegionQuadtree(3)

    def test_empty_tree(self):
        tree = RegionQuadtree(8)
        assert tree.leaf_count() == 1
        assert tree.black_area() == 0
        tree.validate()

    def test_from_array_rejects_non_square(self):
        with pytest.raises(ValueError):
            RegionQuadtree.from_array(np.zeros((4, 8), dtype=bool))

    def test_uniform_images_are_single_leaves(self):
        ones = RegionQuadtree.from_array(np.ones((8, 8), dtype=bool))
        zeros = RegionQuadtree.from_array(np.zeros((8, 8), dtype=bool))
        assert ones.leaf_count() == 1
        assert zeros.leaf_count() == 1
        assert ones.black_area() == 64

    def test_checkerboard_fully_splits(self):
        image = np.indices((8, 8)).sum(axis=0) % 2 == 0
        tree = RegionQuadtree.from_array(image)
        assert tree.leaf_count() == 64
        tree.validate()

    def test_quadrant_block(self):
        """One solid quadrant: 4 leaves (1 black, 3 white)."""
        image = np.zeros((8, 8), dtype=bool)
        image[:4, :4] = True  # y in 0..3, x in 0..3 -> SW quadrant
        tree = RegionQuadtree.from_array(image)
        assert tree.leaf_count() == 4
        assert tree.block_size_census() == {4: 1}


class TestPixels:
    def test_get_set_round_trip(self):
        tree = RegionQuadtree(8)
        tree.set(3, 5, True)
        assert tree.get(3, 5)
        assert not tree.get(5, 3)
        tree.validate()

    def test_bounds_checked(self):
        tree = RegionQuadtree(4)
        with pytest.raises(ValueError):
            tree.get(4, 0)
        with pytest.raises(ValueError):
            tree.set(-1, 0, True)

    def test_set_merges_back(self):
        tree = RegionQuadtree(8)
        tree.set(0, 0, True)
        assert tree.leaf_count() > 1
        tree.set(0, 0, False)
        assert tree.leaf_count() == 1
        tree.validate()

    def test_filling_a_quadrant_merges(self):
        tree = RegionQuadtree(4)
        for x in range(2):
            for y in range(2):
                tree.set(x, y, True)
        assert tree.block_size_census() == {2: 1}
        tree.validate()

    def test_idempotent_set(self):
        tree = RegionQuadtree(4)
        tree.set(1, 1, True)
        leaves = tree.leaf_count()
        tree.set(1, 1, True)
        assert tree.leaf_count() == leaves


class TestReconstruction:
    @given(images())
    @settings(max_examples=60, deadline=None)
    def test_array_round_trip(self, image):
        tree = RegionQuadtree.from_array(image)
        assert np.array_equal(tree.to_array(), image)
        tree.validate()

    @given(images())
    @settings(max_examples=40, deadline=None)
    def test_black_area_matches(self, image):
        tree = RegionQuadtree.from_array(image)
        assert tree.black_area() == int(image.sum())

    @given(images())
    @settings(max_examples=40, deadline=None)
    def test_blocks_tile_image(self, image):
        tree = RegionQuadtree.from_array(image)
        covered = np.zeros_like(image, dtype=int)
        for x, y, size, _ in tree.blocks():
            covered[y : y + size, x : x + size] += 1
        assert (covered == 1).all()

    @given(images())
    @settings(max_examples=40, deadline=None)
    def test_pixelwise_get(self, image):
        tree = RegionQuadtree.from_array(image)
        for y in range(0, 8, 3):
            for x in range(0, 8, 3):
                assert tree.get(x, y) == image[y][x]


class TestSetOperations:
    @given(images(), images())
    @settings(max_examples=40, deadline=None)
    def test_union(self, a, b):
        ta, tb = RegionQuadtree.from_array(a), RegionQuadtree.from_array(b)
        union = ta.union(tb)
        assert np.array_equal(union.to_array(), a | b)
        union.validate()

    @given(images(), images())
    @settings(max_examples=40, deadline=None)
    def test_intersection(self, a, b):
        ta, tb = RegionQuadtree.from_array(a), RegionQuadtree.from_array(b)
        both = ta.intersection(tb)
        assert np.array_equal(both.to_array(), a & b)
        both.validate()

    @given(images())
    @settings(max_examples=40, deadline=None)
    def test_complement_involution(self, a):
        tree = RegionQuadtree.from_array(a)
        assert np.array_equal(
            tree.complement().complement().to_array(), a
        )

    @given(images())
    @settings(max_examples=30, deadline=None)
    def test_de_morgan(self, a):
        tree = RegionQuadtree.from_array(a)
        inverse = tree.complement()
        assert tree.union(inverse).black_area() == 64
        assert tree.intersection(inverse).black_area() == 0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            RegionQuadtree(4).union(RegionQuadtree(8))


class TestRender:
    def test_render_shape(self):
        tree = RegionQuadtree(4)
        tree.set(0, 0, True)
        art = tree.render()
        lines = art.split("\n")
        assert len(lines) == 4
        assert lines[-1][0] == "#"  # (0, 0) is bottom-left
        assert art.count("#") == 1
