"""Tests for PR-quadtree neighbor finding and point-quadtree deletion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import (
    PointQuadtree,
    PRQuadtree,
    all_neighbor_pairs,
    edge_neighbors,
    leaf_adjacency_degree,
)
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.001, max_value=0.999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=40, unique=True)


def quartered_tree():
    """One split: four quadrant leaves."""
    tree = PRQuadtree(capacity=1)
    tree.insert_many([Point(0.1, 0.1), Point(0.9, 0.9)])
    return tree


class TestEdgeNeighbors:
    def test_quartered_adjacency(self):
        tree = quartered_tree()
        sw = Rect(Point(0, 0), Point(0.5, 0.5))
        east = edge_neighbors(tree, sw, "east")
        north = edge_neighbors(tree, sw, "north")
        assert east == [Rect(Point(0.5, 0), Point(1, 0.5))]
        assert north == [Rect(Point(0, 0.5), Point(0.5, 1))]

    def test_boundary_blocks_have_no_outside_neighbors(self):
        tree = quartered_tree()
        sw = Rect(Point(0, 0), Point(0.5, 0.5))
        assert edge_neighbors(tree, sw, "west") == []
        assert edge_neighbors(tree, sw, "south") == []

    def test_smaller_neighbors_enumerated(self):
        """A coarse block next to a refined region sees all the small
        blocks along its edge."""
        tree = PRQuadtree(capacity=1)
        # crowd the NE quadrant so it splits further
        tree.insert_many(
            [Point(0.6, 0.6), Point(0.9, 0.9), Point(0.6, 0.9), Point(0.1, 0.1)]
        )
        nw = Rect(Point(0, 0.5), Point(0.5, 1))
        east_side = edge_neighbors(tree, nw, "east")
        assert len(east_side) >= 2
        for rect in east_side:
            assert rect.lo.x == 0.5

    def test_requires_leaf_block(self):
        tree = quartered_tree()
        with pytest.raises(ValueError):
            edge_neighbors(tree, Rect.unit(2), "east")  # internal block

    def test_invalid_side(self):
        tree = quartered_tree()
        sw = Rect(Point(0, 0), Point(0.5, 0.5))
        with pytest.raises(ValueError):
            edge_neighbors(tree, sw, "up")

    def test_planar_only(self):
        tree = PRQuadtree(dim=3)
        tree.insert(Point(0.1, 0.1, 0.1))
        with pytest.raises(ValueError):
            edge_neighbors(tree, tree.bounds, "east")


class TestNeighborPairs:
    def test_quartered_pairs(self):
        tree = quartered_tree()
        pairs = all_neighbor_pairs(tree)
        assert len(pairs) == 4  # SW-SE, NW-NE, SW-NW, SE-NE

    @given(point_lists)
    @settings(max_examples=25, deadline=None)
    def test_pairs_consistent_with_edge_neighbors(self, pts):
        tree = PRQuadtree(capacity=2)
        tree.insert_many(pts)
        pairs = {
            frozenset((a, b)) for a, b in all_neighbor_pairs(tree)
        }
        for rect, _, _ in tree.leaves():
            for side in ("east", "north"):
                for neighbor in edge_neighbors(tree, rect, side):
                    assert frozenset((rect, neighbor)) in pairs
        # and nothing extra: every pair is a genuine edge adjacency
        for pair in pairs:
            a, b = tuple(pair)
            shares_x = a.hi.x == b.lo.x or b.hi.x == a.lo.x
            shares_y = a.hi.y == b.lo.y or b.hi.y == a.lo.y
            assert shares_x or shares_y

    @given(point_lists)
    @settings(max_examples=20, deadline=None)
    def test_degree_sums_to_twice_pairs(self, pts):
        tree = PRQuadtree(capacity=2)
        tree.insert_many(pts)
        degree = leaf_adjacency_degree(tree)
        pairs = all_neighbor_pairs(tree)
        assert sum(degree.values()) == 2 * len(pairs)

    def test_single_leaf_no_pairs(self):
        tree = PRQuadtree()
        assert all_neighbor_pairs(tree) == []
        assert leaf_adjacency_degree(tree) == {tree.bounds: 0}


class TestPointQuadtreeDelete:
    def test_delete_leaf_point(self):
        tree = PointQuadtree()
        tree.insert_many([Point(0.5, 0.5), Point(0.7, 0.7)])
        assert tree.delete(Point(0.7, 0.7))
        assert len(tree) == 1
        assert not tree.contains(Point(0.7, 0.7))
        tree.validate()

    def test_delete_root_reinserts_subtrees(self):
        pts = [Point(0.5, 0.5), Point(0.2, 0.2), Point(0.8, 0.8),
               Point(0.2, 0.8), Point(0.8, 0.2)]
        tree = PointQuadtree()
        tree.insert_many(pts)
        assert tree.delete(Point(0.5, 0.5))
        assert len(tree) == 4
        for p in pts[1:]:
            assert tree.contains(p)
        tree.validate()

    def test_delete_absent(self):
        tree = PointQuadtree()
        tree.insert(Point(0.5, 0.5))
        assert not tree.delete(Point(0.1, 0.1))
        assert len(tree) == 1

    def test_delete_from_empty(self):
        assert not PointQuadtree().delete(Point(0.5, 0.5))

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_delete_everything(self, pts):
        tree = PointQuadtree()
        tree.insert_many(pts)
        for p in pts:
            assert tree.delete(p)
            tree.validate()
        assert len(tree) == 0

    @given(point_lists, st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_delete_membership(self, pts, rng):
        tree = PointQuadtree()
        tree.insert_many(pts)
        reference = set(pts)
        order = list(pts)
        rng.shuffle(order)
        for p in order[: len(order) // 2]:
            assert tree.delete(p)
            reference.discard(p)
            for q in reference:
                assert tree.contains(q)
        tree.validate()

    def test_queries_after_delete(self):
        pts = UniformPoints(seed=8).generate(120)
        tree = PointQuadtree()
        tree.insert_many(pts)
        for p in pts[::3]:
            tree.delete(p)
        survivors = [p for i, p in enumerate(pts) if i % 3 != 0]
        window = Rect(Point(0.2, 0.2), Point(0.8, 0.8))
        assert set(tree.range_search(window)) == {
            p for p in survivors if window.contains_point(p)
        }
        q = Point(0.4, 0.6)
        assert tree.nearest(q) == [
            min(survivors, key=lambda p: p.distance_to(q))
        ]