"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.trials == 10
        assert args.seed == 1987
        assert args.workers == 1
        assert args.engine == "object"
        assert args.cache_dir is None
        assert args.no_cache is False
        assert args.verbose is False

    def test_engine_flag_parses(self):
        from repro.__main__ import runtime_config_from_args

        args = build_parser().parse_args(["table1", "--engine", "vector"])
        assert args.engine == "vector"
        assert runtime_config_from_args(args).engine == "vector"

    def test_engine_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--engine", "warp"])

    def test_runtime_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--workers", "4", "--cache-dir", "/tmp/x",
             "--no-cache", "--verbose"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True
        assert args.verbose is True

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["table1", "--trials", "1", "--workers", "0"])

    def test_model_requires_capacity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestCommands:
    def test_model_output(self, capsys):
        assert main(["model", "--capacity", "1"]) == 0
        out = capsys.readouterr().out
        assert "0.5000, 0.5000" in out
        assert "growth rate a           = 3.0000" in out

    def test_model_octree(self, capsys):
        assert main(["model", "--capacity", "1", "--dim", "3"]) == 0
        out = capsys.readouterr().out
        assert "8-way splits" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--trials", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "bucket size 8" in out

    def test_table3_small(self, capsys):
        assert main(["table3", "--trials", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "post-split floor" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.count("*") == 4

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--trials", "1", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "semi-log" in out
        assert "o" in out


class TestRuntimeIntegration:
    def test_workers_flag_runs(self, capsys):
        assert main(
            ["table1", "--trials", "2", "--seed", "3", "--workers", "2",
             "--no-cache"]
        ) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_engine_vector_prints_identical_table(self, capsys):
        argv = ["table1", "--trials", "2", "--seed", "3", "--no-cache"]
        assert main(argv) == 0
        object_out = capsys.readouterr().out
        assert main(argv + ["--engine", "vector"]) == 0
        vector_out = capsys.readouterr().out
        assert vector_out == object_out

    def test_verbose_prints_run_report(self, capsys):
        assert main(
            ["table1", "--trials", "1", "--seed", "3", "--verbose",
             "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "run report:" in out
        assert "trees built    : 8" in out  # 8 capacities x 1 trial
        assert "0 cache hits" in out

    def test_warm_cache_rerun_builds_zero_trees(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        argv = ["table1", "--trials", "1", "--seed", "3",
                "--cache-dir", cache_dir, "--verbose"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "8 misses" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "trees built    : 0" in warm
        assert "8 cache hits, 0 misses" in warm

    def test_no_cache_leaves_directory_untouched(self, tmp_path, capsys):
        cache_dir = tmp_path / "never"
        assert main(
            ["table1", "--trials", "1", "--seed", "3",
             "--cache-dir", str(cache_dir), "--no-cache"]
        ) == 0
        capsys.readouterr()
        assert not cache_dir.exists()
