"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.trials == 10
        assert args.seed == 1987

    def test_model_requires_capacity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["model"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestCommands:
    def test_model_output(self, capsys):
        assert main(["model", "--capacity", "1"]) == 0
        out = capsys.readouterr().out
        assert "0.5000, 0.5000" in out
        assert "growth rate a           = 3.0000" in out

    def test_model_octree(self, capsys):
        assert main(["model", "--capacity", "1", "--dim", "3"]) == 0
        out = capsys.readouterr().out
        assert "8-way splits" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--trials", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "bucket size 8" in out

    def test_table3_small(self, capsys):
        assert main(["table3", "--trials", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "post-split floor" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert out.count("*") == 4

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--trials", "1", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "semi-log" in out
        assert "o" in out
