"""Unit tests for the phasing (oscillation) analysis."""

import math

import numpy as np
import pytest

from repro.core import (
    damping_ratio,
    extrema_spacing,
    fit_oscillation,
    oscillation_period,
)


def synthetic_series(
    sizes, mean=3.7, amplitude=0.4, period=4.0, phase=0.0, decay=0.0
):
    """occ(n) = mean + A e^{-decay k} cos(2 pi log_period n + phase)."""
    out = []
    for n in sizes:
        cycles = math.log(n) / math.log(period)
        envelope = amplitude * math.exp(-decay * cycles)
        out.append(mean + envelope * math.cos(2 * math.pi * cycles + phase))
    return out


SIZES = [64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896, 4096]


class TestFit:
    def test_recovers_synthetic_parameters(self):
        occ = synthetic_series(SIZES, mean=3.5, amplitude=0.3, phase=0.7)
        fit = fit_oscillation(SIZES, occ)
        assert fit.mean == pytest.approx(3.5, abs=0.02)
        assert fit.amplitude == pytest.approx(0.3, abs=0.02)
        assert fit.rms_residual < 0.02

    def test_flat_series_zero_amplitude(self):
        fit = fit_oscillation(SIZES, [2.0] * len(SIZES))
        assert fit.amplitude == pytest.approx(0.0, abs=1e-9)
        assert fit.mean == pytest.approx(2.0)

    def test_value_at_reproduces_fit(self):
        occ = synthetic_series(SIZES)
        fit = fit_oscillation(SIZES, occ)
        for n, y in zip(SIZES, occ):
            assert fit.value_at(n) == pytest.approx(y, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_oscillation([1, 2, 3], [1.0, 2.0, 3.0])  # too few
        with pytest.raises(ValueError):
            fit_oscillation(SIZES, [1.0] * 3)  # length mismatch
        with pytest.raises(ValueError):
            fit_oscillation([0] + SIZES[1:], [1.0] * len(SIZES))
        with pytest.raises(ValueError):
            fit_oscillation(SIZES, [1.0] * len(SIZES), period_factor=1.0)


class TestPeriodRecovery:
    def test_finds_period_four(self):
        occ = synthetic_series(SIZES, period=4.0)
        assert oscillation_period(SIZES, occ) == pytest.approx(4.0, rel=0.1)

    def test_finds_period_two(self):
        sizes = [int(16 * 2 ** (k / 4)) for k in range(24)]
        occ = synthetic_series(sizes, period=2.0)
        assert oscillation_period(sizes, occ) == pytest.approx(2.0, rel=0.1)


class TestDamping:
    def test_undamped_ratio_near_one(self):
        occ = synthetic_series(SIZES, decay=0.0)
        assert damping_ratio(SIZES, occ) == pytest.approx(1.0, abs=0.25)

    def test_damped_ratio_below_one(self):
        occ = synthetic_series(SIZES, decay=0.5)
        assert damping_ratio(SIZES, occ) < 0.6

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError):
            damping_ratio(SIZES[:6], [1.0] * 6)

    def test_zero_early_amplitude_raises(self):
        occ = [2.0] * len(SIZES)
        with pytest.raises(ArithmeticError):
            damping_ratio(SIZES, occ)

    def test_unsorted_input_handled(self):
        occ = synthetic_series(SIZES, decay=0.5)
        order = np.random.default_rng(0).permutation(len(SIZES))
        shuffled_sizes = [SIZES[i] for i in order]
        shuffled_occ = [occ[i] for i in order]
        assert damping_ratio(shuffled_sizes, shuffled_occ) == pytest.approx(
            damping_ratio(SIZES, occ)
        )


class TestExtrema:
    def test_maxima_every_factor_of_four(self):
        occ = synthetic_series(SIZES, period=4.0, phase=0.0)
        spacings = extrema_spacing(SIZES, occ)
        assert spacings
        for s in spacings:
            assert s == pytest.approx(4.0, rel=0.3)

    def test_monotone_series_no_interior_maxima(self):
        occ = list(range(len(SIZES)))
        # strictly increasing: the plateau test finds no interior peak
        assert extrema_spacing(SIZES, [float(v) for v in occ]) == ()


class TestPeriodogram:
    def test_spectrum_peaks_at_true_period(self):
        from repro.core import dominant_period, log_periodogram

        occ = synthetic_series(SIZES, period=4.0, amplitude=0.4)
        factors, amplitudes = log_periodogram(SIZES, occ)
        assert len(factors) == len(amplitudes)
        assert dominant_period(SIZES, occ) == pytest.approx(4.0, rel=0.15)

    def test_flat_series_flat_spectrum(self):
        from repro.core import log_periodogram

        factors, amplitudes = log_periodogram(SIZES, [2.0] * len(SIZES))
        assert max(amplitudes) < 1e-9

    def test_invalid_factors(self):
        from repro.core import log_periodogram

        with pytest.raises(ValueError):
            log_periodogram(SIZES, [1.0] * len(SIZES), period_factors=[0.5])

    def test_statistical_baseline_spectrum(self):
        """The analytic Fagin-style curve has its dominant period at
        x4 — the Fourier-series reading the paper cites.  The sampling
        grid must exceed 2 samples per period or the peak aliases to
        x2, so use 8 samples per quadrupling."""
        from repro.core import dominant_period
        from repro.core.fagin import occupancy_series

        sizes = sorted({int(64 * 2 ** (k / 4)) for k in range(25)})
        occ = occupancy_series(sizes, 8)
        assert dominant_period(sizes, occ) == pytest.approx(4.0, rel=0.15)
