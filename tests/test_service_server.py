"""SpatialIndexServer: ops over the wire, batching, checkpoints."""

import asyncio

import pytest

from repro.geometry import Point, Rect
from repro.obs import Tracer, tracing
from repro.quadtree import PRQuadtree
from repro.service import SpatialIndexServer, open_state, wal_path_for
from repro.service.loadgen import ServiceClient
from repro.workloads import UniformPoints


def _with_server(tmp_path, coroutine_fn, tracer=None, **server_kwargs):
    """Run ``coroutine_fn(server, client)`` against a fresh server on an
    ephemeral port, tearing everything down afterwards."""

    async def go():
        tree, wal, _ = open_state(
            tmp_path / "state.pf", create=True, capacity=4
        )
        server = SpatialIndexServer(tree, wal, port=0, **server_kwargs)
        await server.start()
        host, port = server.address
        client = await ServiceClient.connect(host, port)
        try:
            return await coroutine_fn(server, client)
        finally:
            await client.close()
            await server.stop()

    if tracer is not None:
        with tracing(tracer):
            return asyncio.run(go())
    return asyncio.run(go())


class TestOps:
    def test_insert_delete_semantics(self, tmp_path):
        async def go(server, client):
            r1 = await client.call("insert", point=[0.25, 0.75])
            r2 = await client.call("insert", point=[0.25, 0.75])
            r3 = await client.call("delete", point=[0.25, 0.75])
            r4 = await client.call("delete", point=[0.25, 0.75])
            return r1, r2, r3, r4

        r1, r2, r3, r4 = _with_server(tmp_path, go)
        assert (r1["ok"], r1["result"]) == (True, True)
        assert (r2["ok"], r2["result"]) == (True, False)  # duplicate
        assert (r3["ok"], r3["result"]) == (True, True)
        assert (r4["ok"], r4["result"]) == (True, False)  # already gone

    def test_range_and_nearest_match_local_tree(self, tmp_path):
        points = UniformPoints(seed=5).generate(200)
        local = PRQuadtree(capacity=4)
        local.insert_many(points)

        async def go(server, client):
            for p in points:
                await client.call("insert", point=list(p.coords))
            box = await client.call(
                "range", lo=[0.2, 0.1], hi=[0.7, 0.5]
            )
            near = await client.call("nearest", point=[0.31, 0.62], k=5)
            return box["result"], near["result"]

        box, near = _with_server(tmp_path, go)
        expected_box = local.range_search(
            Rect(Point(0.2, 0.1), Point(0.7, 0.5))
        )
        assert sorted(map(tuple, box)) == \
            sorted(tuple(p.coords) for p in expected_box)
        assert [tuple(p) for p in near] == \
            [tuple(p.coords) for p in local.nearest(Point(0.31, 0.62), 5)]

    def test_census_and_stat(self, tmp_path):
        async def go(server, client):
            for p in UniformPoints(seed=9).generate(150):
                await client.call("insert", point=list(p.coords))
            census = await client.call("census")
            stat = await client.call("stat")
            ping = await client.call("ping")
            return census["result"], stat["result"], ping["result"]

        census, stat, ping = _with_server(tmp_path, go)
        assert ping == "pong"
        assert census["points"] == 150
        assert sum(
            i * c for i, c in enumerate(census["counts"])
        ) == 150
        assert census["generation"] == 0
        assert stat["points"] == 150
        assert stat["capacity"] == 4
        assert stat["dim"] == 2
        assert stat["sessions"] == 1
        assert stat["wal_records"] == 150
        assert stat["ops"]["insert"] == 150
        assert "drift" in stat and "pool" in stat

    def test_stat_reports_latency_histograms_when_traced(self, tmp_path):
        async def go(server, client):
            await client.call("insert", point=[0.5, 0.5])
            stat = await client.call("stat")
            return stat["result"]

        stat = _with_server(tmp_path, go, tracer=Tracer())
        assert stat["latency_ms"]["insert"]["count"] == 1
        assert stat["latency_ms"]["insert"]["p99_ms"] > 0


class TestErrors:
    @pytest.mark.parametrize("request_fields", [
        {"op": "insert"},                                # missing point
        {"op": "insert", "point": "nope"},               # not a list
        {"op": "insert", "point": []},                   # empty
        {"op": "insert", "point": [0.1, "x"]},           # non-numeric
        {"op": "insert", "point": [0.1, 0.2, 0.3]},      # wrong dim
        {"op": "insert", "point": [2.0, 2.0]},           # out of bounds
        {"op": "nearest", "point": [0.5, 0.5], "k": 0},  # bad k
        {"op": "nearest", "point": [0.5, 0.5], "k": True},
        {"op": "range", "lo": [0.0, 0.0]},               # missing hi
        {"op": "frobnicate"},                            # unknown op
        {},                                              # no op at all
    ])
    def test_bad_requests_get_error_responses(self, tmp_path,
                                              request_fields):
        async def go(server, client):
            bad = await client.call(**{"op": "invalid", **request_fields}) \
                if "op" not in request_fields else \
                await client.call(
                    request_fields["op"],
                    **{k: v for k, v in request_fields.items() if k != "op"}
                )
            good = await client.call("ping")  # connection survived
            return bad, good

        bad, good = _with_server(tmp_path, go)
        assert bad["ok"] is False
        assert isinstance(bad["error"], str) and bad["error"]
        assert good["result"] == "pong"

    def test_undecodable_frame_drops_connection(self, tmp_path):
        async def go(server, client):
            client._writer.write(b"\x00\x00\x00\x04junk")
            await client._writer.drain()
            # server should close on us; next call fails
            with pytest.raises(Exception):
                await asyncio.wait_for(client.call("ping"), timeout=5)
            return server.protocol_errors

        assert _with_server(tmp_path, go) == 1


class TestBatchingAndCheckpoints:
    def test_pipelined_mutations_share_group_commits(self, tmp_path):
        tracer = Tracer()

        async def go(server, client):
            futures = [
                await client.submit("insert", point=[x / 300.0, 0.5])
                for x in range(200)
            ]
            responses = await asyncio.gather(*futures)
            assert all(r["ok"] and r["result"] for r in responses)

        _with_server(tmp_path, go, tracer=tracer)
        syncs = tracer.counters["service.wal.sync_calls"]
        assert tracer.counters["service.wal.append"] == 200
        assert syncs < 200 / 4  # group commit actually batched

    def test_checkpoint_op_bumps_generation_and_rotates_wal(self, tmp_path):
        async def go(server, client):
            await client.call("insert", point=[0.5, 0.5])
            before = (await client.call("stat"))["result"]
            ck = await client.call("checkpoint")
            after = (await client.call("stat"))["result"]
            return before, ck, after

        before, ck, after = _with_server(tmp_path, go)
        assert before["generation"] == 0
        assert before["wal_records"] == 1
        assert ck["result"] == 1
        assert after["generation"] == 1
        assert after["wal_records"] == 0  # fresh log after rotation

    def test_automatic_checkpoint_by_mutation_count(self, tmp_path):
        async def go(server, client):
            for x in range(30):
                await client.call("insert", point=[x / 30.0, 0.25])
            return (await client.call("stat"))["result"]

        stat = _with_server(tmp_path, go, checkpoint_every=10)
        assert stat["generation"] >= 2
        assert stat["mutations_since_checkpoint"] < 10

    def test_mutation_order_preserved_within_connection(self, tmp_path):
        async def go(server, client):
            # pipelined insert→delete→insert of the SAME point: final
            # state depends on application order, not ack order
            futures = []
            for op in ("insert", "delete", "insert"):
                futures.append(await client.submit(op, point=[0.5, 0.5]))
            responses = await asyncio.gather(*futures)
            assert [r["result"] for r in responses] == [True, True, True]
            census = await client.call("census")
            return census["result"]["points"]

        assert _with_server(tmp_path, go) == 1


class TestLifecycle:
    def test_shutdown_op_stops_serve_forever(self, tmp_path):
        async def go():
            tree, wal, _ = open_state(
                tmp_path / "state.pf", create=True, capacity=4
            )
            server = SpatialIndexServer(tree, wal, port=0)
            await server.start()
            host, port = server.address
            serving = asyncio.ensure_future(server.serve_forever())
            client = await ServiceClient.connect(host, port)
            response = await client.call("shutdown")
            await client.close()
            await asyncio.wait_for(serving, timeout=10)
            return response

        response = asyncio.run(go())
        assert response["ok"] and response["result"] is True

    def test_state_survives_clean_restart(self, tmp_path):
        points = UniformPoints(seed=3).generate(80)

        async def first(server, client):
            for p in points:
                await client.call("insert", point=list(p.coords))

        _with_server(tmp_path, first)
        tree, wal, replayed = open_state(tmp_path / "state.pf")
        try:
            # clean stop checkpoints: nothing to replay, nothing lost
            assert replayed == 0
            assert len(tree) == len(set(points))
            for p in points:
                assert tree.contains(p)
        finally:
            wal.close()
            tree.close()

    def test_queued_mutations_drain_on_stop(self, tmp_path):
        async def go():
            tree, wal, _ = open_state(
                tmp_path / "state.pf", create=True, capacity=4
            )
            server = SpatialIndexServer(tree, wal, port=0)
            await server.start()
            futures = [
                server.enqueue_mutation(1, Point(x / 50.0, 0.5))
                for x in range(40)
            ]
            await server.stop()
            return [f.result() for f in futures if f.done()]

        results = asyncio.run(go())
        assert len(results) == 40
        assert all(results)

    def test_open_state_missing_file_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_state(tmp_path / "absent.pf")

    def test_wal_lives_beside_page_file(self, tmp_path):
        tree, wal, _ = open_state(tmp_path / "s.pf", create=True)
        try:
            assert wal.path == wal_path_for(tmp_path / "s.pf")
            assert wal.path.exists()
        finally:
            wal.close()
            tree.close()
