"""Unit and property tests for the PM1 quadtree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect, Segment
from repro.quadtree import PM1Quadtree
from repro.workloads import LatticeSubdivision


def star(center, arms):
    """Segments radiating from one vertex — the PM1 stress shape."""
    return [Segment(center, tip) for tip in arms]


class TestValidityRule:
    def test_single_edge_splits_to_separate_endpoints(self):
        """Rule 1 (one vertex per block) applies to a lone edge too —
        the root must split until its two endpoints are isolated."""
        tree = PM1Quadtree()
        tree.insert(Segment(Point(0.1, 0.1), Point(0.4, 0.4)))
        assert tree.leaf_count() > 1
        leaves_with_vertex = [
            rect
            for rect, _, _ in tree.leaves()
            if rect.contains_point(Point(0.1, 0.1))
            or rect.contains_point(Point(0.4, 0.4))
        ]
        assert len(leaves_with_vertex) == 2
        tree.validate()

    def test_two_disjoint_edges_force_split(self):
        tree = PM1Quadtree()
        tree.insert(Segment(Point(0.05, 0.1), Point(0.2, 0.1)))
        tree.insert(Segment(Point(0.05, 0.9), Point(0.2, 0.9)))
        # each edge has 2 vertices: blocks must isolate them pairwise
        assert tree.leaf_count() > 1
        tree.validate()

    def test_star_stays_one_block_when_small(self):
        """Edges meeting at a shared vertex satisfy rule 2 together —
        if all their far endpoints leave the block."""
        center = Point(0.5, 0.5)
        arms = [Point(0.95, 0.5), Point(0.5, 0.95), Point(0.05, 0.5)]
        tree = PM1Quadtree()
        tree.insert_many(star(center, arms))
        tree.validate()
        # the block holding the center holds all three edges
        hits = tree.stabbing_query(center)
        assert len(hits) == 3

    def test_vertex_lookup(self):
        center = Point(0.3, 0.3)
        tree = PM1Quadtree()
        tree.insert(Segment(center, Point(0.9, 0.9)))
        assert tree.vertex_at(Point(0.31, 0.31)) in (center, Point(0.9, 0.9))
        assert tree.vertex_at(Point(5, 5)) is None

    def test_crossing_edges_rejected(self):
        tree = PM1Quadtree()
        tree.insert(Segment(Point(0.1, 0.1), Point(0.9, 0.9)))
        with pytest.raises(ValueError):
            tree.insert(Segment(Point(0.1, 0.9), Point(0.9, 0.1)))
        # rollback left the map intact
        assert len(tree) == 1
        tree.validate()

    def test_edges_sharing_endpoint_allowed(self):
        shared = Point(0.5, 0.5)
        tree = PM1Quadtree()
        assert tree.insert(Segment(Point(0.1, 0.1), shared))
        assert tree.insert(Segment(shared, Point(0.9, 0.1)))
        tree.validate()

    def test_duplicate_rejected(self):
        tree = PM1Quadtree()
        seg = Segment(Point(0.1, 0.1), Point(0.9, 0.9))
        assert tree.insert(seg)
        assert not tree.insert(Segment(seg.b, seg.a))

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            PM1Quadtree().insert(Segment(Point(2, 2), Point(3, 3)))

    def test_max_depth_guard(self):
        """Two distinct vertices can be arbitrarily close — the depth
        guard converts runaway splitting into a clean error + rollback."""
        tree = PM1Quadtree(max_depth=3)
        tree.insert(Segment(Point(0.5, 0.5), Point(0.9, 0.9)))
        with pytest.raises(ValueError):
            tree.insert(Segment(Point(0.501, 0.5), Point(0.92, 0.1)))
        assert len(tree) == 1
        tree.validate()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PM1Quadtree(bounds=Rect.unit(3))
        with pytest.raises(ValueError):
            PM1Quadtree(max_depth=0)


class TestDelete:
    def test_delete_and_merge(self):
        tree = PM1Quadtree()
        a = Segment(Point(0.05, 0.1), Point(0.2, 0.1))
        b = Segment(Point(0.05, 0.9), Point(0.2, 0.9))
        tree.insert(a)
        tree.insert(b)
        split_leaves = tree.leaf_count()
        assert tree.delete(b)
        assert tree.leaf_count() < split_leaves
        tree.validate()

    def test_delete_absent(self):
        tree = PM1Quadtree()
        assert not tree.delete(Segment(Point(0.1, 0.1), Point(0.2, 0.2)))

    def test_delete_all_restores_root_leaf(self):
        segs = LatticeSubdivision(cells=4, seed=1).generate()
        tree = PM1Quadtree()
        tree.insert_many(segs)
        for s in segs:
            assert tree.delete(s)
            tree.validate()
        assert tree.leaf_count() == 1


class TestSubdivisions:
    @pytest.mark.parametrize("seed", range(4))
    def test_lattice_maps_build_and_validate(self, seed):
        segs = LatticeSubdivision(cells=5, seed=seed).generate()
        tree = PM1Quadtree(max_depth=16)
        assert tree.insert_many(segs) == len(segs)
        tree.validate()
        assert len(tree) == len(segs)

    def test_every_edge_findable_by_stabbing(self):
        segs = LatticeSubdivision(cells=4, seed=9).generate()
        tree = PM1Quadtree(max_depth=16)
        tree.insert_many(segs)
        for s in segs:
            hits = tree.stabbing_query(s.midpoint())
            rect = next(
                r for r, _, _ in tree.leaves()
                if r.contains_point(s.midpoint())
            )
            if s.crosses_interior(rect):
                assert s in hits

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_random_subdivisions_valid(self, seed):
        segs = LatticeSubdivision(cells=4, jitter=0.25, seed=seed).generate()
        tree = PM1Quadtree(max_depth=18)
        tree.insert_many(segs)
        tree.validate()


class TestLatticeGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatticeSubdivision(cells=1)
        with pytest.raises(ValueError):
            LatticeSubdivision(jitter=0.5)
        with pytest.raises(ValueError):
            LatticeSubdivision(edge_probability=0.0)

    def test_segments_pairwise_noncrossing(self):
        segs = LatticeSubdivision(cells=6, seed=3).generate()
        for i, a in enumerate(segs):
            for b in segs[i + 1 :]:
                crossing = a.intersection_point(b)
                if crossing is None:
                    continue
                # only at a vertex shared by both (float tolerance: the
                # intersection point carries rounding error)
                assert min(
                    crossing.distance_to(a.a), crossing.distance_to(a.b)
                ) < 1e-9
                assert min(
                    crossing.distance_to(b.a), crossing.distance_to(b.b)
                ) < 1e-9

    def test_all_inside_bounds(self):
        bounds = Rect(Point(-1, -1), Point(1, 1))
        segs = LatticeSubdivision(cells=4, bounds=bounds, seed=4).generate()
        for s in segs:
            assert bounds.contains_point(s.a)
            assert bounds.contains_point(s.b)

    def test_full_probability_connects_lattice(self):
        segs = LatticeSubdivision(
            cells=3, edge_probability=1.0, jitter=0.0, seed=5
        ).generate()
        # 3x3 lattice: 2*3 horizontal + 2*3 vertical edges
        assert len(segs) == 12
