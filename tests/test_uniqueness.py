"""Tests for the uniqueness machinery ([Nels86b]'s claim, executable)."""

import numpy as np
import pytest

from repro.core import (
    PopulationModel,
    enumerate_fixed_points,
    is_irreducible,
    transform_matrix,
    verify_unique_positive,
)
from repro.core.pmr_model import pmr_transform_matrix


class TestEnumeration:
    def test_m1_has_two_real_solutions(self):
        """T = [[0,1],[3,2]]: eigenvalues 3 and -1 give solutions
        (1/2, 1/2) and (1/2... the -1 one is (e0, e1) with e1 = -e0*? —
        normalized, only one of them is positive."""
        candidates = enumerate_fixed_points(transform_matrix(1))
        real = [c for c in candidates if c.is_real]
        assert len(real) == 2
        positives = [c for c in real if c.is_positive]
        assert len(positives) == 1
        assert positives[0].distribution == pytest.approx([0.5, 0.5])
        assert positives[0].growth == pytest.approx(3.0)

    def test_candidate_counts_bounded_by_size(self):
        for m in (1, 3, 6):
            candidates = enumerate_fixed_points(transform_matrix(m))
            assert 1 <= len(candidates) <= m + 1

    def test_residuals_near_zero_for_real_candidates(self):
        for c in enumerate_fixed_points(transform_matrix(4)):
            if c.is_real:
                e = c.distribution
                produced = e @ transform_matrix(4)
                assert np.max(np.abs(produced - c.growth * e)) < 1e-8

    def test_validation(self):
        with pytest.raises(ValueError):
            enumerate_fixed_points(np.array([[1.0, -1.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            enumerate_fixed_points(np.ones((2, 3)))


class TestIrreducibility:
    @pytest.mark.parametrize("m", range(1, 9))
    def test_pr_transforms_irreducible(self, m):
        assert is_irreducible(transform_matrix(m))

    def test_pmr_transforms_irreducible(self):
        assert is_irreducible(pmr_transform_matrix(4, 0.3))

    def test_reducible_matrix_detected(self):
        # two disconnected 1-cycles
        block = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert not is_irreducible(block)

    def test_one_way_chain_detected(self):
        chain = np.array([[0.0, 1.0], [0.0, 1.0]])  # can't get back to 0
        assert not is_irreducible(chain)


class TestUniquePositive:
    @pytest.mark.parametrize("m", range(1, 9))
    def test_paper_assurance_holds(self, m):
        """'any positive solution we find will be appropriate'."""
        T = transform_matrix(m)
        unique = verify_unique_positive(T)
        model = PopulationModel(m)
        assert unique.distribution == pytest.approx(
            model.expected_distribution(), abs=1e-8
        )
        assert unique.growth == pytest.approx(model.growth_rate())

    def test_holds_for_other_fanouts(self):
        for b in (2, 8, 16):
            verify_unique_positive(transform_matrix(3, b))

    def test_holds_for_pmr(self):
        verify_unique_positive(pmr_transform_matrix(4, 0.3))

    def test_failure_on_degenerate_matrix(self):
        # the identity has every unit vector as a solution: no unique
        # positive candidate survives enumeration (sums of eigenvector
        # cols are basis vectors — each is nonnegative but has zeros)
        with pytest.raises(ArithmeticError):
            verify_unique_positive(np.eye(3))
