"""Drift monitor: model-vs-reality gauges, arming, alarms."""

import pytest

from repro.core.planning import MAX_PLANNED_CAPACITY
from repro.obs import Tracer, tracing
from repro.service.monitor import DriftMonitor
from repro.storage import PagedPRQuadtree, required_page_size
from repro.workloads import UniformPoints


def _tree(tmp_path, n, capacity=4, **kwargs):
    tree = PagedPRQuadtree.create(
        tmp_path / f"m{capacity}-{n}.pf", capacity=capacity, **kwargs
    )
    tree.insert_many(UniformPoints(seed=1987).generate(n))
    return tree


class TestSampling:
    def test_uniform_population_stays_quiet(self, tmp_path):
        tree = _tree(tmp_path, 2000)
        try:
            sample = DriftMonitor(tree).sample()
            assert sample.armed
            assert not sample.alarm
            assert sample.n_points == 2000
            assert sample.actual_pages == tree.pagefile.data_page_count
            # the paper's model tracks uniform data well within the alarm
            assert abs(sample.page_error) < 0.25
            assert abs(sample.occupancy_error) < 0.25
        finally:
            tree.close()

    def test_tight_threshold_alarms(self, tmp_path):
        tree = _tree(tmp_path, 2000)
        try:
            monitor = DriftMonitor(tree, threshold=1e-9)
            sample = monitor.sample()
            assert sample.alarm
            assert monitor.alarm_count == 1
            assert monitor.sample_count == 1
        finally:
            tree.close()

    def test_small_population_is_disarmed(self, tmp_path):
        tree = _tree(tmp_path, 32)
        try:
            sample = DriftMonitor(tree, threshold=1e-9).sample()
            assert not sample.armed
            assert not sample.alarm  # even though the error is huge
        finally:
            tree.close()

    def test_unmodeled_capacity_never_alarms(self, tmp_path):
        capacity = MAX_PLANNED_CAPACITY + 1
        tree = _tree(
            tmp_path, 600, capacity=capacity,
            page_size=required_page_size(capacity, 2),
        )
        try:
            sample = DriftMonitor(tree, threshold=1e-9).sample()
            assert not sample.armed
            assert not sample.alarm
            # no model: prediction degenerates to the observation
            assert sample.predicted_pages == sample.actual_pages
            assert sample.page_error == 0.0
        finally:
            tree.close()

    def test_gauges_and_counters_recorded(self, tmp_path):
        tree = _tree(tmp_path, 600)
        try:
            tracer = Tracer()
            with tracing(tracer):
                DriftMonitor(tree).sample()
            assert "service.drift.page_error" in tracer.gauges
            assert "service.drift.occupancy_error" in tracer.gauges
            assert tracer.counters["service.drift.samples"] == 1
        finally:
            tree.close()

    def test_to_dict_is_json_shape(self, tmp_path):
        tree = _tree(tmp_path, 600)
        try:
            out = DriftMonitor(tree).sample().to_dict()
            for key in ("n_points", "capacity", "predicted_pages",
                        "actual_pages", "page_error", "predicted_occupancy",
                        "observed_occupancy", "occupancy_error", "armed",
                        "alarm"):
                assert key in out
        finally:
            tree.close()


class TestValidation:
    def test_bad_threshold(self, tmp_path):
        tree = _tree(tmp_path, 8)
        try:
            with pytest.raises(ValueError):
                DriftMonitor(tree, threshold=0.0)
            with pytest.raises(ValueError):
                DriftMonitor(tree, min_points=-1)
        finally:
            tree.close()
