"""RunDB read/write behavior: run lifecycle, spec dedupe, traces,
drift, autotune upserts, retention, and — the satellite the schema's
WAL + retry design exists for — concurrent writers sharing one file."""

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.rundb.repository import RunDB, RunDBError

SNAPSHOT = {
    "spans": {
        "runtime.execute": {
            "count": 2, "total_s": 0.4, "mean_s": 0.2,
            "min_s": 0.1, "max_s": 0.3,
            "children": {
                "runtime.build": {
                    "count": 2, "total_s": 0.3, "mean_s": 0.15,
                    "min_s": 0.1, "max_s": 0.2, "children": {},
                },
            },
        },
    },
    "counters": {"cache.hit": 3},
    "gauges": {
        "pool.busy": {"last": 0.9, "mean": 0.8, "min": 0.7, "max": 0.9,
                      "count": 4},
    },
}

SPEC_DICT = {
    "capacity": 4, "n_points": 500, "trials": 5, "seed": 11,
    "generator": "uniform",
}


def _trial(cache_key="key-a", engine="object", occupancy=1.9):
    return {
        "spec": SPEC_DICT, "cache_key": cache_key, "engine": engine,
        "workers": 2, "cache_hit": False, "wall_s": 0.25, "trials": 5,
        "mean_occupancy": occupancy, "count_sums": [1, 2, 3],
    }


class TestRunLifecycle:
    def test_begin_finish_round_trip(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run(
                "bench", label="suite", profile="smoke", bench_version=7,
                env={"python": "3"}, extra={"note": 1},
            )
            assert db.run(run_id)["status"] == "open"
            db.finish_run(run_id, wall_s=1.5, peak_rss_kb=2048.0)
            run = db.run(run_id)
            assert run["status"] == "done"
            assert run["wall_s"] == pytest.approx(1.5)
            assert run["profile"] == "smoke"

    def test_unknown_run_raises(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            with pytest.raises(RunDBError, match="no run #42"):
                db.run(42)

    def test_runs_filter_and_order(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            db.begin_run("bench", created_unix=100.0, profile="full")
            db.begin_run("bench", created_unix=200.0, profile="smoke")
            db.begin_run("serve", created_unix=300.0)
            bench = db.runs(kind="bench")
            assert [r["created_unix"] for r in bench] == [200.0, 100.0]
            assert len(db.runs(profile="smoke")) == 1
            oldest = db.runs(newest_first=False)[0]
            assert oldest["created_unix"] == 100.0


class TestPayloads:
    def test_spec_dedupe(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            a = db.ensure_spec(SPEC_DICT, "key-a")
            b = db.ensure_spec(SPEC_DICT, "key-a")
            c = db.ensure_spec(SPEC_DICT, "key-b")
            assert a == b
            assert a != c
            assert db.counts()["specs"] == 2

    def test_trials_join_specs(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("session")
            db.record_trials(run_id, [_trial(), _trial(cache_key="key-b")])
            trials = db.run(run_id)["trials"]
            assert len(trials) == 2
            assert trials[0]["n_points"] == 500
            assert trials[0]["mean_occupancy"] == pytest.approx(1.9)
            assert db.counts()["specs"] == 2

    def test_trace_flattened(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("bench")
            db.record_trace(run_id, "census", SNAPSHOT)
            spans = db.span_paths(run_id)
            assert ("census", "runtime.execute") in spans
            assert ("census", "runtime.execute/runtime.build") in spans
            node = spans[("census", "runtime.execute/runtime.build")]
            assert node["mean_s"] == pytest.approx(0.15)
            assert db.counts()["counters"] == 1
            assert db.counts()["gauges"] == 1

    def test_drift_samples(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("serve")
            for seq, alarm in enumerate([False, True, False]):
                db.record_drift(run_id, seq, {
                    "n_points": 1000 + seq, "actual_pages": 80,
                    "page_error": 0.3 if alarm else 0.01,
                    "occupancy_error": 0.0, "armed": True, "alarm": alarm,
                })
            summary = db.run(run_id)["drift"]
            assert summary["samples"] == 3
            assert summary["alarms"] == 1
            history = db.drift_history()
            assert len(history) == 1
            assert history[0]["peak_points"] == 1002
            assert history[0]["max_page_error"] == pytest.approx(0.3)


class TestAutotune:
    def test_upsert(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            assert db.get_chunk_size("object", 500, 2) is None
            db.set_chunk_size("object", 500, 2, 4)
            db.set_chunk_size("object", 500, 2, 8)
            db.set_chunk_size("vector", 500, 2, 16)
            assert db.get_chunk_size("object", 500, 2) == 8
            assert len(db.autotune_entries()) == 2


class TestHistories:
    def test_stage_history_metric_sources(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            for i in range(3):
                run_id = db.begin_run("bench", created_unix=100.0 * (i + 1))
                db.record_stage(run_id, "census", 0.1 * (i + 1),
                                payload={"speedup": 1.0 + i})
            walls = db.stage_history("census")
            assert [p["value"] for p in walls] == pytest.approx(
                [0.1, 0.2, 0.3]
            )
            speedups = db.stage_history("census", metric="speedup")
            assert [p["value"] for p in speedups] == [1.0, 2.0, 3.0]
            assert db.stage_history("census", metric="missing") == []

    def test_span_history_call_weighted(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("bench", created_unix=100.0)
            db.record_trace(run_id, "a", SNAPSHOT)
            db.record_trace(run_id, "b", SNAPSHOT)
            points = db.span_history("runtime.execute")
            assert len(points) == 1
            assert points[0]["count"] == 4  # both traces pooled
            assert points[0]["value"] == pytest.approx(0.2)

    def test_occupancy_vs_n(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            run_id = db.begin_run("session")
            db.record_trials(run_id, [
                _trial(occupancy=1.8),
                _trial(cache_key="key-b", engine="vector", occupancy=2.0),
            ])
            rows = db.occupancy_vs_n()
            assert {(r["n_points"], r["engine"]) for r in rows} == {
                (500, "object"), (500, "vector"),
            }
            assert db.occupancy_vs_n(engine="vector")[0][
                "mean_occupancy"] == pytest.approx(2.0)


class TestRetention:
    def test_gc_keeps_newest_per_kind(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            for i in range(5):
                run_id = db.begin_run("bench", created_unix=float(i))
                db.record_stage(run_id, "census", 0.1)
            for i in range(3):
                db.begin_run("serve", created_unix=float(i))
            result = db.gc(keep=2, vacuum=False)
            assert result["deleted_runs"] == 4
            bench = db.runs(kind="bench")
            assert [r["created_unix"] for r in bench] == [4.0, 3.0]
            assert len(db.runs(kind="serve")) == 2
            # children cascaded with their runs
            assert db.counts()["bench_stages"] == 2

    def test_gc_rejects_negative_keep(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            with pytest.raises(ValueError):
                db.gc(keep=-1)


_SESSION_CHILD = """
import sys
from repro.runtime import ExperimentSpec, execute, runtime_session

db_path, seed = sys.argv[1], int(sys.argv[2])
spec = ExperimentSpec(capacity=2, n_points=80, trials=3, seed=seed)
with runtime_session(workers=1, db_path=db_path,
                     db_label=f"child-{seed}") as config:
    execute(spec, config)
"""


class TestConcurrentWriters:
    def test_threaded_write_stress(self, tmp_path):
        """Many threads hammering one file: every write must land."""
        db_path = tmp_path / "db.sqlite"
        RunDB(db_path).connect()
        errors = []

        def writer(worker: int) -> None:
            try:
                with RunDB(db_path) as db:
                    for i in range(10):
                        run_id = db.begin_run(
                            "session", label=f"w{worker}",
                            created_unix=float(worker * 100 + i),
                        )
                        db.record_trials(run_id, [
                            _trial(cache_key=f"key-{worker}-{i}")
                        ])
                        db.finish_run(run_id, wall_s=0.01)
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with RunDB(db_path) as db:
            counts = db.counts()
            assert counts["runs"] == 40
            assert counts["trial_results"] == 40
            assert all(r["status"] == "done" for r in db.runs())

    def test_two_runtime_sessions_one_db(self, tmp_path, monkeypatch):
        """Two separate processes, each a full runtime_session recording
        into the same database file (the issue's stress shape)."""
        db_path = tmp_path / "db.sqlite"
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(
            PYTHONPATH=str(src),
            PATH="/usr/bin:/bin",
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _SESSION_CHILD,
                 str(db_path), str(seed)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for seed in (1, 2)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
            assert b"warning: run DB" not in stderr
        with RunDB(db_path) as db:
            runs = db.runs(kind="session")
            assert len(runs) == 2
            assert {r["label"] for r in runs} == {"child-1", "child-2"}
            assert all(r["status"] == "done" for r in runs)
            assert db.counts()["trial_results"] == 2
