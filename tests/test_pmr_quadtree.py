"""Unit and property tests for the PMR quadtree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect, Segment
from repro.quadtree import PMRQuadtree
from repro.workloads import RandomSegments

coord = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


def segment_strategy():
    def build(ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        if a == b:
            b = Point(min(bx + 0.05, 0.995), by)
        return Segment(a, b)

    return st.builds(build, coord, coord, coord, coord)


segment_lists = st.lists(segment_strategy(), min_size=0, max_size=30, unique=True)


def build_tree(segments, threshold=2, **kwargs):
    tree = PMRQuadtree(threshold=threshold, **kwargs)
    tree.insert_many(segments)
    return tree


class TestBasics:
    def test_defaults(self):
        tree = PMRQuadtree()
        assert tree.threshold == 4
        assert tree.bounds == Rect.unit(2)
        assert len(tree) == 0
        assert tree.leaf_count() == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PMRQuadtree(threshold=0)

    def test_planar_only(self):
        with pytest.raises(ValueError):
            PMRQuadtree(bounds=Rect.unit(3))

    def test_insert_and_membership(self):
        s = Segment(Point(0.1, 0.1), Point(0.9, 0.9))
        tree = PMRQuadtree()
        assert tree.insert(s)
        assert s in tree
        assert len(tree) == 1

    def test_duplicate_rejected(self):
        s = Segment(Point(0.1, 0.1), Point(0.9, 0.9))
        tree = PMRQuadtree()
        assert tree.insert(s)
        assert not tree.insert(Segment(Point(0.9, 0.9), Point(0.1, 0.1)))
        assert len(tree) == 1

    def test_outside_bounds_rejected(self):
        s = Segment(Point(2, 2), Point(3, 3))
        with pytest.raises(ValueError):
            PMRQuadtree().insert(s)

    def test_segment_in_multiple_leaves(self):
        """After a split, a long segment is stored in every leaf it
        crosses — the PMR signature."""
        diag = Segment(Point(0.05, 0.05), Point(0.95, 0.95))
        crossers = [
            Segment(Point(0.05, 0.2), Point(0.95, 0.25)),
            Segment(Point(0.05, 0.5), Point(0.95, 0.55)),
            Segment(Point(0.05, 0.8), Point(0.95, 0.85)),
        ]
        tree = build_tree([diag] + crossers, threshold=2)
        assert tree.leaf_count() > 1
        holders = [
            occ for rect, _, occ in tree.leaves()
            if diag.crosses_interior(rect)
        ]
        assert len(holders) >= 2

    def test_split_is_single_level(self):
        """The PMR rule splits once: children over threshold do not
        immediately re-split."""
        # five nearly-parallel segments clustered in the SW corner:
        # the root splits once; the SW child inherits all five but must
        # NOT have split again upon that same insertion.
        segs = [
            Segment(Point(0.01, 0.01 + i * 0.002), Point(0.1, 0.012 + i * 0.002))
            for i in range(3)
        ]
        tree = build_tree(segs, threshold=2)
        assert tree.height() == 1
        over = [occ for _, _, occ in tree.leaves() if occ > tree.threshold]
        assert over  # the SW child holds 3 > threshold segments


class TestQueries:
    def test_stabbing_query(self):
        s = Segment(Point(0.1, 0.5), Point(0.9, 0.5))
        tree = build_tree([s])
        assert tree.stabbing_query(Point(0.5, 0.5)) == [s]
        assert tree.stabbing_query(Point(5, 5)) == []

    def test_window_query_distinct(self):
        segs = RandomSegments(seed=0).generate(60)
        tree = build_tree(segs, threshold=4)
        window = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        found = tree.window_query(window)
        assert len(found) == len(set(found))
        for s in segs:
            if s.intersects_rect(window):
                assert s in found

    def test_nearest_segment(self):
        a = Segment(Point(0.1, 0.1), Point(0.2, 0.1))
        b = Segment(Point(0.8, 0.8), Point(0.9, 0.8))
        tree = build_tree([a, b])
        assert tree.nearest_segment(Point(0.15, 0.2)) == a
        assert tree.nearest_segment(Point(0.85, 0.7)) == b

    def test_nearest_segment_empty(self):
        assert PMRQuadtree().nearest_segment(Point(0.5, 0.5)) is None


class TestDelete:
    def test_delete_removes_everywhere(self):
        segs = RandomSegments(seed=1).generate(40)
        tree = build_tree(segs, threshold=3)
        victim = segs[7]
        assert tree.delete(victim)
        assert victim not in tree
        for rect, _, _ in tree.leaves():
            assert victim not in tree.stabbing_query(rect.center)

    def test_delete_absent(self):
        tree = build_tree(RandomSegments(seed=2).generate(5))
        assert not tree.delete(Segment(Point(0.4, 0.4), Point(0.6, 0.4)))

    def test_delete_all_merges_to_root(self):
        segs = RandomSegments(seed=3).generate(30)
        tree = build_tree(segs, threshold=2)
        for s in segs:
            assert tree.delete(s)
        assert len(tree) == 0
        assert tree.leaf_count() == 1

    def test_delete_then_validate(self):
        segs = RandomSegments(seed=4).generate(30)
        tree = build_tree(segs, threshold=3)
        for s in segs[::2]:
            tree.delete(s)
        tree.validate()


class TestMeasurement:
    def test_census(self):
        segs = RandomSegments(seed=5).generate(50)
        tree = build_tree(segs, threshold=4)
        census = tree.occupancy_census()
        assert census.total_nodes == tree.leaf_count()

    def test_average_occupancy_positive(self):
        segs = RandomSegments(seed=6).generate(50)
        tree = build_tree(segs, threshold=4)
        assert tree.average_occupancy() > 0

    def test_max_depth_pins(self):
        segs = RandomSegments(seed=7, min_length=0.01, max_length=0.02).generate(40)
        tree = PMRQuadtree(threshold=1, max_depth=2)
        tree.insert_many(segs)
        assert tree.height() <= 2


class TestProperties:
    @given(segment_lists)
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, segs):
        tree = build_tree(segs, threshold=2)
        tree.validate()

    @given(segment_lists)
    @settings(max_examples=25, deadline=None)
    def test_all_segments_findable_by_stabbing(self, segs):
        tree = build_tree(segs, threshold=2)
        for s in segs:
            hits = tree.stabbing_query(s.midpoint())
            # the midpoint's leaf is crossed by s unless the midpoint
            # sits exactly on a partition line
            rect = next(
                r for r, _, _ in tree.leaves()
                if r.contains_point(s.midpoint())
            )
            if s.crosses_interior(rect):
                assert s in hits

    @given(segment_lists)
    @settings(max_examples=25, deadline=None)
    def test_insert_delete_round_trip(self, segs):
        tree = build_tree(segs, threshold=2)
        for s in segs:
            assert tree.delete(s)
        assert len(tree) == 0
        assert tree.leaf_count() == 1
