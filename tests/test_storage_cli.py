"""``repro storage`` CLI: build/stat/validate wiring and --verbose spans."""

import pytest

from repro.storage.cli import build_parser, main


@pytest.fixture
def built(tmp_path, capsys):
    path = tmp_path / "cli.pf"
    assert main(["build", str(path), "--n", "300", "--capacity", "4",
                 "--seed", "7"]) == 0
    capsys.readouterr()
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "x.pf"])
        assert args.n == 1000
        assert args.capacity == 4
        assert args.distribution == "uniform"
        assert args.policy == "lru"

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate", "x.pf"])


class TestCommands:
    def test_build_reports_shape(self, tmp_path, capsys):
        path = tmp_path / "b.pf"
        assert main(["build", str(path), "--n", "200"]) == 0
        out = capsys.readouterr().out
        assert "200 points" in out
        assert "pages" in out
        assert "pool" in out
        assert path.exists()

    def test_stat_prints_census(self, built, capsys):
        assert main(["stat", str(built)]) == 0
        out = capsys.readouterr().out
        assert "300 points" in out
        assert "m=4" in out
        assert "occupancy census" in out

    def test_stat_prints_pool_hit_rate(self, built, capsys):
        assert main(["stat", str(built)]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "misses" in out
        # the census walk went through the pool, so fetches happened
        assert "(0 hits, 0 misses" not in out

    def test_validate_passes_on_table1_workload(self, built, capsys):
        assert main(["validate", str(built)]) == 0
        out = capsys.readouterr().out
        assert "structure OK" in out
        assert "predicted" in out
        assert "OK: prediction within" in out

    def test_validate_fails_on_tight_tolerance(self, built, capsys):
        assert main(["validate", str(built), "--tolerance", "0.0001"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verbose_shows_page_io_spans_and_pool_counters(
        self, built, capsys
    ):
        assert main(["stat", str(built), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "storage.page_read" in out
        assert "storage.pool.miss" in out

    def test_gaussian_clock_build(self, tmp_path, capsys):
        path = tmp_path / "g.pf"
        assert main(["build", str(path), "--n", "150",
                     "--distribution", "gaussian",
                     "--policy", "clock", "--pool-pages", "8"]) == 0
        assert "150 points" in capsys.readouterr().out


class TestFaultPaths:
    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stat", str(tmp_path / "nope.pf")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_build_refuses_to_clobber(self, built, capsys):
        assert main(["build", str(built), "--n", "10"]) == 1
        assert "already exists" in capsys.readouterr().err

    def test_corrupted_page_fails_cleanly(self, built, capsys):
        raw = bytearray(built.read_bytes())
        raw[4096 + 100] ^= 0xFF  # flip a byte inside page 0
        built.write_bytes(bytes(raw))
        assert main(["stat", str(built)]) == 1
        assert "checksum mismatch" in capsys.readouterr().err


class TestDispatch:
    def test_repro_cli_dispatches_storage(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        path = tmp_path / "d.pf"
        assert repro_main(["storage", "build", str(path), "--n", "120"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert repro_main(["storage", "validate", str(path)]) == 0
        assert "structure OK" in capsys.readouterr().out
