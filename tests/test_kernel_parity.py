"""Vector vs object engine parity — the tentpole's correctness contract.

The vector census engine must be *bit-identical* to
``PRQuadtree(...).occupancy_census()`` / ``depth_census()`` for every
dimension, capacity, depth limit, bounds, and pathological point set.
These tests sweep that space with randomized and hypothesis-driven
inputs and also check the executor-level integration (serial, pooled,
and legacy paths give the same numbers on either engine).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import run_trials
from repro.geometry import Point, Rect
from repro.kernels import vector_census, vector_census_batch
from repro.quadtree import PRQuadtree
from repro.runtime import ExperimentSpec, RuntimeConfig, build_trials
from repro.workloads import ClusteredPoints, UniformPoints


def assert_parity(pts, capacity, bounds=None, dim=2, max_depth=None):
    """Build both ways; every census statistic must match exactly."""
    tree_dim = bounds.dim if bounds is not None else dim
    tree = PRQuadtree(
        capacity=capacity, bounds=bounds, dim=tree_dim, max_depth=max_depth
    )
    for p in pts:
        tree.insert(p)
    partition = vector_census(
        pts, capacity, bounds=bounds, dim=tree_dim, max_depth=max_depth
    )
    assert partition.occupancy_census() == tree.occupancy_census()
    assert partition.depth_census() == tree.depth_census()
    assert partition.leaf_count == tree.leaf_count()
    assert partition.size == len(tree)
    if len(tree):
        assert partition.height() == tree.height()


def random_points(rng, n, bounds):
    return [
        Point(
            *(
                bounds.lo[i] + rng.random() * (bounds.hi[i] - bounds.lo[i])
                for i in range(bounds.dim)
            )
        )
        for _ in range(n)
    ]


class TestRandomizedSweep:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("capacity", [1, 2, 8])
    def test_uniform_unit_box(self, dim, capacity):
        rng = random.Random(1000 * dim + capacity)
        for trial in range(5):
            bounds = Rect.unit(dim)
            pts = random_points(rng, rng.randrange(0, 200), bounds)
            assert_parity(pts, capacity, bounds=bounds, dim=dim)

    @pytest.mark.parametrize("max_depth", [0, 1, 3, 9])
    def test_depth_limits(self, max_depth):
        rng = random.Random(max_depth)
        pts = random_points(rng, 150, Rect.unit(2))
        assert_parity(pts, 1, max_depth=max_depth)
        assert_parity(pts, 4, max_depth=max_depth)

    def test_non_dyadic_bounds(self):
        # midpoints of these bounds are not exact binary fractions, so
        # any quantization that doesn't replay the tree's float descent
        # drifts within a few levels
        bounds = Rect(Point(0.1, 0.2), Point(0.9, 1.7))
        rng = random.Random(7)
        pts = random_points(rng, 300, bounds)
        assert_parity(pts, 2, bounds=bounds)
        assert_parity(pts, 8, bounds=bounds, max_depth=5)

    def test_negative_and_asymmetric_bounds(self):
        bounds = Rect(Point(-3.7, -0.01, 2.2), Point(-1.1, 0.93, 9.0))
        rng = random.Random(11)
        pts = random_points(rng, 120, bounds)
        assert_parity(pts, 2, bounds=bounds)

    def test_clustered_distribution(self):
        pts = ClusteredPoints(seed=5).generate(400)
        assert_parity(pts, 8)
        assert_parity(pts, 1, max_depth=9)


class TestNearCoincidentPoints:
    def test_cluster_beyond_one_code_budget(self):
        # points within 2**-40 share their first ~40 quadrant choices;
        # one 62-bit 2-d code resolves 31 levels, so the kernel must
        # recurse into the overfull prefix group (the worklist path)
        base = 0.3
        eps = 2.0 ** -40
        pts = [
            Point(base, base),
            Point(base + eps, base),
            Point(base, base + eps),
            Point(0.9, 0.9),
        ]
        assert_parity(pts, 1)

    @pytest.mark.parametrize("max_depth", [31, 32, 35, 45])
    def test_depth_limit_across_code_boundary(self, max_depth):
        base = 0.3
        eps = 2.0 ** -40
        pts = [Point(base, base), Point(base + eps, base)]
        assert_parity(pts, 1, max_depth=max_depth)

    def test_adjacent_floats_pin_leaves(self):
        # one-ulp-apart coordinates exhaust float precision: the tree
        # pins the unsplittable block and overflows it; so must we
        import math

        x = 0.5
        pts = [
            Point(x, 0.25),
            Point(math.nextafter(x, 1.0), 0.25),
            Point(math.nextafter(x, 0.0), 0.25),
        ]
        assert_parity(pts, 1)

    def test_tiny_coordinates(self):
        pts = [Point(1e-300, 1e-300), Point(2e-300, 1e-300), Point(0.5, 0.5)]
        assert_parity(pts, 1)


coord = st.floats(
    min_value=0.0, max_value=0.9999999, allow_nan=False, width=64
)


class TestHypothesisParity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), max_size=60),
        st.sampled_from([1, 2, 8]),
        st.sampled_from([None, 3, 9]),
    )
    def test_2d(self, rows, capacity, max_depth):
        pts = [Point(x, y) for x, y in rows]
        assert_parity(pts, capacity, max_depth=max_depth)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord, coord), max_size=40),
        st.sampled_from([1, 2, 8]),
    )
    def test_3d(self, rows, capacity):
        pts = [Point(x, y, z) for x, y, z in rows]
        assert_parity(pts, capacity, dim=3, bounds=Rect.unit(3))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(coord, max_size=60), st.sampled_from([1, 2]))
    def test_1d(self, xs, capacity):
        pts = [Point(x) for x in xs]
        assert_parity(pts, capacity, dim=1, bounds=Rect.unit(1))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=20))
    def test_near_coincident_perturbations(self, rows):
        # shadow every point with near-copies at descending offsets
        pts = [Point(x, y) for x, y in rows]
        for x, y in rows[:3]:
            for k in (1e-9, 1e-12, 1e-15):
                if x + k < 1.0:
                    pts.append(Point(x + k, y))
        assert_parity(pts, 1)
        assert_parity(pts, 2, max_depth=20)


class TestExecutorParity:
    def spec(self, **overrides):
        base = dict(
            capacity=4, n_points=400, trials=6, seed=77, collect_depth=True
        )
        base.update(overrides)
        return ExperimentSpec(**base)

    def test_build_trials_engines_agree(self):
        spec = self.spec()
        obj = build_trials(spec, 0, spec.trials, engine="object")
        vec = build_trials(spec, 0, spec.trials, engine="vector")
        assert obj.accumulator.count_sums == vec.accumulator.count_sums
        assert obj.depth_censuses == vec.depth_censuses

    def test_gaussian_generator(self):
        spec = self.spec(generator="gaussian")
        obj = build_trials(spec, 0, spec.trials, engine="object")
        vec = build_trials(spec, 0, spec.trials, engine="vector")
        assert obj.accumulator.count_sums == vec.accumulator.count_sums

    def test_run_trials_parallel_vector_matches_serial_object(self):
        serial = run_trials(
            4, n_points=300, trials=8, seed=21,
            runtime=RuntimeConfig(workers=1, engine="object"),
        )
        pooled = run_trials(
            4, n_points=300, trials=8, seed=21,
            runtime=RuntimeConfig(workers=2, engine="vector"),
        )
        assert serial.accumulator.count_sums == pooled.accumulator.count_sums

    def test_collect_area_falls_back_to_object(self):
        vec = run_trials(
            4, n_points=200, trials=2, seed=9, collect_area=True,
            runtime=RuntimeConfig(engine="vector"),
        )
        obj = run_trials(
            4, n_points=200, trials=2, seed=9, collect_area=True,
            runtime=RuntimeConfig(engine="object"),
        )
        assert vec.area_occupancy == obj.area_occupancy
        assert vec.area_occupancy  # the fallback actually collected

    def test_legacy_factory_honors_engine(self):
        def factory(seed):
            return UniformPoints(seed=seed)

        vec = run_trials(
            3, n_points=250, trials=3, seed=4, generator_factory=factory,
            engine="vector",
        )
        obj = run_trials(
            3, n_points=250, trials=3, seed=4, generator_factory=factory,
        )
        assert vec.accumulator.count_sums == obj.accumulator.count_sums

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_trials(self.spec(), 0, 1, engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            run_trials(2, trials=1, runtime=RuntimeConfig(engine="warp"))


class TestBatchKernelParity:
    """``vector_census_batch`` must match per-trial ``vector_census``
    exactly — the pool's batched path feeds the same accumulators."""

    def batch(self, n_trials, n, dim, seed):
        rng = np.random.default_rng(seed)
        return rng.random((n_trials, n, dim))

    def assert_batch_parity(self, arrays, capacity, bounds=None,
                            dim=2, max_depth=None):
        parts = vector_census_batch(
            arrays, capacity, bounds=bounds, dim=dim, max_depth=max_depth
        )
        assert len(parts) == arrays.shape[0]
        for trial, part in enumerate(parts):
            pts = [Point(*row) for row in arrays[trial].tolist()]
            solo = vector_census(
                pts, capacity, bounds=bounds, dim=dim, max_depth=max_depth
            )
            assert part.occupancy_census() == solo.occupancy_census()
            assert part.depth_census() == solo.depth_census()
            assert part.leaf_count == solo.leaf_count
            assert part.size == solo.size
            if part.size:
                assert part.height() == solo.height()

    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("capacity", [1, 2, 8])
    def test_uniform_sweep(self, dim, capacity):
        arrays = self.batch(5, 120, dim, seed=10 * dim + capacity)
        self.assert_batch_parity(
            arrays, capacity, bounds=Rect.unit(dim), dim=dim
        )

    @pytest.mark.parametrize("max_depth", [0, 1, 3, 9])
    def test_depth_limits(self, max_depth):
        arrays = self.batch(4, 90, 2, seed=max_depth)
        self.assert_batch_parity(arrays, 2, max_depth=max_depth)

    def test_custom_bounds(self):
        bounds = Rect(Point(-3.0, 0.25), Point(1.5, 1.75))
        lo = np.array(tuple(bounds.lo))
        hi = np.array(tuple(bounds.hi))
        arrays = lo + self.batch(3, 150, 2, seed=3) * (hi - lo)
        self.assert_batch_parity(arrays, 4, bounds=bounds)

    def test_varied_occupancy_across_trials(self):
        # trials whose trees differ wildly in depth exercise the
        # trial-tag bookkeeping through splits, empties, and pins
        rng = np.random.default_rng(8)
        arrays = np.empty((3, 64, 2))
        arrays[0] = rng.random((64, 2))                       # spread
        arrays[1] = 0.5 + rng.random((64, 2)) * 1e-6          # one cell
        arrays[2, :, 0] = np.linspace(0.01, 0.99, 64)         # diagonal
        arrays[2, :, 1] = arrays[2, :, 0]
        self.assert_batch_parity(arrays, 2)

    def test_deep_groups_past_code_budget(self):
        # a nextafter chain shares >62 bits of Morton prefix, forcing
        # the per-trial deep-group worklist inside the batch kernel
        chain = [0.3]
        for _ in range(5):
            chain.append(np.nextafter(chain[-1], 1.0))
        arrays = np.empty((2, len(chain) + 1, 2))
        arrays[0, :-1, 0] = chain
        arrays[0, :-1, 1] = 0.25
        arrays[0, -1] = (0.9, 0.9)
        arrays[1] = np.random.default_rng(5).random((len(chain) + 1, 2))
        self.assert_batch_parity(arrays, 1)
        self.assert_batch_parity(arrays, 1, max_depth=40)

    def test_trials_at_or_below_capacity(self):
        arrays = self.batch(3, 4, 2, seed=2)
        self.assert_batch_parity(arrays, 8)  # every trial one root leaf

    def test_empty_batch(self):
        assert vector_census_batch(np.empty((0, 10, 2)), 4) == []

    def test_single_trial_matches_scalar_path(self):
        arrays = self.batch(1, 200, 2, seed=77)
        self.assert_batch_parity(arrays, 4)

    def test_rejects_bad_shapes_and_params(self):
        flat = np.random.default_rng(1).random((10, 2))
        with pytest.raises(ValueError):
            vector_census_batch(flat, 4)  # 2-d, needs (B, n, dim)
        with pytest.raises(ValueError):
            vector_census_batch(flat[None], 0)  # capacity < 1
        with pytest.raises(ValueError):
            vector_census_batch(
                flat[None], 4, bounds=Rect.unit(3), dim=2
            )  # bounds/dim conflict

    def test_rejects_out_of_bounds_point(self):
        arrays = self.batch(2, 20, 2, seed=4)
        arrays[1, 7] = (1.5, 0.5)
        with pytest.raises(ValueError, match="outside"):
            vector_census_batch(arrays, 4)
