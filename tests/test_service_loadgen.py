"""Load generator: reports, verification, pacing, failure detection."""

import asyncio
import gc

import pytest

from repro.obs import Tracer, tracing
from repro.service import SpatialIndexServer, open_state
from repro.service.loadgen import LoadError, ServiceClient, run_load


def _run(tmp_path, tracer=None, server_kwargs=None, prepopulate=0,
         **load_kwargs):
    async def go():
        tree, wal, _ = open_state(
            tmp_path / "state.pf", create=True, capacity=4
        )
        if prepopulate:
            from repro.workloads import UniformPoints

            for p in UniformPoints(dim=2, seed=777).generate(prepopulate):
                tree.insert(p)
        server = SpatialIndexServer(tree, wal, port=0,
                                    **(server_kwargs or {}))
        await server.start()
        host, port = server.address
        try:
            return await run_load(host, port, **load_kwargs)
        finally:
            await server.stop()

    if tracer is not None:
        with tracing(tracer):
            return asyncio.run(go())
    return asyncio.run(go())


class TestRunLoad:
    def test_clean_run_has_zero_failures_and_verified_census(self, tmp_path):
        report = _run(tmp_path, ops=300, size=80, seed=11)
        assert report.ok
        assert report.failures == 0
        assert report.census_verified is True
        assert report.mutations == 300
        assert report.ops == report.mutations + report.queries
        assert report.achieved_qps > 0
        assert set(report.latencies) >= {"insert"}

    def test_verifies_against_prepopulated_server(self, tmp_path):
        # the local replay seeds itself with the server's existing
        # points, so census verification survives a non-empty start
        report = _run(tmp_path, prepopulate=250, ops=300, size=80, seed=12)
        assert report.failures == 0
        assert report.census_verified is True

    def test_queries_ride_along(self, tmp_path):
        report = _run(tmp_path, ops=200, size=50, seed=2,
                      query_fraction=1.0)
        assert report.queries > 0
        assert {"range", "nearest"} & set(report.latencies)

    def test_no_verify_skips_census(self, tmp_path):
        report = _run(tmp_path, ops=100, size=30, seed=4, verify=False)
        assert report.census_verified is None
        assert report.ok  # None is not a failure

    def test_qps_pacing_slows_the_run(self, tmp_path):
        report = _run(tmp_path, ops=50, size=20, seed=6, qps=200.0,
                      query_fraction=0.0)
        assert report.target_qps == 200.0
        # 50 ops at 200/s needs ~0.25s; unthrottled takes far less
        assert report.wall_s > 0.15
        assert report.achieved_qps <= 300.0

    def test_to_dict_shape(self, tmp_path):
        out = _run(tmp_path, ops=120, size=40, seed=8).to_dict()
        for key in ("ops", "mutations", "queries", "failures", "wall_s",
                    "achieved_qps", "target_qps", "census_verified",
                    "latency_ms"):
            assert key in out
        for stats in out["latency_ms"].values():
            assert set(stats) == {"count", "p50", "p90", "p99"}

    def test_summary_mentions_failures_and_census(self, tmp_path):
        text = _run(tmp_path, ops=100, size=30, seed=9).summary()
        assert "failures : 0" in text
        assert "matches local replay" in text

    def test_sustains_smoke_throughput(self, tmp_path):
        # the CI gate: a single pipelined client over real sockets and
        # real fsyncs must clear 2000 ops/s.  Best-of-3 because this is
        # a wall-clock measurement: on a contended single-core runner a
        # scheduler hiccup can halve one run's qps, and the gate is
        # about capability, not one sample.  The collect keeps a major
        # GC (proportional to everything the suite allocated before
        # this test) from landing inside the measured window.
        best = 0.0
        for attempt in range(3):
            gc.collect()
            workdir = tmp_path / str(attempt)
            workdir.mkdir()
            report = _run(workdir, ops=1000, size=300, seed=1987)
            assert report.ok
            best = max(best, report.achieved_qps)
            if best >= 2000.0:
                break
        assert best >= 2000.0

    def test_group_commit_batches_under_load(self, tmp_path):
        tracer = Tracer()
        report = _run(tmp_path, tracer=tracer, ops=400, size=100, seed=3)
        assert report.ok
        syncs = tracer.counters["service.wal.sync_calls"]
        assert tracer.counters["service.wal.append"] == 400
        assert syncs <= 400 / 4


class TestValidation:
    def test_rejects_bad_arguments(self, tmp_path):
        for kwargs in ({"ops": 0}, {"window": 0}, {"query_fraction": 1.5}):
            with pytest.raises(ValueError):
                asyncio.run(run_load("127.0.0.1", 1, **kwargs))

    def test_connection_refused_is_load_error(self):
        async def go():
            await ServiceClient.connect("127.0.0.1", 1)

        with pytest.raises(LoadError):
            asyncio.run(go())
