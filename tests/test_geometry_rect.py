"""Unit and property tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def unit_points(dim=2):
    return st.builds(lambda cs: Point(*cs), st.lists(
        st.floats(min_value=0.0, max_value=0.999999, allow_nan=False),
        min_size=dim, max_size=dim,
    ))


def rects():
    """Non-degenerate boxes inside [0,1]^2."""

    def build(x0, x1, y0, y1):
        xs = sorted([x0, x1])
        ys = sorted([y0, y1])
        return Rect(Point(xs[0], ys[0]), Point(xs[1] + 0.001, ys[1] + 0.001))

    return st.builds(build, coord, coord, coord, coord)


class TestConstruction:
    def test_unit(self):
        r = Rect.unit(2)
        assert r.lo == Point(0, 0) and r.hi == Point(1, 1)

    def test_unit_bad_dim(self):
        with pytest.raises(ValueError):
            Rect.unit(0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(Point(0, 0), Point(0, 1))

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Rect(Point(1, 0), Point(0, 1))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect(Point(0, 0), Point(1.0))

    def test_from_bounds(self):
        r = Rect.from_bounds([(0, 2), (1, 3)])
        assert r.lo == Point(0, 1) and r.hi == Point(2, 3)

    def test_equality_and_hash(self):
        assert Rect.unit(2) == Rect.unit(2)
        assert hash(Rect.unit(2)) == hash(Rect.unit(2))


class TestGeometry:
    def test_center(self):
        assert Rect.unit(2).center == Point(0.5, 0.5)

    def test_sides_and_volume(self):
        r = Rect(Point(0, 0), Point(2, 3))
        assert r.sides == (2.0, 3.0)
        assert r.volume == 6.0
        assert r.side(1) == 3.0

    def test_half_open_membership(self):
        r = Rect.unit(2)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1, 0))
        assert not r.contains_point(Point(0.5, 1))

    def test_contains_rect(self):
        outer = Rect.unit(2)
        inner = Rect(Point(0.25, 0.25), Point(0.5, 0.5))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_contains_rect_self(self):
        r = Rect.unit(2)
        assert r.contains_rect(r)

    def test_intersects_and_intersection(self):
        a = Rect(Point(0, 0), Point(0.6, 0.6))
        b = Rect(Point(0.4, 0.4), Point(1, 1))
        assert a.intersects(b)
        both = a.intersection(b)
        assert both == Rect(Point(0.4, 0.4), Point(0.6, 0.6))

    def test_touching_half_open_boxes_disjoint(self):
        a = Rect(Point(0, 0), Point(0.5, 1))
        b = Rect(Point(0.5, 0), Point(1, 1))
        assert not a.intersects(b)
        with pytest.raises(ValueError):
            a.intersection(b)

    def test_clamp_and_distance(self):
        r = Rect.unit(2)
        assert r.clamp(Point(2, 0.5)) == Point(1, 0.5)
        assert r.distance_to_point(Point(2, 0.5)) == 1.0
        assert r.distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_corners(self):
        corners = set(Rect.unit(2).corners())
        assert corners == {
            Point(0, 0), Point(0, 1), Point(1, 0), Point(1, 1)
        }


class TestRegularSplit:
    def test_split_produces_fanout_children(self):
        assert len(Rect.unit(2).split()) == 4
        assert len(Rect.unit(3).split()) == 8
        assert len(Rect.unit(1).split()) == 2

    def test_children_tile_parent(self):
        parent = Rect.unit(2)
        children = parent.split()
        assert sum(c.volume for c in children) == pytest.approx(parent.volume)
        for i, a in enumerate(children):
            assert parent.contains_rect(a)
            for b in children[i + 1 :]:
                assert not a.intersects(b)

    def test_bitmask_ordering(self):
        children = Rect.unit(2).split()
        # SW=0, SE=1 (x high), NW=2 (y high), NE=3
        assert children[0].contains_point(Point(0.1, 0.1))
        assert children[1].contains_point(Point(0.9, 0.1))
        assert children[2].contains_point(Point(0.1, 0.9))
        assert children[3].contains_point(Point(0.9, 0.9))

    def test_quadrant_index_agrees_with_child(self):
        parent = Rect.unit(2)
        for p in (Point(0.1, 0.1), Point(0.7, 0.2), Point(0.5, 0.5)):
            idx = parent.quadrant_index(p)
            assert parent.child(idx).contains_point(p)

    def test_quadrant_index_outside_raises(self):
        with pytest.raises(ValueError):
            Rect.unit(2).quadrant_index(Point(1.5, 0.5))

    def test_child_index_range(self):
        with pytest.raises(ValueError):
            Rect.unit(2).child(4)
        with pytest.raises(ValueError):
            Rect.unit(2).child(-1)

    def test_split_binary(self):
        lo, hi = Rect.unit(2).split_binary(0)
        assert lo == Rect(Point(0, 0), Point(0.5, 1))
        assert hi == Rect(Point(0.5, 0), Point(1, 1))

    def test_split_binary_axis_out_of_range(self):
        with pytest.raises(ValueError):
            Rect.unit(2).split_binary(2)


class TestProperties:
    @given(unit_points())
    def test_every_unit_point_in_exactly_one_quadrant(self, p):
        parent = Rect.unit(2)
        hits = [c for c in parent.split() if c.contains_point(p)]
        assert len(hits) == 1
        assert hits[0] == parent.child(parent.quadrant_index(p))

    @given(rects(), unit_points())
    def test_clamp_is_inside_closed_box(self, r, p):
        c = r.clamp(p)
        for lo, cc, hi in zip(r.lo, c, r.hi):
            assert lo <= cc <= hi

    @given(rects(), unit_points())
    def test_distance_consistent_with_clamp(self, r, p):
        d = r.distance_to_point(p)
        clamped = r.clamp(p)
        assert d == clamped.distance_to(p)
        if clamped == p:
            assert d == 0.0

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        if a.intersects(b):
            both = a.intersection(b)
            assert a.contains_rect(both)
            assert b.contains_rect(both)
