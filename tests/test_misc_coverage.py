"""Focused tests for branches the main suites touch only indirectly."""

import numpy as np
import pytest

from repro.core import StochasticPopulation
from repro.core.fagin import expected_leaves_at_depth_poisson
from repro.experiments import render_semilog_ascii
from repro.geometry import MortonIndex, Point, Rect, morton_key
from repro.gridfile import GridFile
from repro.quadtree import OccupancyCensus, PMRQuadtree, PRQuadtree
from repro.workloads import (
    DiagonalPoints,
    GaussianPoints,
    RandomSegments,
    UniformPoints,
)


class TestRectSplittability:
    def test_unit_square_splittable(self):
        assert Rect.unit(2).is_splittable
        assert Rect.unit(2).is_splittable_on(0)
        assert Rect.unit(2).is_splittable_on(1)

    def test_degenerate_axis_detected(self):
        tiny = np.nextafter(0.0, 1.0)  # smallest positive subnormal
        thin = Rect(Point(0.0, 0.0), Point(tiny, 1.0))
        assert not thin.is_splittable_on(0)
        assert thin.is_splittable_on(1)
        assert not thin.is_splittable

    def test_axis_range_checked(self):
        with pytest.raises(ValueError):
            Rect.unit(2).is_splittable_on(2)


class TestCensusEdges:
    def test_capacity_zero_census(self):
        census = OccupancyCensus((5,))
        assert census.capacity == 0
        assert census.average_occupancy() == 0.0
        with pytest.raises(ValueError):
            census.storage_utilization()


class TestGridFileMerging:
    def test_scales_never_removed(self):
        grid = GridFile(bucket_capacity=1)
        pts = UniformPoints(seed=0).generate(50)
        grid.insert_many(pts)
        scale_counts = [len(s) for s in grid.scales()]
        for p in pts:
            grid.delete(p)
        assert [len(s) for s in grid.scales()] == scale_counts
        grid.validate()

    def test_merge_reduces_buckets(self):
        grid = GridFile(bucket_capacity=4)
        pts = UniformPoints(seed=1).generate(100)
        grid.insert_many(pts)
        full = grid.bucket_count()
        for p in pts:
            grid.delete(p)
        assert grid.bucket_count() < full


class TestPMRQueries:
    @pytest.fixture(scope="class")
    def tree(self):
        tree = PMRQuadtree(threshold=3)
        tree.insert_many(RandomSegments(seed=4).generate(120))
        return tree

    def test_window_query_no_duplicates_across_blocks(self, tree):
        whole = tree.window_query(tree.bounds)
        assert len(whole) == len(set(whole)) == len(tree)

    def test_nearest_segment_matches_brute_force(self, tree):
        for q in (Point(0.2, 0.8), Point(0.5, 0.5), Point(0.93, 0.07)):
            got = tree.nearest_segment(q)
            best = min(
                tree.segments(), key=lambda s: s.distance_to_point(q)
            )
            assert got.distance_to_point(q) == pytest.approx(
                best.distance_to_point(q)
            )

    def test_stabbing_outside_bounds(self, tree):
        assert tree.stabbing_query(Point(5.0, 5.0)) == []


class TestFigureRendering:
    def test_semilog_custom_y_range(self):
        art = render_semilog_ascii(
            [64, 128, 256], [3.5, 3.6, 3.4], y_range=(3.0, 4.0)
        )
        assert "4.00" in art and "3.00" in art
        assert art.count("o") == 3

    def test_semilog_flat_series(self):
        art = render_semilog_ascii([10, 100], [2.0, 2.0])
        assert "o" in art


class TestWorkloadStreams:
    def test_gaussian_stream_distinct(self):
        stream = GaussianPoints(seed=2).stream()
        pts = [next(stream) for _ in range(50)]
        assert len(set(pts)) == 50

    def test_diagonal_points_build_deep_trees(self):
        """The adversarial diagonal workload drives deeper trees than
        uniform data of the same size."""
        diag = PRQuadtree(capacity=1)
        diag.insert_many(DiagonalPoints(seed=3, jitter=0.002).generate(200))
        uniform = PRQuadtree(capacity=1)
        uniform.insert_many(UniformPoints(seed=3).generate(200))
        assert diag.height() > uniform.height()
        diag.validate()


class TestMortonOrdering:
    def test_points_returned_in_z_order(self):
        index = MortonIndex(bits=10)
        index.insert_many(UniformPoints(seed=5).generate(100))
        codes = [morton_key(p, bits=10) for p in index.points()]
        assert codes == sorted(codes)

    def test_incremental_equals_bulk(self):
        pts = UniformPoints(seed=6).generate(60)
        one = MortonIndex()
        for p in pts:
            one.insert(p)
        bulk = MortonIndex()
        bulk.insert_many(pts)
        assert one.points() == bulk.points()


class TestStochasticOctree:
    def test_octree_population_converges(self):
        pop = StochasticPopulation(capacity=2, buckets=8, seed=7)
        pop.insert_many(8000)
        pop.validate()
        from repro.core import PopulationModel

        e = PopulationModel(2, buckets=8).expected_distribution()
        assert np.max(np.abs(pop.proportions() - e)) < 0.03


class TestPoissonDepthZero:
    def test_root_leaf_probabilities(self):
        vec = expected_leaves_at_depth_poisson(3, capacity=4, depth=0)
        # Poisson(3) masses at 0..4
        assert vec.sum() == pytest.approx(0.815, abs=0.01)
        assert vec[3] == pytest.approx(0.224, abs=0.01)


class TestPRQuadtreeEdges:
    def test_conflicting_bounds_dim(self):
        with pytest.raises(ValueError):
            PRQuadtree(bounds=Rect.unit(2), dim=3)

    def test_nonconflicting_default_dim_with_3d_bounds(self):
        tree = PRQuadtree(bounds=Rect.unit(3), dim=3)
        assert tree.dim == 3

    def test_negative_bounds_tree(self):
        bounds = Rect(Point(-8, -8), Point(8, 8))
        tree = PRQuadtree(capacity=2, bounds=bounds)
        gen = UniformPoints(bounds=bounds, seed=8)
        tree.insert_many(gen.generate(300))
        tree.validate()
        assert tree.occupancy_census().total_items == 300
