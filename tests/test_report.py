"""Tests for the reproduction-report generator and its CLI hook."""

import pytest

from repro.__main__ import main
from repro.experiments import generate_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(trials=2, seed=71)

    def test_has_all_sections(self, report):
        for heading in (
            "# Reproduction report",
            "## Table 1",
            "## Table 2",
            "## Table 3",
            "## Table 4 / Figure 2",
            "## Table 5 / Figure 3",
        ):
            assert heading in report

    def test_reports_protocol(self, report):
        assert "2 trees per configuration, seed 71" in report

    def test_aging_signature_line(self, report):
        assert "Aging signature" in report

    def test_phasing_fit_line(self, report):
        assert "best-fit period" in report
        assert "Late-half amplitude" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_cli_report_command(self, capsys):
        assert main(["report", "--trials", "1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
