"""The acceptance loop: model predictions vs. real page files.

Builds the paper's Table 1 workload (1000 uniform points) into disk
files at m = 1, 4, 8 and checks that

- the paged tree's census is bit-identical to the in-memory tree's;
- ``StoragePlanner.validate_against`` puts the predicted page count
  within 10% of the live page count.
"""

import pytest

from repro.core.planning import PlanValidation, StoragePlanner
from repro.quadtree import PRQuadtree
from repro.storage import PagedPRQuadtree
from repro.workloads import UniformPoints

N_POINTS = 1000
SEED = 1987


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One disk tree per capacity, plus its in-memory twin's census."""
    root = tmp_path_factory.mktemp("storage-validation")
    points = UniformPoints(seed=SEED).generate(N_POINTS)
    out = {}
    for capacity in (1, 4, 8):
        mem = PRQuadtree(capacity=capacity)
        mem.insert_many(points)
        path = root / f"m{capacity}.pf"
        tree = PagedPRQuadtree.create(path, capacity=capacity)
        tree.insert_many(points)
        tree.close()
        out[capacity] = (path, mem)
    return out


class TestCensusParity:
    @pytest.mark.parametrize("capacity", [1, 4, 8])
    def test_table1_census_bit_identical(self, built, capacity):
        path, mem = built[capacity]
        with PagedPRQuadtree.open(path) as tree:
            assert tree.occupancy_census() == mem.occupancy_census()
            assert tree.depth_census() == mem.depth_census()


class TestPlannerValidation:
    @pytest.mark.parametrize("capacity", [1, 4, 8])
    def test_prediction_within_10_percent(self, built, capacity):
        path, mem = built[capacity]
        planner = StoragePlanner(buckets=4)
        with PagedPRQuadtree.open(path) as tree:
            report = planner.validate_against(tree.pagefile)
        assert isinstance(report, PlanValidation)
        assert report.n_points == N_POINTS
        assert report.capacity == capacity
        assert report.actual_pages == mem.leaf_count()
        assert report.within(0.10), (
            f"m={capacity}: predicted {report.predicted_pages:.1f} vs "
            f"actual {report.actual_pages} ({report.page_error:+.1%})"
        )

    @pytest.mark.parametrize("capacity", [1, 4, 8])
    def test_utilization_tracks_reality(self, built, capacity):
        path, _ = built[capacity]
        planner = StoragePlanner(buckets=4)
        with PagedPRQuadtree.open(path) as tree:
            report = planner.validate_against(tree.pagefile)
        assert 0 < report.actual_utilization <= 1
        assert report.predicted_utilization == pytest.approx(
            report.actual_utilization, rel=0.10
        )

    def test_summary_is_readable(self, built):
        path, _ = built[4]
        planner = StoragePlanner(buckets=4)
        with PagedPRQuadtree.open(path) as tree:
            text = planner.validate_against(tree.pagefile).summary()
        assert "predicted" in text
        assert "actual" in text
        assert "m=4" in text

    def test_steady_state_figure_rides_along(self, built):
        # the raw steady-state model under-predicts (aging): the exact
        # figure must sit closer to reality than the steady-state one
        path, _ = built[4]
        planner = StoragePlanner(buckets=4)
        with PagedPRQuadtree.open(path) as tree:
            report = planner.validate_against(tree.pagefile)
        exact_err = abs(report.predicted_pages - report.actual_pages)
        steady_err = abs(report.steady_state_pages - report.actual_pages)
        assert exact_err < steady_err

    def test_rejects_foreign_pagefile(self, tmp_path):
        from repro.storage import PageFile

        f = PageFile.create(tmp_path / "f.pf", meta={"other": True})
        try:
            with pytest.raises(ValueError):
                StoragePlanner(buckets=4).validate_against(f)
        finally:
            f.close(checkpoint=False)

    def test_rejects_fanout_mismatch(self, built):
        path, _ = built[4]
        planner = StoragePlanner(buckets=2)  # bintree planner, quad file
        with PagedPRQuadtree.open(path) as tree:
            with pytest.raises(ValueError):
                planner.validate_against(tree.pagefile)
