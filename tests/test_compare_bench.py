"""The CI bench-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
)
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def snapshot(walls, profile="smoke"):
    return {
        "profile": profile,
        "stages": {
            name: {"stage_wall_s": wall} for name, wall in walls.items()
        },
    }


def write(tmp_path, name, snap):
    path = tmp_path / name
    path.write_text(json.dumps(snap), encoding="utf-8")
    return str(path)


class TestCompare:
    def test_within_factor_passes(self):
        problems = compare_bench.compare(
            snapshot({"build": 0.2, "census": 0.1}),
            snapshot({"build": 0.1, "census": 0.1}),
            factor=3.0,
        )
        assert problems == []

    def test_regression_flagged(self):
        problems = compare_bench.compare(
            snapshot({"build": 0.9}),
            snapshot({"build": 0.1}),
            factor=3.0,
        )
        assert len(problems) == 1
        assert "build" in problems[0]

    def test_missing_stages_skipped(self):
        problems = compare_bench.compare(
            snapshot({"build": 5.0, "new_stage": 99.0}),
            snapshot({"build": 5.0, "old_stage": 0.001}),
            factor=3.0,
        )
        assert problems == []

    def test_non_numeric_walls_ignored(self):
        current = snapshot({"build": 1.0})
        current["stages"]["weird"] = {"stage_wall_s": "n/a"}
        assert compare_bench.stage_walls(current) == {"build": 1.0}


def serve_snapshot(p99_ms, count=100):
    snap = snapshot({"serve": 1.0})
    snap["stages"]["serve"]["latency_ms"] = {
        "insert": {"count": count, "p50": p99_ms / 3,
                   "p90": p99_ms / 2, "p99": p99_ms},
    }
    return snap


class TestP99Gate:
    def test_parse_specs(self):
        specs = compare_bench.parse_p99_specs(["range=5", "2.5"])
        assert specs == {"range": 5.0, "insert": 2.5}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            compare_bench.parse_p99_specs(["insert=fast"])

    def test_under_limit_passes(self):
        assert compare_bench.check_p99(
            serve_snapshot(p99_ms=2.0), {"insert": 5.0}
        ) == []

    def test_over_limit_fails(self):
        problems = compare_bench.check_p99(
            serve_snapshot(p99_ms=9.0), {"insert": 5.0}
        )
        assert len(problems) == 1
        assert "p99" in problems[0] and "insert" in problems[0]

    def test_missing_op_or_stage_fails(self):
        assert compare_bench.check_p99(
            serve_snapshot(2.0), {"range": 5.0}
        )  # op absent
        assert compare_bench.check_p99(
            snapshot({"build": 0.1}), {"insert": 5.0}
        )  # serve stage absent
        empty = serve_snapshot(2.0, count=0)
        assert compare_bench.check_p99(empty, {"insert": 5.0})  # no ops

    def test_main_wires_the_gate(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", serve_snapshot(p99_ms=9.0))
        base = write(tmp_path, "base.json", serve_snapshot(p99_ms=9.0))
        assert compare_bench.main(
            [cur, base, "--require-p99-ms", "insert=5"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err
        assert compare_bench.main(
            [cur, base, "--require-p99-ms", "20"]
        ) == 0


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", snapshot({"build": 0.1}))
        base = write(tmp_path, "base.json", snapshot({"build": 0.1}))
        assert compare_bench.main([cur, base]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", snapshot({"build": 1.0}))
        base = write(tmp_path, "base.json", snapshot({"build": 0.1}))
        assert compare_bench.main([cur, base, "--factor", "3"]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_profile_mismatch_noted(self, tmp_path, capsys):
        cur = write(tmp_path, "cur.json", snapshot({"build": 0.1}, "smoke"))
        base = write(tmp_path, "base.json", snapshot({"build": 0.1}, "full"))
        assert compare_bench.main([cur, base]) == 0
        assert "note: comparing" in capsys.readouterr().out

    def test_bad_factor_rejected(self, tmp_path):
        cur = write(tmp_path, "cur.json", snapshot({"build": 0.1}))
        with pytest.raises(SystemExit):
            compare_bench.main([cur, cur, "--factor", "0"])

    def test_against_real_snapshot(self, tmp_path):
        # a freshly generated snapshot never regresses against itself
        from repro.bench import run_suite, write_snapshot

        snap = run_suite(smoke=True, workers=1)
        path = write_snapshot(snap, tmp_path / "BENCH_self.json")
        assert compare_bench.main([str(path), str(path)]) == 0
