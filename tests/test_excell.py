"""Unit and property tests for EXCELL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.excell import Excell
from repro.geometry import Point, Rect
from repro.workloads import UniformPoints

# Coordinates on a 2^-10 grid: distinct points separate within 10
# halvings per axis (interleaved level <= 21), so the doubling directory
# stays small under adversarial draws.
unit_coord = st.integers(min_value=0, max_value=2**10 - 1).map(
    lambda i: i / 2.0**10
)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=60, unique=True)


def build(pts, capacity=2):
    cell = Excell(bucket_capacity=capacity)
    cell.insert_many(pts)
    return cell


class TestBasics:
    def test_empty(self):
        cell = Excell()
        assert len(cell) == 0
        assert cell.level == 0
        assert cell.directory_size() == 1
        cell.validate()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Excell(bucket_capacity=0)
        with pytest.raises(ValueError):
            Excell(max_level=0)

    def test_insert_contains(self):
        cell = Excell(bucket_capacity=2)
        assert cell.insert(Point(0.3, 0.7))
        assert Point(0.3, 0.7) in cell
        assert Point(0.1, 0.1) not in cell

    def test_duplicate_rejected(self):
        cell = Excell()
        assert cell.insert(Point(0.5, 0.5))
        assert not cell.insert(Point(0.5, 0.5))

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            Excell().insert(Point(-0.5, 0.5))

    def test_directory_doubles_on_full_resolution_split(self):
        cell = Excell(bucket_capacity=1)
        cell.insert(Point(0.1, 0.5))
        assert cell.directory_size() == 1
        cell.insert(Point(0.9, 0.5))  # overflow: doubles and splits on x
        assert cell.level == 1
        assert cell.directory_size() == 2
        cell.validate()

    def test_axes_interleave(self):
        """Level 1 splits x, level 2 splits y — the round-robin rule."""
        cell = Excell(bucket_capacity=1)
        cell.insert_many([Point(0.1, 0.1), Point(0.1, 0.9), Point(0.9, 0.5)])
        cell.validate()
        assert cell.level >= 2
        rect0 = cell.cell_rect(0)
        assert rect0.hi.x <= 0.5 and rect0.hi.y <= 0.5

    def test_cell_rect_index_range(self):
        cell = Excell()
        with pytest.raises(ValueError):
            cell.cell_rect(1)

    def test_max_level_guard(self):
        cell = Excell(bucket_capacity=1, max_level=2)
        cell.insert(Point(0.1, 0.1))
        cell.insert(Point(0.9, 0.9))  # separates at level 1
        with pytest.raises(RuntimeError):
            # needs many levels to separate from (0.1, 0.1)
            cell.insert(Point(0.11, 0.11))


class TestDelete:
    def test_delete_present(self):
        pts = UniformPoints(seed=0).generate(60)
        cell = build(pts, capacity=3)
        assert cell.delete(pts[0])
        assert pts[0] not in cell
        cell.validate()

    def test_delete_absent(self):
        cell = build([Point(0.5, 0.5)])
        assert not cell.delete(Point(0.2, 0.2))
        assert not cell.delete(Point(1.5, 0.5))

    def test_delete_merges_buddies(self):
        pts = UniformPoints(seed=1).generate(100)
        cell = build(pts, capacity=4)
        buckets_before = cell.bucket_count()
        for p in pts:
            assert cell.delete(p)
            cell.validate()
        assert len(cell) == 0
        assert cell.bucket_count() < buckets_before


class TestQueriesAndCensus:
    def test_range_matches_brute_force(self):
        pts = UniformPoints(seed=2).generate(250)
        cell = build(pts, capacity=4)
        query = Rect(Point(0.1, 0.2), Point(0.6, 0.9))
        assert set(cell.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    def test_census_totals(self):
        pts = UniformPoints(seed=3).generate(300)
        cell = build(pts, capacity=4)
        census = cell.occupancy_census()
        assert census.total_items == 300
        assert census.total_nodes == cell.bucket_count()

    def test_points_round_trip(self):
        pts = UniformPoints(seed=4).generate(150)
        cell = build(pts, capacity=3)
        assert set(cell.points()) == set(pts)

    def test_average_occupancy(self):
        pts = UniformPoints(seed=5).generate(200)
        cell = build(pts, capacity=4)
        assert cell.average_occupancy() == pytest.approx(
            200 / cell.bucket_count()
        )


class TestProperties:
    @given(point_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_membership_and_invariants(self, pts, capacity):
        cell = build(pts, capacity=capacity)
        assert len(cell) == len(pts)
        for p in pts:
            assert p in cell
        cell.validate()

    @given(point_lists)
    @settings(max_examples=25, deadline=None)
    def test_insert_delete_round_trip(self, pts):
        cell = build(pts, capacity=2)
        for p in pts:
            assert cell.delete(p)
        assert len(cell) == 0
        cell.validate()

    @given(point_lists)
    @settings(max_examples=25, deadline=None)
    def test_buckets_within_capacity(self, pts):
        cell = build(pts, capacity=3)
        assert all(occ <= 3 for _, occ in cell.buckets())
