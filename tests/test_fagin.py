"""Unit and integration tests for the statistical (Fagin-style) baseline."""

import numpy as np
import pytest

from repro.core import fagin
from repro.core.fagin import (
    expected_leaves_at_depth,
    expected_leaves_at_depth_poisson,
)
from repro.experiments import run_trials


class TestExactModel:
    def test_tiny_trees_exact(self):
        """n <= m: the tree is a single root leaf."""
        for n in range(0, 2):
            profile = fagin.expected_leaf_profile(n, capacity=1)
            totals = np.sum(list(profile.values()), axis=0)
            assert totals.sum() == pytest.approx(1.0)
            assert totals[n] == pytest.approx(1.0)

    def test_n2_m1_matches_enumeration(self):
        """Two uniform points, capacity 1: the expected leaf count can
        be computed by hand.  With prob 3/4 the points separate at
        depth 1 (4 leaves); deeper with prob 1/4 each level.  Expected
        leaves = 4 + 3 * E[extra splits] = 4 + 3 * sum_k (1/4)^k = 5."""
        total = fagin.expected_total_leaves(2, capacity=1)
        assert total == pytest.approx(5.0, abs=1e-6)

    def test_points_conserved(self):
        """Sum of j * E[leaves with occupancy j] = n."""
        for n in (10, 100, 1000):
            profile = fagin.expected_leaf_profile(n, capacity=4)
            totals = np.sum(list(profile.values()), axis=0)
            points = float(totals @ np.arange(5))
            assert points == pytest.approx(n, rel=1e-6)

    def test_depth_zero_leaf(self):
        vec = expected_leaves_at_depth(3, capacity=4, depth=0)
        assert vec[3] == 1.0 and vec.sum() == 1.0
        vec = expected_leaves_at_depth(100, capacity=4, depth=0)
        assert vec.sum() == 0.0

    def test_depth_one_boundary_case(self):
        """At depth 1 the trinomial's rest-probability is exactly 0;
        the formula must not produce NaN."""
        vec = expected_leaves_at_depth(10, capacity=2, depth=1)
        assert np.isfinite(vec).all()
        assert (vec >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            fagin.expected_leaf_profile(-1, 1)
        with pytest.raises(ValueError):
            fagin.expected_leaf_profile(10, 0)
        with pytest.raises(ValueError):
            fagin.expected_leaf_profile(10, 1, buckets=1)
        with pytest.raises(ValueError):
            fagin.expected_leaf_profile(10, 1, model="bogus")
        with pytest.raises(ValueError):
            expected_leaves_at_depth(10, 1, depth=-1)


class TestPoissonModel:
    def test_close_to_exact_at_moderate_n(self):
        for n in (200, 1000):
            exact = fagin.average_occupancy(n, 4, model="exact")
            poisson = fagin.average_occupancy(n, 4, model="poisson")
            assert poisson == pytest.approx(exact, rel=0.02)

    def test_depth_vectors_nonnegative(self):
        vec = expected_leaves_at_depth_poisson(500, capacity=3, depth=4)
        assert (vec >= 0).all()


class TestDistribution:
    def test_normalized(self):
        d = fagin.expected_distribution(1000, 4)
        assert d.sum() == pytest.approx(1.0)
        assert (d >= 0).all()

    def test_matches_simulation(self):
        """The exact statistical vector d_n should match averaged
        simulations closely — it is the same quantity, computed
        analytically."""
        trial_set = run_trials(4, n_points=1000, trials=10, seed=9)
        analytic = fagin.expected_distribution(1000, 4)
        simulated = np.asarray(trial_set.mean_proportions())
        assert np.max(np.abs(analytic - simulated)) < 0.02

    def test_leaf_count_matches_simulation(self):
        trial_set = run_trials(8, n_points=1024, trials=10, seed=10)
        analytic = fagin.expected_total_leaves(1024, 8)
        assert trial_set.mean_nodes() == pytest.approx(analytic, rel=0.05)


class TestPhasingBaseline:
    def test_oscillation_with_period_four(self):
        """The statistical average occupancy oscillates with period x4
        in n — the non-convergence the paper cites from Fagin et al."""
        highs = [fagin.average_occupancy(n, 8) for n in (64, 256, 1024, 4096)]
        lows = [fagin.average_occupancy(n, 8) for n in (128, 512, 2048)]
        assert min(highs) > max(lows)

    def test_oscillation_does_not_damp(self):
        """Amplitude persists across decades of n (scale invariance)."""
        early = fagin.average_occupancy(64, 8) - fagin.average_occupancy(128, 8)
        late = fagin.average_occupancy(4096, 8) - fagin.average_occupancy(
            8192, 8
        )
        assert late == pytest.approx(early, rel=0.2)
        assert abs(late) > 0.1

    def test_series_helper(self):
        sizes = [64, 128, 256]
        series = fagin.occupancy_series(sizes, 8)
        assert len(series) == 3
        assert series[0] == pytest.approx(fagin.average_occupancy(64, 8))

    def test_limit_does_not_exist(self):
        """d_n keeps moving between n and 4n^(1/2)... concretely: the
        distribution at 2048 and 4096 differ by a fixed margin even
        though both are 'large'."""
        d_a = fagin.expected_distribution(2048, 8)
        d_b = fagin.expected_distribution(2896, 8)
        assert np.max(np.abs(d_a - d_b)) > 0.02


class TestBintreeVariant:
    def test_binary_buckets_oscillate_with_period_two(self):
        """b=2 (extendible-hashing-like): maxima every doubling."""
        highs = [
            fagin.average_occupancy(n, 8, buckets=2) for n in (256, 512, 1024)
        ]
        mids = [
            fagin.average_occupancy(int(n * 1.414), 8, buckets=2)
            for n in (256, 512)
        ]
        # at half-period the occupancy differs consistently
        assert (min(highs) > max(mids)) or (max(highs) < min(mids))
