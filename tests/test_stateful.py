"""Stateful (model-based) tests: random operation sequences against a
reference set, for the dynamic structures.

Hypothesis drives arbitrary interleavings of insert/delete/query; after
every step the structure must agree with a plain Python ``set`` and
pass its own ``validate``.  This catches interaction bugs (e.g. a
delete-merge corrupting a later insert path) that straight-line tests
cannot reach.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.excell import Excell
from repro.geometry import Point, Rect
from repro.gridfile import GridFile
from repro.quadtree import PRQuadtree

# Coordinates on a coarse grid keep directory/precision pathologies out
# of scope (covered by their own tests) while still colliding often.
coords = st.integers(min_value=0, max_value=31).map(lambda i: i / 32.0)
points = st.builds(Point, coords, coords)


class _SetAgreementMachine(RuleBasedStateMachine):
    """Common rules; subclasses provide ``make_structure``."""

    def __init__(self):
        super().__init__()
        self.structure = self.make_structure()
        self.reference = set()

    def make_structure(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @rule(p=points)
    def insert(self, p):
        inserted = self.structure.insert(p)
        assert inserted == (p not in self.reference)
        self.reference.add(p)

    @rule(p=points)
    def delete(self, p):
        deleted = self.structure.delete(p)
        assert deleted == (p in self.reference)
        self.reference.discard(p)

    @rule(p=points)
    def membership(self, p):
        assert (p in self.structure) == (p in self.reference)

    @rule()
    def size_agrees(self):
        assert len(self.structure) == len(self.reference)

    @precondition(lambda self: self.reference)
    @rule()
    def range_query_agrees(self):
        window = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        got = set(self.structure.range_search(window))
        expected = {
            p for p in self.reference if window.contains_point(p)
        }
        assert got == expected

    @invariant()
    def structure_valid(self):
        self.structure.validate()


class PRQuadtreeMachine(_SetAgreementMachine):
    def make_structure(self):
        return PRQuadtree(capacity=2)


class GridFileMachine(_SetAgreementMachine):
    def make_structure(self):
        return GridFile(bucket_capacity=2)


class ExcellMachine(_SetAgreementMachine):
    def make_structure(self):
        return Excell(bucket_capacity=2)


_settings = settings(max_examples=25, stateful_step_count=40, deadline=None)

TestPRQuadtreeStateful = PRQuadtreeMachine.TestCase
TestPRQuadtreeStateful.settings = _settings

TestGridFileStateful = GridFileMachine.TestCase
TestGridFileStateful.settings = _settings

TestExcellStateful = ExcellMachine.TestCase
TestExcellStateful.settings = _settings
