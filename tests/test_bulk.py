"""Unit and property tests for bulk loading and serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import PRQuadtree, bulk_load, from_dict, to_dict
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=50, unique=True)


def structure(tree):
    """Canonical structural fingerprint of a tree's leaves."""
    return sorted(
        (r.lo.coords, r.hi.coords, depth, tuple(sorted(p.coords for p in [])))
        for r, depth, _ in tree.leaves()
    ), sorted(p.coords for p in tree.points())


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([])
        assert len(tree) == 0
        assert tree.leaf_count() == 1
        tree.validate()

    def test_basic_build(self):
        pts = UniformPoints(seed=0).generate(500)
        tree = bulk_load(pts, capacity=3)
        assert len(tree) == 500
        tree.validate()
        for p in pts[::17]:
            assert p in tree

    def test_duplicates_dropped(self):
        p = Point(0.5, 0.5)
        tree = bulk_load([p, p, Point(0.1, 0.1)])
        assert len(tree) == 2

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            bulk_load([Point(2.0, 2.0)])

    def test_max_depth_pins(self):
        pts = [Point(0.001 * i, 0.001 * i) for i in range(1, 6)]
        tree = bulk_load(pts, capacity=1, max_depth=2)
        assert tree.height() <= 2
        tree.validate()

    def test_custom_bounds_and_dim(self):
        bounds = Rect(Point(-1, -1, -1), Point(1, 1, 1))
        gen = UniformPoints(bounds=bounds, dim=3, seed=1)
        tree = bulk_load(gen.generate(100), capacity=2, bounds=bounds, dim=3)
        assert tree.dim == 3
        tree.validate()

    @given(point_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_identical_to_incremental(self, pts, capacity):
        """Bulk and incremental builds yield the same structure — the
        order-independence of regular decomposition."""
        bulk = bulk_load(pts, capacity=capacity)
        incremental = PRQuadtree(capacity=capacity)
        incremental.insert_many(pts)
        bulk_leaves = sorted(
            (r.lo.coords, r.hi.coords, occ) for r, _, occ in bulk.leaves()
        )
        inc_leaves = sorted(
            (r.lo.coords, r.hi.coords, occ)
            for r, _, occ in incremental.leaves()
        )
        assert bulk_leaves == inc_leaves

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_bulk_tree_supports_dynamic_ops(self, pts):
        """A bulk-loaded tree is a first-class tree: insert/delete work."""
        tree = bulk_load(pts, capacity=2)
        extra = Point(0.123456, 0.654321)
        if extra not in pts:
            assert tree.insert(extra)
            assert tree.delete(extra)
        tree.validate()


class TestSerialization:
    def test_round_trip_structure(self):
        pts = UniformPoints(seed=2).generate(300)
        tree = PRQuadtree(capacity=4)
        tree.insert_many(pts)
        clone = from_dict(to_dict(tree))
        assert len(clone) == len(tree)
        assert clone.capacity == tree.capacity
        assert sorted(
            (r.lo.coords, r.hi.coords, occ) for r, _, occ in clone.leaves()
        ) == sorted(
            (r.lo.coords, r.hi.coords, occ) for r, _, occ in tree.leaves()
        )

    def test_json_compatible(self):
        tree = bulk_load(UniformPoints(seed=3).generate(50), capacity=2)
        payload = json.loads(json.dumps(to_dict(tree)))
        clone = from_dict(payload)
        assert len(clone) == 50
        clone.validate()

    def test_preserves_configuration(self):
        bounds = Rect(Point(-2, -2), Point(2, 2))
        tree = PRQuadtree(capacity=5, bounds=bounds, max_depth=7)
        tree.insert(Point(1.5, -1.5))
        clone = from_dict(to_dict(tree))
        assert clone.capacity == 5
        assert clone.max_depth == 7
        assert clone.bounds == bounds

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError):
            from_dict({"format": "something-else"})
        good = to_dict(PRQuadtree())
        good["version"] = 99
        with pytest.raises(ValueError):
            from_dict(good)

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, pts):
        tree = bulk_load(pts, capacity=3)
        clone = from_dict(to_dict(tree))
        assert set(clone.points()) == set(tree.points())
        assert clone.leaf_count() == tree.leaf_count()
