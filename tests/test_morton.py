"""Unit and property tests for Morton codes and the Morton index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    MortonIndex,
    Point,
    Rect,
    deinterleave,
    interleave,
    morton_key,
    prefix_at_depth,
    quantize,
)
from repro.quadtree import PRQuadtree
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
cells = st.integers(min_value=0, max_value=255)


class TestInterleave:
    def test_known_values_2d(self):
        # (x, y) with axis 0 most significant within each bit group
        assert interleave((0, 0), 1) == 0b00
        assert interleave((1, 0), 1) == 0b10
        assert interleave((0, 1), 1) == 0b01
        assert interleave((1, 1), 1) == 0b11

    def test_range_checked(self):
        with pytest.raises(ValueError):
            interleave((4,), 2)
        with pytest.raises(ValueError):
            interleave((-1, 0), 4)
        with pytest.raises(ValueError):
            interleave((0, 0), 0)
        with pytest.raises(ValueError):
            interleave((), 4)

    @given(cells, cells)
    def test_round_trip_2d(self, x, y):
        code = interleave((x, y), 8)
        assert deinterleave(code, 2, 8) == (x, y)

    @given(cells, cells, cells)
    def test_round_trip_3d(self, x, y, z):
        code = interleave((x, y, z), 8)
        assert deinterleave(code, 3, 8) == (x, y, z)

    @given(cells, cells)
    def test_monotone_per_axis(self, x, y):
        if x < 255:
            assert interleave((x + 1, y), 8) > interleave((x, y), 8)
        if y < 255:
            assert interleave((x, y + 1), 8) > interleave((x, y), 8)

    def test_deinterleave_range(self):
        with pytest.raises(ValueError):
            deinterleave(1 << 16, 2, 8)
        with pytest.raises(ValueError):
            deinterleave(-1, 2, 8)

    def test_mixed_validity_reports_lowest_axis(self):
        # regression for the hoisted range check: the error must still
        # name the lowest offending axis, exactly as the first loop
        # iteration used to find it
        with pytest.raises(ValueError, match=r"coordinate 9 outside 0\.\.7"):
            interleave((2, 9, 12), 3)
        with pytest.raises(ValueError, match=r"coordinate -1 outside 0\.\.7"):
            interleave((3, -1, 99), 3)


class TestInterleaveMany:
    def test_matches_scalar_known_values(self):
        import numpy as np

        from repro.geometry import interleave_many

        grid = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])
        assert interleave_many(grid, 1).tolist() == [0b00, 0b10, 0b01, 0b11]

    @given(
        st.lists(
            st.tuples(cells, cells, cells), min_size=1, max_size=40
        )
    )
    def test_matches_scalar_3d(self, rows):
        import numpy as np

        from repro.geometry import interleave_many

        codes = interleave_many(np.array(rows), 8)
        assert codes.dtype == np.uint64
        assert codes.tolist() == [interleave(row, 8) for row in rows]

    def test_full_62_bit_budget(self):
        import numpy as np

        from repro.geometry import interleave_many

        top = (1 << 31) - 1
        codes = interleave_many(np.array([[top, top]]), 31)
        assert int(codes[0]) == interleave((top, top), 31)

    def test_validation_matches_scalar(self):
        import numpy as np

        from repro.geometry import interleave_many

        with pytest.raises(ValueError, match=r"coordinate 4 outside 0\.\.3"):
            interleave_many(np.array([[1, 2], [4, 0]]), 2)
        with pytest.raises(ValueError, match="bits must be >= 1"):
            interleave_many(np.array([[0, 0]]), 0)
        with pytest.raises(ValueError, match="at least one coordinate"):
            interleave_many(np.empty((3, 0), dtype=np.int64), 4)
        with pytest.raises(ValueError, match="62-bit"):
            interleave_many(np.array([[0, 0]]), 32)
        with pytest.raises(ValueError, match="2-d"):
            interleave_many(np.array([1, 2, 3]), 4)
        with pytest.raises(ValueError, match="integer array"):
            interleave_many(np.array([[0.5, 0.5]]), 4)

    def test_empty_input(self):
        import numpy as np

        from repro.geometry import interleave_many

        assert interleave_many(np.empty((0, 2), dtype=np.int64), 8).size == 0


class TestQuantize:
    def test_corners(self):
        unit = Rect.unit(2)
        assert quantize(Point(0, 0), unit, 4) == (0, 0)
        assert quantize(Point(0.999, 0.999), unit, 4) == (15, 15)

    def test_outside_raises(self):
        with pytest.raises(ValueError):
            quantize(Point(1.0, 0.0), Rect.unit(2), 4)

    @given(points)
    def test_cell_contains_point(self, p):
        cell = quantize(p, Rect.unit(2), 6)
        side = 1.0 / 64
        assert cell[0] * side <= p.x < (cell[0] + 1) * side + 1e-12
        assert cell[1] * side <= p.y < (cell[1] + 1) * side + 1e-12


class TestPrefixQuadtreeEquivalence:
    @given(st.lists(points, min_size=2, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_shared_prefix_iff_same_block(self, pts):
        """Two points share their depth-k Morton prefix iff the PR
        quadtree puts them in the same depth-k block — the [Oren82]
        trie equivalence."""
        bits = 12
        tree = PRQuadtree(capacity=1)
        tree.insert_many(pts)
        height = min(tree.height(), bits)
        codes = {p: morton_key(p, bits=bits) for p in pts}
        for depth in range(height + 1):
            # block id of each point at this depth, from the geometry
            def block_id(p):
                rect = Rect.unit(2)
                path = []
                for _ in range(depth):
                    idx = rect.quadrant_index(p)
                    path.append(idx)
                    rect = rect.child(idx)
                return tuple(path)

            for a in pts:
                for b in pts:
                    same_block = block_id(a) == block_id(b)
                    same_prefix = prefix_at_depth(
                        codes[a], depth, 2, bits
                    ) == prefix_at_depth(codes[b], depth, 2, bits)
                    assert same_block == same_prefix

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            prefix_at_depth(0, 5, 2, 4)


class TestMortonIndex:
    def test_insert_and_order(self):
        index = MortonIndex()
        for p in UniformPoints(seed=0).generate(100):
            index.insert(p)
        index.validate()
        assert len(index) == 100

    def test_bulk_insert(self):
        index = MortonIndex()
        index.insert_many(UniformPoints(seed=1).generate(200))
        index.validate()
        assert len(index) == 200

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            MortonIndex(bits=0)
        with pytest.raises(ValueError):
            MortonIndex(bits=40, dim=2)  # 80 bits > 62

    def test_range_search_matches_brute_force(self):
        pts = UniformPoints(seed=2).generate(400)
        index = MortonIndex()
        index.insert_many(pts)
        query = Rect(Point(0.3, 0.35), Point(0.62, 0.8))
        assert set(index.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    def test_range_disjoint_query(self):
        index = MortonIndex(bounds=Rect(Point(0, 0), Point(1, 1)))
        index.insert(Point(0.5, 0.5))
        outside = Rect(Point(2, 2), Point(3, 3))
        assert index.range_search(outside) == []

    def test_range_dim_mismatch(self):
        with pytest.raises(ValueError):
            MortonIndex().range_search(Rect.unit(3))

    @given(st.lists(points, min_size=0, max_size=40, unique=True),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, pts, data):
        index = MortonIndex()
        index.insert_many(pts)
        x0 = data.draw(unit_coord)
        y0 = data.draw(unit_coord)
        x1 = data.draw(st.floats(min_value=x0 + 1e-6, max_value=1.0))
        y1 = data.draw(st.floats(min_value=y0 + 1e-6, max_value=1.0))
        query = Rect(Point(x0, y0), Point(x1, y1))
        assert set(index.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }
