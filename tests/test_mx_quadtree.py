"""Unit and property tests for the MX quadtree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.quadtree import MXQuadtree
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=40, unique=True)


def build(pts, resolution=6):
    tree = MXQuadtree(resolution=resolution)
    tree.insert_many(pts)
    return tree


class TestBasics:
    def test_empty(self):
        tree = MXQuadtree()
        assert len(tree) == 0
        assert tree.node_count() == 0
        assert not tree.contains(Point(0.5, 0.5))
        tree.validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            MXQuadtree(resolution=0)
        with pytest.raises(ValueError):
            MXQuadtree(bounds=Rect.unit(3))

    def test_insert_and_contains(self):
        tree = MXQuadtree(resolution=4)
        assert tree.insert(Point(0.3, 0.7))
        assert tree.contains(Point(0.3, 0.7))
        tree.validate()

    def test_cell_collision(self):
        """Points in the same raster cell are identified."""
        tree = MXQuadtree(resolution=2)  # 4x4 grid, cells 0.25 wide
        assert tree.insert(Point(0.1, 0.1))
        assert not tree.insert(Point(0.2, 0.2))  # same cell
        assert tree.insert(Point(0.3, 0.1))  # next cell over
        assert len(tree) == 2

    def test_cell_of(self):
        tree = MXQuadtree(resolution=2)
        cell = tree.cell_of(Point(0.1, 0.1))
        assert cell == Rect(Point(0, 0), Point(0.25, 0.25))
        with pytest.raises(ValueError):
            tree.cell_of(Point(2, 2))

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            MXQuadtree().insert(Point(1.5, 0.5))
        assert not MXQuadtree().contains(Point(1.5, 0.5))

    def test_leaves_at_fixed_depth(self):
        tree = build(UniformPoints(seed=0).generate(50), resolution=5)
        tree.validate()  # asserts data leaves at depth == resolution


class TestDelete:
    def test_delete_present(self):
        tree = build([Point(0.1, 0.1), Point(0.9, 0.9)])
        assert tree.delete(Point(0.1, 0.1))
        assert not tree.contains(Point(0.1, 0.1))
        assert tree.contains(Point(0.9, 0.9))
        tree.validate()

    def test_delete_by_cell(self):
        """Deleting any point of the cell clears the cell's entry."""
        tree = MXQuadtree(resolution=2)
        tree.insert(Point(0.1, 0.1))
        assert tree.delete(Point(0.2, 0.2))  # same cell
        assert len(tree) == 0

    def test_delete_absent(self):
        tree = build([Point(0.5, 0.5)])
        assert not tree.delete(Point(0.1, 0.9))
        assert not tree.delete(Point(5, 5))

    def test_delete_prunes_empty_paths(self):
        tree = MXQuadtree(resolution=6)
        tree.insert(Point(0.1, 0.1))
        nodes_with_one = tree.node_count()
        tree.insert(Point(0.9, 0.9))
        tree.delete(Point(0.9, 0.9))
        assert tree.node_count() == nodes_with_one
        tree.delete(Point(0.1, 0.1))
        assert tree.node_count() == 0
        tree.validate()


class TestQueries:
    def test_range_search(self):
        pts = UniformPoints(seed=1).generate(200)
        tree = build(pts, resolution=8)
        query = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        found = set(tree.range_search(query))
        stored = set(tree.points())
        assert found == {p for p in stored if query.contains_point(p)}

    def test_points_round_trip(self):
        pts = UniformPoints(seed=2).generate(100)
        tree = MXQuadtree(resolution=10)
        inserted = tree.insert_many(pts)
        assert len(set(tree.points())) == inserted

    def test_node_count_exceeds_pr_for_same_data(self):
        """MX pays fixed-depth paths: more nodes than a PR quadtree
        storing the same points."""
        from repro.quadtree import PRQuadtree

        pts = UniformPoints(seed=3).generate(100)
        mx = build(pts, resolution=8)
        pr = PRQuadtree(capacity=1)
        pr.insert_many(pts)
        assert mx.node_count() > pr.node_count()


class TestProperties:
    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_membership_and_invariants(self, pts):
        tree = MXQuadtree(resolution=8)
        tree.insert_many(pts)
        tree.validate()
        for p in pts:
            assert tree.contains(p)  # cell-level membership

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_insert_delete_round_trip(self, pts):
        tree = MXQuadtree(resolution=8)
        inserted = [p for p in pts if tree.insert(p)]
        for p in inserted:
            assert tree.delete(p)
        assert len(tree) == 0
        assert tree.node_count() == 0
