"""Unit tests for repro.obs — span trees, counters, gauges, and the
ambient-tracer helpers every instrumented layer routes through."""

import pytest

from repro import obs
from repro.obs import NULL_SPAN, GaugeStats, SpanStats, Tracer, tracing


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert list(t.roots) == ["outer"]
        outer = t.roots["outer"]
        assert outer.count == 1
        assert outer.children["inner"].count == 2

    def test_same_name_aggregates_not_grows(self):
        t = Tracer()
        for _ in range(1000):
            with t.span("repeated"):
                pass
        assert len(t.roots) == 1
        assert t.roots["repeated"].count == 1000
        assert not t.roots["repeated"].children

    def test_siblings_at_different_positions_are_distinct(self):
        t = Tracer()
        with t.span("a"):
            with t.span("x"):
                pass
        with t.span("b"):
            with t.span("x"):
                pass
        assert t.roots["a"].children["x"].count == 1
        assert t.roots["b"].children["x"].count == 1

    def test_elapsed_accumulates(self):
        t = Tracer()
        with t.span("timed"):
            pass
        with t.span("timed"):
            pass
        node = t.roots["timed"]
        assert node.total >= 0.0
        assert node.min <= node.max
        assert node.mean == pytest.approx(node.total / 2)

    def test_record_external_duration(self):
        t = Tracer()
        with t.span("build"):
            t.record("chunk.pool", 1.5)
            t.record("chunk.pool", 0.5)
        chunk = t.roots["build"].children["chunk.pool"]
        assert chunk.count == 2
        assert chunk.total == pytest.approx(2.0)
        assert chunk.min == pytest.approx(0.5)
        assert chunk.max == pytest.approx(1.5)

    def test_open_depth_tracks_stack(self):
        t = Tracer()
        assert t.open_depth == 0
        with t.span("a"):
            assert t.open_depth == 1
            with t.span("b"):
                assert t.open_depth == 2
        assert t.open_depth == 0

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        assert t.open_depth == 0
        assert t.roots["risky"].count == 1


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        t = Tracer()
        t.count("events")
        t.count("events", 4)
        assert t.counters == {"events": 5}

    def test_gauge_stats(self):
        t = Tracer()
        for v in (3.0, 1.0, 2.0):
            t.gauge("depth", v)
        g = t.gauges["depth"]
        assert g.last == 2.0
        assert g.min == 1.0
        assert g.max == 3.0
        assert g.mean == pytest.approx(2.0)
        assert g.count == 3

    def test_gauge_stats_standalone(self):
        g = GaugeStats()
        g.observe(7.0)
        assert g.to_dict()["last"] == 7.0


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("ignored"):
            pass
        t.count("ignored")
        t.gauge("ignored", 1.0)
        t.record("ignored", 1.0)
        assert t.is_empty()

    def test_disabled_span_is_the_shared_null(self):
        t = Tracer(enabled=False)
        assert t.span("x") is NULL_SPAN


class TestAmbientTracing:
    def test_no_tracer_is_noop(self):
        assert obs.active_tracer() is None
        assert obs.span("x") is NULL_SPAN
        obs.count("x")
        obs.gauge("x", 1.0)
        obs.record("x", 1.0)
        assert not obs.enabled()

    def test_helpers_route_to_installed_tracer(self):
        with tracing() as t:
            assert obs.active_tracer() is t
            assert obs.enabled()
            with obs.span("work"):
                obs.count("ticks", 2)
                obs.gauge("level", 5.0)
        assert obs.active_tracer() is None
        assert t.roots["work"].count == 1
        assert t.counters["ticks"] == 2
        assert t.gauges["level"].last == 5.0

    def test_nesting_innermost_wins(self):
        with tracing() as outer:
            with tracing() as inner:
                obs.count("hit")
            assert inner.counters == {"hit": 1}
            assert "hit" not in outer.counters

    def test_installed_disabled_tracer_stays_empty(self):
        with tracing(Tracer(enabled=False)) as t:
            assert not obs.enabled()
            with obs.span("x"):
                obs.count("x")
        assert t.is_empty()


class TestRendering:
    def _populated(self):
        t = Tracer()
        with t.span("execute"):
            with t.span("build"):
                pass
        t.count("cache.hit", 3)
        t.gauge("depth", 7.0)
        return t

    def test_render_mentions_everything(self):
        text = self._populated().render()
        assert "span tree:" in text
        assert "execute" in text
        assert "build" in text
        assert "cache.hit = 3" in text
        assert "depth" in text

    def test_render_indents_children(self):
        text = self._populated().render()
        lines = text.splitlines()
        exec_line = next(l for l in lines if "execute" in l)
        build_line = next(l for l in lines if "build" in l)
        indent = lambda s: len(s) - len(s.lstrip())  # noqa: E731
        assert indent(build_line) > indent(exec_line)

    def test_render_empty(self):
        assert "no instrumentation" in Tracer().render()

    def test_to_dict_round_trips_through_json(self):
        import json

        t = self._populated()
        data = json.loads(json.dumps(t.to_dict()))
        assert data["spans"]["execute"]["count"] == 1
        assert data["spans"]["execute"]["children"]["build"]["count"] == 1
        assert data["counters"]["cache.hit"] == 3
        assert data["gauges"]["depth"]["last"] == 7.0

    def test_span_stats_to_dict_without_calls(self):
        node = SpanStats("never")
        assert node.to_dict()["count"] == 0
        assert "min_s" not in node.to_dict()
