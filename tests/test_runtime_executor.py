"""Unit tests for repro.runtime.executor — scheduling, fault tolerance,
cache integration, and metrics recording."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import CensusAccumulator, DepthCensus
from repro.runtime import (
    ChunkAutotuner,
    ExperimentSpec,
    PoolRunStats,
    ResultCache,
    RuntimeConfig,
    TrialResult,
    active_config,
    build_trials,
    execute,
    live_block_count,
    plan_chunks,
    runtime_session,
)
from repro.runtime import executor as executor_module

SPEC = ExperimentSpec(capacity=2, n_points=60, trials=5, seed=3)


# ----------------------------------------------------------------------
# fault-injection helpers (module level so they pickle to fork children)
# ----------------------------------------------------------------------

_real_run_chunk = executor_module._run_chunk


def _flaky_chunk(spec, start, count, engine="object", traced=False, shm=None):
    """A chunk runner that fails once (for chunk 0) then recovers.

    Module-level (and parameterized via the environment) so it pickles
    to pool workers by reference like the real ``_run_chunk``.
    """
    marker = os.path.join(
        os.environ["REPRO_TEST_FLAKY_DIR"], f"{start}.failed"
    )
    if start == 0 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("injected chunk failure")
    return _real_run_chunk(spec, start, count, engine, traced, shm)


def _always_failing(spec, start, count, engine="object", traced=False,
                    shm=None):
    raise RuntimeError("injected permanent failure")


def _crashing(spec, start, count, engine="object", traced=False, shm=None):
    if start == 0:
        os._exit(13)  # simulate a worker segfault / OOM kill
    return _real_run_chunk(spec, start, count, engine, traced, shm)


# ----------------------------------------------------------------------
# chunk planning
# ----------------------------------------------------------------------


class TestPlanChunks:
    def test_covers_every_trial_exactly_once(self):
        for trials in (1, 2, 7, 10, 33):
            for workers in (1, 2, 4):
                chunks = plan_chunks(trials, workers)
                covered = [
                    t for start, count in chunks
                    for t in range(start, start + count)
                ]
                assert covered == list(range(trials))

    def test_explicit_chunk_size(self):
        assert plan_chunks(10, 2, chunk_size=4) == [(0, 4), (4, 4), (8, 2)]

    def test_single_worker_single_chunk_for_small_runs(self):
        assert plan_chunks(3, 1) == [(0, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_chunks(0, 1)
        with pytest.raises(ValueError):
            plan_chunks(5, 0)
        with pytest.raises(ValueError):
            plan_chunks(5, 1, chunk_size=0)

    def test_runt_tail_merges_into_previous_chunk(self):
        # tail of 1 < 4/2: merged, last chunk grows to 5
        assert plan_chunks(9, 2, chunk_size=4) == [(0, 4), (4, 5)]
        # tail of exactly half stays its own chunk
        assert plan_chunks(10, 2, chunk_size=4) == [(0, 4), (4, 4), (8, 2)]
        # a single runt chunk (trials < chunk_size) has nothing to
        # merge into and survives
        assert plan_chunks(1, 2, chunk_size=4) == [(0, 1)]

    @settings(max_examples=200, deadline=None)
    @given(
        trials=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
        chunk_size=st.one_of(
            st.none(), st.integers(min_value=1, max_value=64)
        ),
    )
    def test_plans_cover_exactly_in_order(self, trials, workers, chunk_size):
        chunks = plan_chunks(trials, workers, chunk_size)
        # contiguous, in order, no overlap, exact coverage
        expected_start = 0
        for start, count in chunks:
            assert start == expected_start
            assert count >= 1
            expected_start = start + count
        assert expected_start == trials
        # no runt tail: the last chunk is either the only one or at
        # least half the nominal size
        if chunk_size is not None and len(chunks) >= 2:
            assert chunks[-1][1] * 2 >= chunk_size


# ----------------------------------------------------------------------
# the work itself
# ----------------------------------------------------------------------


class TestBuildTrials:
    def test_split_ranges_merge_to_full_range(self):
        full = build_trials(SPEC, 0, SPEC.trials)
        first = build_trials(SPEC, 0, 2)
        rest = build_trials(SPEC, 2, 3)
        first.merge(rest)
        assert first.trials == full.trials
        assert (
            first.accumulator.count_sums == full.accumulator.count_sums
        )

    def test_collections_respect_flags(self):
        spec = ExperimentSpec(
            capacity=1, n_points=40, trials=2, seed=0,
            collect_depth=True, collect_area=True,
        )
        result = build_trials(spec, 0, 2)
        assert len(result.depth_censuses) == 2
        assert result.area_occupancy
        plain = build_trials(SPEC, 0, 2)
        assert plain.depth_censuses == [] and plain.area_occupancy == []


class TestTrialResult:
    def test_payload_roundtrip_is_exact(self):
        spec = ExperimentSpec(
            capacity=2, n_points=50, trials=3, seed=1,
            collect_depth=True, collect_area=True,
        )
        result = build_trials(spec, 0, 3)
        back = TrialResult.from_payload(spec, result.to_payload())
        assert back.accumulator.count_sums == result.accumulator.count_sums
        assert back.trials == result.trials
        assert back.depth_censuses == result.depth_censuses
        assert back.area_occupancy == result.area_occupancy

    def test_json_roundtrip_is_exact(self):
        import json

        spec = ExperimentSpec(
            capacity=2, n_points=50, trials=3, seed=1, collect_area=True
        )
        result = build_trials(spec, 0, 3)
        payload = json.loads(json.dumps(result.to_payload()))
        back = TrialResult.from_payload(spec, payload)
        assert back.area_occupancy == result.area_occupancy
        assert back.accumulator.count_sums == result.accumulator.count_sums

    def test_merge_capacity_mismatch(self):
        with pytest.raises(ValueError):
            TrialResult.empty(2).merge(TrialResult.empty(3))

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("count_sums"),
            lambda p: p.__setitem__("count_sums", [1.0]),
            lambda p: p.__setitem__("trials", 99),
            lambda p: p.__setitem__(
                "depth_censuses", [{"capacity": 7, "by_depth": {}}]
            ),
            lambda p: p.__setitem__(
                "depth_censuses",
                [{"capacity": 2, "by_depth": {"0": [1]}}],
            ),
        ],
    )
    def test_from_payload_rejects_malformed(self, mutate):
        result = build_trials(SPEC, 0, SPEC.trials)
        payload = result.to_payload()
        mutate(payload)
        with pytest.raises((KeyError, TypeError, ValueError)):
            TrialResult.from_payload(SPEC, payload)

    def test_depth_censuses_roundtrip_keys_are_ints(self):
        spec = ExperimentSpec(
            capacity=1, n_points=30, trials=1, seed=0, collect_depth=True
        )
        result = build_trials(spec, 0, 1)
        back = TrialResult.from_payload(spec, result.to_payload())
        census = back.depth_censuses[0]
        assert isinstance(census, DepthCensus)
        assert all(isinstance(d, int) for d in census.by_depth)


# ----------------------------------------------------------------------
# execute(): serial, parallel, cached
# ----------------------------------------------------------------------


class TestExecuteSerial:
    def test_matches_build_trials(self):
        config = RuntimeConfig(workers=1)
        result = execute(SPEC, config)
        direct = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == direct.accumulator.count_sums
        report = config.report()
        assert report.trees_built == SPEC.trials
        assert report.cache_misses == 1
        assert all(c.mode == "serial" for c in report.chunks)

    def test_default_config_when_none_active(self):
        assert active_config() is None
        result = execute(SPEC)
        assert result.trials == SPEC.trials


class TestExecuteParallel:
    def test_pool_runs_and_matches_serial(self):
        config = RuntimeConfig(workers=2, chunk_size=2)
        result = execute(SPEC, config)
        serial = execute(SPEC, RuntimeConfig(workers=1))
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        report = config.report()
        assert report.workers == 2
        assert sum(c.trials for c in report.chunks) == SPEC.trials
        assert all(c.mode == "pool" for c in report.chunks)

    def test_failed_chunk_retries_once_then_succeeds(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        monkeypatch.setattr(executor_module, "_run_chunk", _flaky_chunk)
        config = RuntimeConfig(workers=2, chunk_size=2)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        report = config.report()
        assert report.retries == 1
        assert all(c.mode == "pool" for c in report.chunks)

    def test_permanent_chunk_failure_degrades_in_process(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_run_chunk", _always_failing)
        config = RuntimeConfig(workers=2, chunk_size=2)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        report = config.report()
        assert report.retries == len(report.chunks)
        assert all(c.mode == "degraded" for c in report.chunks)

    def test_worker_crash_degrades_gracefully(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
        config = RuntimeConfig(workers=2, chunk_size=2)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        assert any(c.mode == "degraded" for c in config.report().chunks)

    def test_pool_unavailable_runs_serially(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", no_pool
        )
        config = RuntimeConfig(workers=4, chunk_size=2)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        assert all(c.mode == "degraded" for c in config.report().chunks)


class TestBrokenPoolShortCircuit:
    """A dead pool must not see resubmissions: the crashed chunk and
    every surviving future go straight to in-process rescue, and the
    retry counter stays honest (regression for the old behavior of one
    futile in-pool retry per surviving chunk)."""

    def test_crash_counts_zero_retries(self, monkeypatch):
        from repro.obs import Tracer

        monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
        tracer = Tracer()
        config = RuntimeConfig(workers=2, chunk_size=2, tracer=tracer)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        report = config.report()
        # the crash breaks the pool: no in-pool retries are attempted
        assert report.retries == 0
        assert tracer.counters.get("runtime.retry", 0) == 0
        assert tracer.counters.get("runtime.pool_broken", 0) >= 1
        assert all(c.mode == "degraded" for c in report.chunks)

    def test_ordinary_failures_still_retry_in_pool(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_run_chunk", _always_failing)
        config = RuntimeConfig(workers=2, chunk_size=2)
        execute(SPEC, config)
        report = config.report()
        # picklable exceptions do not break the pool: one retry each
        assert report.retries == len(report.chunks)

    def test_session_pool_recreated_after_break(self, monkeypatch):
        with runtime_session(workers=2, chunk_size=2) as config:
            monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
            execute(SPEC)
            assert not config.persistent_pool().is_live
            monkeypatch.setattr(
                executor_module, "_run_chunk", _real_run_chunk
            )
            result = execute(SPEC)
            assert config.persistent_pool().is_live
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums


class TestPersistentPool:
    def test_session_reuses_one_pool_across_executes(self):
        with runtime_session(workers=2, chunk_size=2) as config:
            execute(SPEC)
            first = config.persistent_pool()._pool
            assert first is not None
            execute(SPEC)
            assert config.persistent_pool()._pool is first
        # session exit stops the workers
        assert config.persistent_pool()._pool is None

    def test_adhoc_execute_does_not_leave_workers(self):
        config = RuntimeConfig(workers=2, chunk_size=2)
        execute(SPEC, config)
        # a per-call pool was used; nothing persistent was created
        assert config._pool is None

    def test_width_change_recreates(self):
        from repro.runtime import PersistentPool

        holder = PersistentPool()
        pool2 = holder.acquire(2)
        assert holder.acquire(2) is pool2
        pool3 = holder.acquire(3)
        assert pool3 is not pool2
        holder.shutdown()
        assert holder._pool is None


class TestSharedMemoryLifecycle:
    def test_no_blocks_leak_on_normal_run(self):
        with runtime_session(workers=2, chunk_size=2, engine="vector"):
            execute(SPEC)
        assert live_block_count() == 0

    def test_no_blocks_leak_on_worker_crash(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_run_chunk", _crashing)
        execute(SPEC, RuntimeConfig(workers=2, chunk_size=2))
        assert live_block_count() == 0

    def test_no_blocks_leak_on_permanent_failure(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_run_chunk", _always_failing)
        execute(SPEC, RuntimeConfig(workers=2, chunk_size=2))
        assert live_block_count() == 0

    def test_shm_creation_failure_falls_back_to_regeneration(
        self, monkeypatch
    ):
        def no_shm(*args, **kwargs):
            raise OSError("shared memory unavailable")

        monkeypatch.setattr(
            executor_module.SharedPointBlock, "create", no_shm
        )
        config = RuntimeConfig(workers=2, chunk_size=2)
        result = execute(SPEC, config)
        serial = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == serial.accumulator.count_sums
        assert all(c.mode == "pool" for c in config.report().chunks)

    def test_no_resource_tracker_warnings(self):
        """The interpreter must exit without shared_memory leak
        warnings, both on clean pooled runs and crash rescues."""
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import os
            from repro.runtime import (
                ExperimentSpec, RuntimeConfig, execute, runtime_session,
            )
            from repro.runtime import executor as executor_module

            spec = ExperimentSpec(capacity=2, n_points=60, trials=5, seed=3)
            with runtime_session(workers=2, chunk_size=2, engine="vector"):
                execute(spec)

            def crashing(spec, start, count, engine="object", traced=False,
                         shm=None):
                os._exit(13)

            executor_module._run_chunk = crashing
            execute(spec, RuntimeConfig(workers=2, chunk_size=2))
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestEngineFallbackSignal:
    SPEC_AREA = ExperimentSpec(
        capacity=2, n_points=40, trials=2, seed=1, collect_area=True
    )

    def test_counter_emitted_for_area_specs_on_vector(self):
        from repro.obs import Tracer

        tracer = Tracer()
        config = RuntimeConfig(engine="vector", tracer=tracer)
        execute(self.SPEC_AREA, config)
        assert tracer.counters.get("runtime.engine_fallback") == 1

    def test_no_counter_when_engine_applies(self):
        from repro.obs import Tracer

        tracer = Tracer()
        config = RuntimeConfig(engine="vector", tracer=tracer)
        execute(SPEC, config)
        assert "runtime.engine_fallback" not in tracer.counters

    def test_verbose_note_printed_once(self, capsys):
        config = RuntimeConfig(engine="vector", verbose=True)
        execute(self.SPEC_AREA, config)
        execute(self.SPEC_AREA, config)
        err = capsys.readouterr().err
        assert err.count("cannot collect leaf areas") == 1

    def test_quiet_without_verbose(self, capsys):
        execute(self.SPEC_AREA, RuntimeConfig(engine="vector"))
        assert "leaf areas" not in capsys.readouterr().err


class TestChunkAutotuner:
    @staticmethod
    def stats(**overrides):
        base = dict(
            workers=2, chunk_size=4, chunk_count=8, pool_elapsed=1.0,
            mean_busy_fraction=0.9, straggler_ratio=1.1,
            rescue_fraction=0.0,
        )
        base.update(overrides)
        return PoolRunStats(**base)

    def test_no_suggestion_before_first_observation(self):
        tuner = ChunkAutotuner()
        assert tuner.suggest(100, 2) is None

    def test_low_busy_doubles(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats(mean_busy_fraction=0.3))
        assert tuner.suggest(100, 2) == 8

    def test_high_straggler_halves(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats(straggler_ratio=2.0))
        assert tuner.suggest(100, 2) == 2

    def test_balanced_run_locks_in(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats())
        assert tuner.suggest(100, 2) == 4

    def test_rescued_runs_are_ignored(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats(
            mean_busy_fraction=0.1, rescue_fraction=0.5
        ))
        assert tuner.suggest(100, 2) is None

    def test_suggestion_clamps_to_run_shape(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats(chunk_size=64, mean_busy_fraction=0.3))
        assert tuner.suggestion == 128
        # 10 trials / 2 workers: never fewer than one chunk per worker
        assert tuner.suggest(10, 2) == 5
        assert tuner.suggest(1000, 2) == 128

    def test_chunk_size_one_never_halves_to_zero(self):
        tuner = ChunkAutotuner()
        tuner.observe(self.stats(chunk_size=1, straggler_ratio=5.0))
        assert tuner.suggest(100, 2) == 1

    def test_pooled_session_feeds_the_autotuner(self):
        spec = ExperimentSpec(capacity=2, n_points=40, trials=12, seed=5)
        with runtime_session(workers=2) as config:
            execute(spec)
            assert config.autotuner().suggestion is not None

    def test_autotune_off_keeps_static_default(self):
        spec = ExperimentSpec(capacity=2, n_points=40, trials=12, seed=5)
        with runtime_session(workers=2, autotune=False) as config:
            execute(spec)
            assert config._autotuner is None


class TestExecuteCache:
    def _config(self, tmp_path, **kwargs):
        return RuntimeConfig(
            use_cache=True, cache_dir=str(tmp_path / "cache"), **kwargs
        )

    def test_second_run_builds_zero_trees(self, tmp_path):
        cold = self._config(tmp_path)
        execute(SPEC, cold)
        assert cold.report().cache_misses == 1
        warm = self._config(tmp_path)
        result = execute(SPEC, warm)
        report = warm.report()
        assert report.cache_hits == 1
        assert report.trees_built == 0
        assert report.chunks == []
        direct = build_trials(SPEC, 0, SPEC.trials)
        assert result.accumulator.count_sums == direct.accumulator.count_sums

    def test_cached_result_is_bit_identical(self, tmp_path):
        spec = ExperimentSpec(
            capacity=3, n_points=80, trials=4, seed=9,
            collect_depth=True, collect_area=True,
        )
        cold = execute(spec, self._config(tmp_path))
        warm = execute(spec, self._config(tmp_path))
        assert warm.accumulator.count_sums == cold.accumulator.count_sums
        assert warm.depth_censuses == cold.depth_censuses
        assert warm.area_occupancy == cold.area_occupancy

    def test_malformed_cached_payload_reexecutes(self, tmp_path):
        config = self._config(tmp_path)
        execute(SPEC, config)
        # corrupt the *payload* while keeping the entry envelope valid
        cache = ResultCache(config.cache_dir)
        entry = cache.load(SPEC)
        entry["count_sums"] = [1.0]  # wrong arity for the capacity
        cache.store(SPEC, entry)
        rerun = self._config(tmp_path)
        result = execute(SPEC, rerun)
        assert rerun.report().cache_misses == 1
        assert result.trials == SPEC.trials

    def test_cache_disabled_never_touches_disk(self, tmp_path):
        config = RuntimeConfig(
            use_cache=False, cache_dir=str(tmp_path / "cache")
        )
        execute(SPEC, config)
        assert not (tmp_path / "cache").exists()

    def test_parallel_run_populates_cache_for_serial_reader(self, tmp_path):
        execute(SPEC, self._config(tmp_path, workers=2, chunk_size=2))
        warm = self._config(tmp_path)
        execute(SPEC, warm)
        assert warm.report().cache_hits == 1


class TestRuntimeSession:
    def test_session_is_ambient_and_restored(self):
        assert active_config() is None
        with runtime_session(workers=1) as config:
            assert active_config() is config
            result = execute(SPEC)
            assert result.trials == SPEC.trials
            assert config.report().cache_misses == 1
        assert active_config() is None

    def test_sessions_nest(self):
        with runtime_session(workers=1) as outer:
            with runtime_session(workers=2) as inner:
                assert active_config() is inner
            assert active_config() is outer

    def test_config_object_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            with runtime_session(RuntimeConfig(), workers=2):
                pass

    def test_session_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with runtime_session(workers=1):
                raise RuntimeError("boom")
        assert active_config() is None


class TestRuntimeConfig:
    def test_result_cache_is_lazy_and_reused(self, tmp_path):
        config = RuntimeConfig(cache_dir=str(tmp_path))
        assert config._cache is None
        cache = config.result_cache()
        assert cache is config.result_cache()
        assert cache.directory == tmp_path
