"""Churn parity: PRQuadtree and PagedPRQuadtree stay bit-identical.

The same seeded :class:`~repro.workloads.ChurnWorkload` trace drives
both engines; after every phase the censuses must match bit for bit
and the membership sets must be identical.  This is the live-traffic
analogue of the build-time parity suite — delete/insert churn
exercises page merges, splits, and the overflow chains in ways a pure
build never does.
"""

import pytest

from repro.quadtree import PRQuadtree
from repro.storage import PagedPRQuadtree
from repro.workloads import (
    DELETE,
    INSERT,
    ChurnWorkload,
    GaussianPoints,
    UniformPoints,
)


def _assert_parity(mem, paged, live):
    assert len(paged) == len(mem) == len(live)
    assert paged.occupancy_census() == mem.occupancy_census()
    assert paged.depth_census() == mem.depth_census()
    assert paged.leaf_count() == mem.leaf_count()
    assert paged.height() == mem.height()
    for p in live:
        assert mem.contains(p)
        assert paged.contains(p)


def _run_phases(tmp_path, capacity, generator, seed, size=150,
                steps_per_phase=100, phases=4, **create_kwargs):
    workload = ChurnWorkload(size=size, generator=generator, seed=seed)
    mem = PRQuadtree(capacity=capacity)
    paged = PagedPRQuadtree.create(
        tmp_path / f"churn-m{capacity}.pf", capacity=capacity,
        **create_kwargs,
    )
    removed = []
    try:
        # phase 0: warm-up (all inserts), then churn phases
        for phase in range(phases):
            steps = 0 if phase == 0 else steps_per_phase
            if phase == 0:
                trace = workload.operations(churn_steps=0)
            else:
                trace = workload.operations(churn_steps=steps)
            for op, point in trace:
                if op == INSERT:
                    assert mem.insert(point) == paged.insert(point)
                else:
                    assert op == DELETE
                    assert mem.delete(point)
                    assert paged.delete(point)
                    removed.append(point)
            _assert_parity(mem, paged, workload.live_points)
        # deleted points are gone from both engines alike
        live = set(workload.live_points)
        for p in removed:
            if p not in live:  # churn can re-pick coordinates
                assert not mem.contains(p)
                assert not paged.contains(p)
    finally:
        paged.close()


class TestChurnParity:
    @pytest.mark.parametrize("capacity", [1, 4, 8])
    def test_uniform_churn_phases(self, tmp_path, capacity):
        _run_phases(
            tmp_path, capacity, UniformPoints(dim=2, seed=1987), seed=1987,
            pool_pages=16,
        )

    def test_gaussian_churn_phases(self, tmp_path):
        _run_phases(
            tmp_path, 4, GaussianPoints(seed=7), seed=7, pool_pages=8,
        )

    def test_tiny_pool_forces_eviction_during_churn(self, tmp_path):
        # 4 frames against a tree of ~dozens of pages: every phase
        # cycles pages through eviction and write-back
        _run_phases(
            tmp_path, 4, UniformPoints(dim=2, seed=11), seed=11,
            pool_pages=4,
        )

    def test_checkpoint_between_phases_preserves_parity(self, tmp_path):
        workload = ChurnWorkload(
            size=120, generator=UniformPoints(seed=23), seed=23
        )
        mem = PRQuadtree(capacity=4)
        path = tmp_path / "ckpt.pf"
        paged = PagedPRQuadtree.create(path, capacity=4, pool_pages=8)
        try:
            for op, point in workload.operations(churn_steps=0):
                mem.insert(point)
                paged.insert(point)
            for _ in range(3):
                paged.checkpoint()
                paged.close()
                paged = PagedPRQuadtree.open(path, pool_pages=8)
                for op, point in workload.operations(churn_steps=60):
                    if op == INSERT:
                        assert mem.insert(point) == paged.insert(point)
                    else:
                        assert mem.delete(point) and paged.delete(point)
                _assert_parity(mem, paged, workload.live_points)
        finally:
            paged.close()
