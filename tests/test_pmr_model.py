"""Unit and integration tests for the PMR population model."""

import numpy as np
import pytest

from repro.core import (
    PMRPopulationModel,
    crossing_probability_for,
    estimate_crossing_probability,
    pmr_transform_matrix,
)
from repro.quadtree import PMRQuadtree
from repro.workloads import RandomSegments


class TestTransform:
    def test_shape_and_shift_rows(self):
        T = pmr_transform_matrix(4, 0.3, max_occupancy=10)
        assert T.shape == (11, 11)
        for i in range(4):
            expected = np.zeros(11)
            expected[i + 1] = 1.0
            assert np.array_equal(T[i], expected)

    def test_split_rows_sum_to_four(self):
        """A split makes exactly 4 children in expectation."""
        T = pmr_transform_matrix(4, 0.35, max_occupancy=12)
        sums = T.sum(axis=1)
        for i in range(4, 13):
            assert sums[i] == pytest.approx(4.0)

    def test_split_conserves_expected_segments(self):
        """Each of the q = i+1 segments lands in 4p children on
        average, so the occupancy-weighted row sum is 4p(i+1)."""
        p = 0.3
        T = pmr_transform_matrix(3, p, max_occupancy=14)
        occ = np.arange(15)
        for i in range(3, 13):  # away from the clamped top class
            expected = 4.0 * p * (i + 1)
            assert float(T[i] @ occ) == pytest.approx(expected, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            pmr_transform_matrix(0, 0.3)
        with pytest.raises(ValueError):
            pmr_transform_matrix(4, 0.0)
        with pytest.raises(ValueError):
            pmr_transform_matrix(4, 1.0)
        with pytest.raises(ValueError):
            pmr_transform_matrix(4, 0.3, max_occupancy=4)


class TestModel:
    def test_distribution_normalized_positive(self):
        model = PMRPopulationModel(4, 0.3)
        e = model.expected_distribution()
        assert e.sum() == pytest.approx(1.0)
        assert (e >= 0).all()

    def test_average_occupancy_reasonable(self):
        model = PMRPopulationModel(4, 0.3)
        assert 0.5 < model.average_occupancy() < 5.0

    def test_occupancy_increases_with_crossing_probability(self):
        """Longer segments (higher p) load leaves more heavily."""
        low = PMRPopulationModel(4, 0.26).average_occupancy()
        high = PMRPopulationModel(4, 0.45).average_occupancy()
        assert high > low

    def test_fraction_over_threshold_small(self):
        """Over-threshold leaves exist (PMR splits late) but are rare."""
        model = PMRPopulationModel(4, 0.3)
        frac = model.fraction_over_threshold()
        assert 0.0 < frac < 0.25

    def test_steady_state_cached(self):
        model = PMRPopulationModel(4, 0.3)
        assert model.steady_state() is model.steady_state()

    def test_accessors(self):
        model = PMRPopulationModel(5, 0.31)
        assert model.threshold == 5
        assert model.crossing_probability == 0.31
        assert model.transform.shape[0] == model.transform.shape[1]


class TestCrossingProbability:
    def test_short_segment_limit(self):
        """L -> 0: a segment occupies exactly one quadrant, p -> 1/4."""
        assert crossing_probability_for(1e-9, 1.0) == pytest.approx(
            0.25, abs=1e-6
        )

    def test_increases_with_length(self):
        short = crossing_probability_for(0.05, 1.0)
        long = crossing_probability_for(0.5, 1.0)
        assert long > short

    def test_clamped_to_half(self):
        assert crossing_probability_for(10.0, 1.0) <= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_probability_for(0.0, 1.0)
        with pytest.raises(ValueError):
            crossing_probability_for(0.1, 0.0)

    def test_estimate_from_tree(self):
        tree = PMRQuadtree(threshold=4)
        tree.insert_many(RandomSegments(seed=0).generate(200))
        p = estimate_crossing_probability(tree)
        assert 0.25 <= p <= 0.75

    def test_estimate_empty_tree_raises(self):
        with pytest.raises(ValueError):
            estimate_crossing_probability(PMRQuadtree())


class TestAgainstSimulation:
    def test_model_predicts_simulated_occupancy(self):
        """The paper: PMR population analysis agrees with experiment
        'even better than in the case of the PR quadtree'.  We require
        the calibrated model to land within 20% of simulation."""
        threshold = 4
        sims = []
        ps = []
        for seed in range(5):
            tree = PMRQuadtree(threshold=threshold)
            tree.insert_many(RandomSegments(seed=seed).generate(400))
            sims.append(tree.average_occupancy())
            ps.append(estimate_crossing_probability(tree))
        model = PMRPopulationModel(threshold, float(np.mean(ps)))
        predicted = model.average_occupancy()
        simulated = float(np.mean(sims))
        assert predicted == pytest.approx(simulated, rel=0.2)

    def test_distribution_shape_matches_simulation(self):
        """Model and simulation should agree on where the mode is,
        within one occupancy class."""
        threshold = 4
        tree = PMRQuadtree(threshold=threshold)
        tree.insert_many(RandomSegments(seed=42).generate(600))
        p = estimate_crossing_probability(tree)
        model = PMRPopulationModel(threshold, p)
        cap = model.transform.shape[0] - 1
        observed = np.asarray(
            tree.occupancy_census(cap=cap).proportions()
        )
        predicted = model.expected_distribution()
        assert abs(int(np.argmax(observed)) - int(np.argmax(predicted))) <= 1
