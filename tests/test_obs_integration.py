"""The obs layer threaded through the runtime, harness, and solvers:
spans land where the ISSUE says the time goes, counters expose the
quadtree's structural events, and ``RunReport`` renders the tree."""

import numpy as np
import pytest

from repro import obs
from repro.core.fixed_point import solve, solve_fixed_point_iteration
from repro.core.transform import transform_matrix
from repro.experiments.harness import run_trials
from repro.obs import Tracer, tracing
from repro.runtime import (
    ExperimentSpec,
    RuntimeConfig,
    execute,
    runtime_session,
)

SPEC = ExperimentSpec(capacity=4, n_points=120, trials=3, seed=5)


def _traced_config(**kwargs) -> RuntimeConfig:
    return RuntimeConfig(tracer=Tracer(), **kwargs)


class TestExecutorSpans:
    def test_execute_records_the_span_tree(self):
        config = _traced_config()
        execute(SPEC, config)
        t = config.tracer
        execute_node = t.roots["runtime.execute"]
        assert execute_node.count == 1
        build = execute_node.children["runtime.build"]
        chunk = build.children["chunk.serial"]
        assert chunk.children["trial.build"].count == SPEC.trials
        assert chunk.children["trial.census"].count == SPEC.trials

    def test_tree_counters_and_gauges(self):
        config = _traced_config()
        execute(SPEC, config)
        t = config.tracer
        assert t.counters["tree.built"] == SPEC.trials
        assert t.counters["tree.splits"] > 0
        assert t.counters["tree.replace_scans"] == 0
        assert t.gauges["tree.max_depth"].max >= 1

    def test_cache_hit_and_miss_counters(self, tmp_path):
        config = _traced_config(use_cache=True, cache_dir=tmp_path)
        execute(SPEC, config)
        execute(SPEC, config)
        t = config.tracer
        assert t.counters["cache.miss"] == 1
        assert t.counters["cache.hit"] == 1
        # the warm run built nothing
        assert t.counters["tree.built"] == SPEC.trials
        load = t.roots["runtime.execute"].children["cache.load"]
        assert load.count == 2
        store = t.roots["runtime.execute"].children["cache.store"]
        assert store.count == 1

    def test_runtime_session_installs_the_tracer(self):
        config = _traced_config()
        with runtime_session(config):
            assert obs.active_tracer() is config.tracer
            execute(SPEC)
        assert obs.active_tracer() is None
        assert config.tracer.counters["tree.built"] == SPEC.trials

    def test_untraced_run_records_nothing_ambient(self):
        execute(SPEC, RuntimeConfig())
        assert obs.active_tracer() is None


class TestHarnessSpans:
    def test_legacy_path_is_instrumented_too(self):
        def factory(seed):
            from repro.workloads import UniformPoints
            return UniformPoints(seed=seed)

        with tracing() as t:
            run_trials(4, n_points=60, trials=2, generator_factory=factory)
        assert t.roots["trial.build"].count == 2
        assert t.counters["tree.built"] == 2


class TestSolverInstrumentation:
    def test_fixed_point_gauges(self):
        matrix = transform_matrix(4)
        with tracing() as t:
            solve_fixed_point_iteration(matrix)
        assert t.roots["solver.fixed_point"].count == 1
        iters = t.gauges["solver.fixed_point.iterations"]
        assert iters.last >= 1
        assert t.gauges["solver.fixed_point.residual"].last < 1e-8

    @pytest.mark.parametrize("method", ["eigen", "newton"])
    def test_direct_solvers_record_spans_and_residuals(self, method):
        matrix = transform_matrix(3)
        with tracing() as t:
            solve(matrix, method=method)
        assert t.roots[f"solver.{method}"].count == 1
        assert t.gauges[f"solver.{method}.residual"].last < 1e-8

    def test_solvers_work_untraced(self):
        matrix = np.asarray(transform_matrix(2))
        state = solve_fixed_point_iteration(matrix)
        assert state.distribution.sum() == pytest.approx(1.0)


class TestRunReportTrace:
    def test_report_carries_the_tracer(self):
        config = _traced_config()
        execute(SPEC, config)
        report = config.report()
        assert report.trace is config.tracer
        summary = report.summary()
        assert "span tree:" in summary
        assert "runtime.execute" in summary
        assert "tree.splits" in summary

    def test_report_without_tracer_is_unchanged(self):
        config = RuntimeConfig()
        execute(SPEC, config)
        report = config.report()
        assert report.trace is None
        assert "span tree:" not in report.summary()

    def test_report_with_empty_tracer_omits_trace(self):
        config = _traced_config()
        assert config.report().trace is None


class TestWorkerTelemetry:
    """Pool workers run traced; their snapshots merge back as
    ``worker.N`` subtrees with utilization gauges."""

    POOL_SPEC = ExperimentSpec(capacity=4, n_points=100, trials=4, seed=7)

    def _pooled(self):
        config = _traced_config(workers=2, chunk_size=1)
        result = execute(self.POOL_SPEC, config)
        return config.tracer, result

    def test_worker_subtrees_mounted_under_build(self):
        t, _ = self._pooled()
        build = t.roots["runtime.execute"].children["runtime.build"]
        workers = sorted(n for n in build.children if n.startswith("worker."))
        assert workers and workers[0] == "worker.0"
        w0 = build.children["worker.0"]
        assert "trial.build" in w0.children
        assert "trial.census" in w0.children
        assert w0.children["trial.build"].count >= 1

    def test_worker_counters_fold_into_coordinator_totals(self):
        t, result = self._pooled()
        # pre-v2, pooled traced runs reported tree.built == 0 because
        # workers ran untraced; now the counts come home with the chunks
        assert t.counters["tree.built"] == self.POOL_SPEC.trials
        assert t.counters["tree.splits"] > 0
        assert result.trials == self.POOL_SPEC.trials

    def test_utilization_gauges(self):
        t, _ = self._pooled()
        busy = t.gauges["pool.worker.busy_fraction"]
        assert busy.count >= 1
        assert 0.0 < busy.max <= 1.5  # timer skew can nudge past 1.0
        straggler = t.gauges["pool.straggler_ratio"]
        assert straggler.last >= 1.0
        assert t.gauges["pool.workers_used"].last >= 1

    def test_pooled_trace_exports_to_chrome(self):
        import json

        from repro.obs import export_chrome_trace

        t, _ = self._pooled()
        doc = export_chrome_trace(t)
        json.dumps(doc, allow_nan=False)
        spans = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert all(
            e["ph"] == "X" and "ts" in e and "dur" in e for e in spans
        )
        worker_tids = {
            e["tid"] for e in spans if e["name"].startswith("worker.")
        }
        assert worker_tids and 0 not in worker_tids

    def test_untraced_pooled_run_ships_no_snapshots(self):
        from repro.runtime.executor import _run_chunk

        outcome = _run_chunk(self.POOL_SPEC, 0, 2)
        assert outcome.trace is None
        assert outcome.pid > 0

    def test_traced_chunk_carries_its_snapshot(self):
        from repro.runtime.executor import _run_chunk

        outcome = _run_chunk(self.POOL_SPEC, 0, 2, "object", True)
        assert outcome.trace is not None
        assert outcome.trace["spans"]["trial.build"]["count"] == 2
        assert outcome.trace["counters"]["tree.built"] == 2


class TestCacheHitRatio:
    def test_ratio_property_and_summary_line(self, tmp_path):
        config = _traced_config(use_cache=True, cache_dir=tmp_path)
        execute(SPEC, config)
        execute(SPEC, config)
        report = config.report()
        assert report.cache_hit_ratio == pytest.approx(0.5)
        assert "50% hit ratio" in report.summary()

    def test_run_end_gauge_recorded_on_traced_runs(self, tmp_path):
        config = _traced_config(use_cache=True, cache_dir=tmp_path)
        execute(SPEC, config)
        execute(SPEC, config)
        config.report()
        gauge = config.tracer.gauges["cache.hit_ratio"]
        assert gauge.last == pytest.approx(0.5)

    def test_no_runs_means_zero_ratio(self):
        from repro.runtime.metrics import RunReport

        assert RunReport().cache_hit_ratio == 0.0


class TestCliVerbose:
    def test_verbose_prints_span_tree(self, capsys, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1", "--trials", "1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "run report:" in out
        assert "span tree:" in out
        assert "trial.build" in out

    def test_quiet_run_prints_no_report(self, capsys, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "span tree:" not in out
