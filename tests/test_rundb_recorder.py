"""Recording hooks: path resolution precedence, automatic session
recording through ``runtime_session``, autotune persistence across
configs, bench-snapshot recording, serve drift recording, and the
recording-never-breaks-the-run guarantee."""

from pathlib import Path

import pytest

from repro.obs import Tracer
from repro.runtime import (
    ChunkAutotuner,
    ExperimentSpec,
    RuntimeConfig,
    execute,
    runtime_session,
)
from repro.rundb.recorder import (
    AutotuneStore,
    ServeRecorder,
    SessionRecorder,
    default_db_path,
    record_bench_snapshot,
    resolve_db_path,
)
from repro.rundb.repository import RunDB
from repro.service.monitor import DriftSample

SPEC = ExperimentSpec(capacity=2, n_points=80, trials=3, seed=9)


class TestResolveDbPath:
    def test_no_db_beats_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DB", str(tmp_path / "env.sqlite"))
        assert resolve_db_path(tmp_path / "x.sqlite", no_db=True) is None
        monkeypatch.setenv("REPRO_NO_DB", "1")
        assert resolve_db_path(tmp_path / "x.sqlite") is None

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_DB", raising=False)
        monkeypatch.setenv("REPRO_DB", str(tmp_path / "env.sqlite"))
        assert resolve_db_path(tmp_path / "x.sqlite") == tmp_path / "x.sqlite"
        assert resolve_db_path() == tmp_path / "env.sqlite"

    def test_default_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_DB", raising=False)
        monkeypatch.delenv("REPRO_DB", raising=False)
        assert resolve_db_path(default=False) is None
        assert resolve_db_path() == default_db_path()

    def test_default_path_is_xdg_aware(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_DATA_HOME", str(tmp_path / "data"))
        assert default_db_path() == \
            tmp_path / "data" / "repro" / "runs.sqlite"


class TestSessionRecording:
    def test_runtime_session_records_automatically(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        with runtime_session(
            workers=1, use_cache=True, db_path=db_path,
            db_label="unit-session",
        ) as config:
            execute(SPEC, config)
            execute(SPEC, config)  # second hit comes from memory/cache
        with RunDB(db_path) as db:
            runs = db.runs(kind="session")
            assert len(runs) == 1
            run = db.run(runs[0]["id"])
            assert run["label"] == "unit-session"
            assert run["status"] == "done"
            assert len(run["trials"]) == 2
            assert {t["cache_hit"] for t in run["trials"]} == {0, 1}
            occ = run["trials"][0]["mean_occupancy"]
            assert run["trials"][1]["mean_occupancy"] == occ

    def test_no_db_path_records_nothing(self, tmp_path):
        config = RuntimeConfig(workers=1)
        with runtime_session(config):
            execute(SPEC)
        assert config.recorder() is None

    def test_empty_session_writes_no_run(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        with runtime_session(workers=1, db_path=db_path):
            pass
        assert not db_path.exists()

    def test_flush_failure_is_non_fatal(self, tmp_path, capsys):
        recorder = SessionRecorder(tmp_path)  # a directory, not a DB
        recorder.note_execution(
            SPEC, _fake_result(), "object", 1, False, 0.1
        )
        assert recorder.flush() is None
        assert "warning: run DB session flush failed" in \
            capsys.readouterr().err

    def test_flush_only_once(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        recorder = SessionRecorder(db_path, label="twice")
        recorder.note_execution(
            SPEC, _fake_result(), "object", 1, False, 0.1
        )
        assert recorder.flush() is not None
        assert recorder.flush() is None
        with RunDB(db_path) as db:
            assert db.counts()["runs"] == 1


def _fake_result():
    result = execute(SPEC, RuntimeConfig(workers=1, use_cache=False))
    return result


class TestAutotunePersistence:
    def test_store_round_trip(self, tmp_path):
        store = AutotuneStore(tmp_path / "runs.sqlite")
        assert store.load("object", 500, 2) is None
        store.save("object", 500, 2, 8)
        assert store.load("object", 500, 2) == 8

    def test_store_swallows_errors(self, tmp_path):
        broken = AutotuneStore(tmp_path)  # a directory, not a DB
        assert broken.load("object", 500, 2) is None
        broken.save("object", 500, 2, 8)  # must not raise

    def test_tuner_seeds_from_store(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        AutotuneStore(db_path).save("object", 500, 2, 6)
        tuner = ChunkAutotuner(store=AutotuneStore(db_path))
        # 32 trials / 2 workers leaves room: the persisted 6 survives
        assert tuner.suggest(32, 2, key=("object", 500)) == 6
        # a different key has no persisted size and no scalar fallback
        assert tuner.suggest(32, 2, key=("vector", 500)) is None

    def test_config_attaches_store_when_db_configured(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        AutotuneStore(db_path).save("object", SPEC.n_points, 2, 3)
        config = RuntimeConfig(workers=2, db_path=db_path)
        tuner = config.autotuner()
        assert tuner.suggest(
            SPEC.trials, 2, key=("object", SPEC.n_points)
        ) in (1, 2)  # clamped to ceil(3 trials / 2 workers)
        assert RuntimeConfig(workers=2)._autotuner is None


class TestBenchRecording:
    SNAPSHOT = {
        "created_unix": 1234.5,
        "profile": "smoke",
        "bench_version": 7,
        "total_wall_s": 2.5,
        "env": {"python": "3.x"},
        "stages": {
            "census": {
                "stage_wall_s": 0.25, "stage_peak_rss_kb": 1024,
                "speedup": 2.0, "note": "not-a-scalar",
            },
            "broken": "not-a-dict",
        },
    }

    def test_record_bench_snapshot(self, tmp_path):
        with RunDB(tmp_path / "runs.sqlite") as db:
            run_id = record_bench_snapshot(
                db, self.SNAPSHOT, label="unit", source="ingest"
            )
            run = db.run(run_id)
            assert run["kind"] == "bench"
            assert run["source"] == "ingest"
            assert run["created_unix"] == 1234.5
            assert run["bench_version"] == 7
            assert run["wall_s"] == pytest.approx(2.5)
            [stage] = run["stages"]
            assert stage["stage"] == "census"
            import json
            assert json.loads(stage["payload"]) == {"speedup": 2.0}


class TestServeRecording:
    def _sample(self, alarm=False):
        return DriftSample(
            n_points=1000, capacity=4, predicted_pages=80.0,
            actual_pages=82, predicted_occupancy=1.9,
            observed_occupancy=1.95, alarm=alarm, armed=True,
        )

    def test_eager_run_row_and_drift(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        recorder = ServeRecorder(db_path, label="serve unit")
        recorder.start(extra={"port": 0})
        assert recorder.run_id is not None
        recorder.drift(self._sample())
        recorder.drift(self._sample(alarm=True).to_dict())
        # a killed server never calls finish(); the samples are already
        # durable and the run stays 'open'
        with RunDB(db_path) as db:
            run = db.run(recorder.run_id)
            assert run["status"] == "open"
            assert run["drift"]["samples"] == 2
            assert run["drift"]["alarms"] == 1
        recorder.finish(None)
        with RunDB(db_path) as db:
            assert db.run(1)["status"] == "done"

    def test_finish_records_tracer(self, tmp_path):
        db_path = tmp_path / "runs.sqlite"
        tracer = Tracer()
        with tracer.span("service.commit"):
            pass
        recorder = ServeRecorder(db_path)
        recorder.start()
        recorder.finish(tracer)
        with RunDB(db_path) as db:
            assert ("", "service.commit") in db.span_paths(1)

    def test_broken_db_degrades_silently(self, tmp_path, capsys):
        recorder = ServeRecorder(tmp_path)  # a directory, not a DB
        recorder.start()
        assert recorder.run_id is None
        recorder.drift(self._sample())  # must not raise
        recorder.finish(None)
        assert "warning: run DB serve start failed" in \
            capsys.readouterr().err


class TestDriftSinkWiring:
    def test_monitor_sample_flows_through_sink(self, tmp_path):
        """DriftMonitor -> sink -> DB, as the server wires it."""
        pytest.importorskip("repro.storage.paged_tree")
        from repro.storage.paged_tree import PagedPRQuadtree

        tree = PagedPRQuadtree.create(
            tmp_path / "tree.pages", capacity=4, dim=2
        )
        from repro.geometry import Point
        for i in range(64):
            tree.insert(Point((i % 8) / 8.0, (i // 8) / 8.0))
        from repro.service.monitor import DriftMonitor

        db_path = tmp_path / "runs.sqlite"
        recorder = ServeRecorder(db_path, label="sink unit")
        recorder.start()
        monitor = DriftMonitor(tree)
        recorder.drift(monitor.sample())
        recorder.finish(None)
        with RunDB(db_path) as db:
            run = db.run(recorder.run_id)
            assert run["drift"]["samples"] == 1
        tree.close()
