"""Unit and integration tests for the population dynamics module."""

import numpy as np
import pytest

from repro.core import (
    PopulationDynamics,
    PopulationModel,
    StochasticPopulation,
    generation_span,
    split_outcome_probabilities,
    transform_matrix,
)
from repro.experiments import run_trials


class TestMeanField:
    def test_step_conserves_expected_items(self):
        """N' gains exactly one item per insertion in expectation."""
        dyn = PopulationDynamics(transform_matrix(2))
        N = np.array([5.0, 3.0, 2.0])
        weights = np.arange(3)
        before = N @ weights
        after = dyn.step(N) @ weights
        assert after == pytest.approx(before + 1.0)

    def test_step_grows_nodes_by_a_minus_one(self):
        m = 3
        dyn = PopulationDynamics(transform_matrix(m))
        model = PopulationModel(m)
        e = model.expected_distribution()
        grown = dyn.step(e * 100.0)
        assert grown.sum() == pytest.approx(
            100.0 + model.growth_rate() - 1.0
        )

    def test_steady_state_is_fixed_in_proportions(self):
        m = 4
        dyn = PopulationDynamics(transform_matrix(m))
        e = PopulationModel(m).expected_distribution()
        stepped = dyn.step(e * 1000.0)
        assert stepped / stepped.sum() == pytest.approx(e, abs=1e-12)

    def test_trajectory_converges_to_steady_state(self):
        m = 3
        dyn = PopulationDynamics(transform_matrix(m))
        start = np.array([1.0, 0.0, 0.0, 0.0])
        path = dyn.trajectory(start, 3000)
        e = PopulationModel(m).expected_distribution()
        assert path[-1] == pytest.approx(e, abs=1e-3)
        # monotone-ish approach: late error below early error
        early = np.abs(path[10] - e).sum()
        late = np.abs(path[-1] - e).sum()
        assert late < early

    def test_trajectory_shape_and_row0(self):
        dyn = PopulationDynamics(transform_matrix(1))
        path = dyn.trajectory([3.0, 1.0], 5)
        assert path.shape == (6, 2)
        assert path[0] == pytest.approx([0.75, 0.25])

    def test_validation(self):
        dyn = PopulationDynamics(transform_matrix(2))
        with pytest.raises(ValueError):
            dyn.step([1.0, 2.0])  # wrong shape
        with pytest.raises(ValueError):
            dyn.step([0.0, 0.0, 0.0])  # empty population
        with pytest.raises(ValueError):
            dyn.trajectory([1.0, 0.0, 0.0], -1)
        with pytest.raises(ValueError):
            PopulationDynamics(np.array([[1.0, -1.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            PopulationDynamics(np.ones((2, 3)))

    def test_convergence_rate_m1(self):
        """T = [[0,1],[3,2]] has eigenvalues 3 and -1: rate 1/3."""
        dyn = PopulationDynamics(transform_matrix(1))
        assert dyn.convergence_rate() == pytest.approx(1 / 3)

    def test_convergence_rate_grows_with_capacity(self):
        rates = [
            PopulationDynamics(transform_matrix(m)).convergence_rate()
            for m in (1, 2, 4, 8)
        ]
        assert rates == sorted(rates)
        assert all(0 < r < 1 for r in rates)

    def test_distance_and_tolerance(self):
        m = 2
        dyn = PopulationDynamics(transform_matrix(m))
        start = [1.0, 0.0, 0.0]
        assert dyn.distance_to_steady_state(start) > 0.3
        k = dyn.insertions_to_tolerance(start, tol=0.05)
        assert 0 < k < 10_000
        # once converged, zero further insertions needed
        e = PopulationModel(m).expected_distribution()
        assert dyn.insertions_to_tolerance(e * 50, tol=0.05) == 0

    def test_tolerance_validation(self):
        dyn = PopulationDynamics(transform_matrix(1))
        with pytest.raises(ValueError):
            dyn.insertions_to_tolerance([1.0, 0.0], tol=0.0)


class TestStochastic:
    def test_initial_state(self):
        pop = StochasticPopulation(capacity=2, seed=0)
        assert pop.total_nodes == 1
        assert pop.total_items == 0
        assert pop.counts.tolist() == [1, 0, 0]

    def test_items_conserved(self):
        pop = StochasticPopulation(capacity=3, seed=1)
        pop.insert_many(500)
        pop.validate()
        assert pop.total_items == 500

    def test_matches_mean_field_distribution(self):
        """The sampled census converges to the model's fixed point."""
        m = 4
        pop = StochasticPopulation(capacity=m, seed=2)
        pop.insert_many(30_000)
        e = PopulationModel(m).expected_distribution()
        assert np.max(np.abs(pop.proportions() - e)) < 0.02

    def test_isolates_aging_from_model_error(self):
        """The population-level Monte Carlo embodies exactly the model's
        abundance-proportional-hit assumption, so it reproduces the
        *fixed point* — while real trees, where bigger blocks are bigger
        targets, deviate in the aging direction.  The three-way
        comparison certifies that the model-vs-tree gap is aging, not
        solver or sampling error."""
        m = 2
        pop = StochasticPopulation(capacity=m, seed=3)
        pop.insert_many(10_000)
        model = PopulationModel(m).expected_distribution()
        trees = np.asarray(
            run_trials(m, n_points=1000, trials=10, seed=3).mean_proportions()
        )
        # stochastic population == model (sampling noise only)
        assert np.max(np.abs(pop.proportions() - model)) < 0.02
        # real trees != model, specifically: more empties, fewer full
        assert trees[0] > model[0] + 0.02
        assert trees[-1] < model[-1] - 0.02

    def test_average_occupancy_definition(self):
        pop = StochasticPopulation(capacity=2, seed=4)
        pop.insert_many(1000)
        assert pop.average_occupancy() == pytest.approx(
            pop.total_items / pop.total_nodes
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticPopulation(capacity=0)
        with pytest.raises(ValueError):
            StochasticPopulation(capacity=1, buckets=1)
        pop = StochasticPopulation(capacity=1, seed=0)
        with pytest.raises(ValueError):
            pop.insert_many(-1)

    def test_deterministic_with_seed(self):
        a = StochasticPopulation(capacity=2, seed=7)
        b = StochasticPopulation(capacity=2, seed=7)
        a.insert_many(200)
        b.insert_many(200)
        assert a.counts.tolist() == b.counts.tolist()


class TestHelpers:
    def test_generation_span_positive(self):
        for m in (1, 4, 8):
            span = generation_span(m)
            assert span > 0

    def test_generation_span_m1(self):
        """a=3 for m=1: ln(4)/2 insertions per node per generation."""
        assert generation_span(1) == pytest.approx(np.log(4) / 2)

    def test_split_outcome_probabilities_normalized(self):
        probs = split_outcome_probabilities(3)
        assert sum(probs) == pytest.approx(1.0)
        assert all(p >= 0 for p in probs)
