"""Unit tests for the workload generators."""

import math

import numpy as np
import pytest

from repro.geometry import Point, Rect
from repro.workloads import (
    ClusteredPoints,
    DiagonalPoints,
    GaussianPoints,
    RandomSegments,
    UniformPoints,
    logarithmic_sample_sizes,
)


class TestUniform:
    def test_count_and_distinctness(self):
        pts = UniformPoints(seed=0).generate(500)
        assert len(pts) == 500
        assert len(set(pts)) == 500

    def test_inside_bounds(self):
        bounds = Rect(Point(-2, -2), Point(2, 2))
        pts = UniformPoints(bounds=bounds, seed=1).generate(200)
        assert all(bounds.contains_point(p) for p in pts)

    def test_deterministic_seeding(self):
        a = UniformPoints(seed=7).generate(50)
        b = UniformPoints(seed=7).generate(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = UniformPoints(seed=1).generate(50)
        b = UniformPoints(seed=2).generate(50)
        assert a != b

    def test_negative_n(self):
        with pytest.raises(ValueError):
            UniformPoints(seed=0).generate(-1)

    def test_stream_distinct(self):
        stream = UniformPoints(seed=3).stream()
        pts = [next(stream) for _ in range(100)]
        assert len(set(pts)) == 100

    def test_roughly_uniform_quadrant_counts(self):
        pts = UniformPoints(seed=4).generate(4000)
        counts = [0, 0, 0, 0]
        unit = Rect.unit(2)
        for p in pts:
            counts[unit.quadrant_index(p)] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_higher_dimensions(self):
        pts = UniformPoints(dim=3, seed=5).generate(100)
        assert all(p.dim == 3 for p in pts)


class TestGaussian:
    def test_inside_bounds(self):
        pts = GaussianPoints(seed=0).generate(500)
        unit = Rect.unit(2)
        assert all(unit.contains_point(p) for p in pts)

    def test_concentrated_in_center(self):
        """sigma = 0.4*side: the central quarter-area box holds ~34% of
        the retained mass — above the uniform 25% but far from a tight
        bell (the calibrated middle ground, see generator docstring)."""
        pts = GaussianPoints(seed=1).generate(4000)
        central = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        inside = sum(1 for p in pts if central.contains_point(p))
        assert 0.28 < inside / len(pts) < 0.42

    def test_tight_sigma_concentrates_more(self):
        pts = GaussianPoints(seed=2, sigma_fraction=0.15).generate(1000)
        central = Rect(Point(0.25, 0.25), Point(0.75, 0.75))
        inside = sum(1 for p in pts if central.contains_point(p))
        assert inside / len(pts) > 0.8

    def test_sigma_fraction_validation(self):
        with pytest.raises(ValueError):
            GaussianPoints(sigma_fraction=0.0)

    def test_deterministic(self):
        assert (
            GaussianPoints(seed=3).generate(30)
            == GaussianPoints(seed=3).generate(30)
        )


class TestClustered:
    def test_centers_count(self):
        gen = ClusteredPoints(seed=0, n_clusters=5)
        assert len(gen.centers) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredPoints(n_clusters=0)
        with pytest.raises(ValueError):
            ClusteredPoints(cluster_sigma=0.0)

    def test_points_near_some_center(self):
        gen = ClusteredPoints(seed=1, n_clusters=4, cluster_sigma=0.02)
        pts = gen.generate(300)
        for p in pts:
            nearest = min(c.distance_to(p) for c in gen.centers)
            assert nearest < 0.15  # within a handful of sigmas

    def test_inside_bounds(self):
        pts = ClusteredPoints(seed=2).generate(200)
        unit = Rect.unit(2)
        assert all(unit.contains_point(p) for p in pts)


class TestDiagonal:
    def test_near_diagonal(self):
        pts = DiagonalPoints(seed=0, jitter=0.005).generate(200)
        for p in pts:
            assert abs(p.x - p.y) < 0.05

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            DiagonalPoints(jitter=-0.1)


class TestSegments:
    def test_count_and_distinctness(self):
        segs = RandomSegments(seed=0).generate(100)
        assert len(segs) == 100
        assert len(set(segs)) == 100

    def test_endpoints_inside_bounds(self):
        segs = RandomSegments(seed=1).generate(100)
        unit = Rect.unit(2)
        for s in segs:
            assert unit.contains_point(s.a)
            assert unit.contains_point(s.b)

    def test_length_range(self):
        segs = RandomSegments(seed=2, min_length=0.1, max_length=0.2).generate(100)
        for s in segs:
            assert 0.099 <= s.length <= 0.201

    def test_length_validation(self):
        with pytest.raises(ValueError):
            RandomSegments(min_length=0.3, max_length=0.2)
        with pytest.raises(ValueError):
            RandomSegments(min_length=0.0)

    def test_planar_bounds_required(self):
        with pytest.raises(ValueError):
            RandomSegments(bounds=Rect.unit(3))

    def test_deterministic(self):
        assert (
            RandomSegments(seed=3).generate(20)
            == RandomSegments(seed=3).generate(20)
        )


class TestSampleSizes:
    def test_paper_grid(self):
        """The defaults reproduce the paper's Table 4/5 sizes exactly."""
        assert logarithmic_sample_sizes() == [
            64, 90, 128, 181, 256, 362, 512, 724,
            1024, 1448, 2048, 2896, 4096,
        ]

    def test_power_of_two_entries_quadruple_exactly(self):
        sizes = logarithmic_sample_sizes(64, 4096, 4)
        powers = sizes[::4]
        for a, b in zip(powers, powers[1:]):
            assert b == 4 * a

    def test_validation(self):
        with pytest.raises(ValueError):
            logarithmic_sample_sizes(0, 100)
        with pytest.raises(ValueError):
            logarithmic_sample_sizes(100, 50)
        with pytest.raises(ValueError):
            logarithmic_sample_sizes(64, 4096, 0)

    def test_ratio_spacing(self):
        sizes = logarithmic_sample_sizes(100, 10_000, 2)
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        for r in ratios:
            assert r == pytest.approx(2.0, rel=0.05)

    def test_single_step_doubles_are_quadruples(self):
        assert logarithmic_sample_sizes(10, 700, 1) == [10, 40, 160, 640]


class TestGenerateArray:
    """``generate_array`` must be bit-identical to ``generate`` — the
    pool coordinator writes its output into shared memory in place of
    every worker's scalar generation, so any divergence breaks the
    serial/parallel parity contract."""

    GENERATORS = [
        lambda seed, bounds: UniformPoints(seed=seed, bounds=bounds),
        lambda seed, bounds: GaussianPoints(seed=seed, bounds=bounds),
        lambda seed, bounds: ClusteredPoints(seed=seed, bounds=bounds),
        lambda seed, bounds: DiagonalPoints(seed=seed, bounds=bounds),
    ]

    @pytest.mark.parametrize("factory", GENERATORS)
    def test_bit_identical_to_generate(self, factory):
        bounds = Rect(Point(-1.0, 2.0), Point(3.0, 5.0))
        points = factory(9, bounds).generate(200)
        arr = factory(9, bounds).generate_array(200)
        assert arr.shape == (200, 2)
        assert arr.dtype == np.float64
        expected = np.array([tuple(p) for p in points], dtype=np.float64)
        assert np.array_equal(arr, expected)

    def test_unit_bounds_and_higher_dim(self):
        for dim in (1, 3):
            bounds = Rect.unit(dim)
            points = UniformPoints(seed=4, bounds=bounds).generate(150)
            arr = UniformPoints(seed=4, bounds=bounds).generate_array(150)
            expected = np.array(
                [tuple(p) for p in points], dtype=np.float64
            )
            assert np.array_equal(arr, expected)

    def test_stream_continuation_matches(self):
        # array and scalar draws interleave on one shared RNG stream
        mixed = UniformPoints(seed=7)
        scalar = UniformPoints(seed=7)
        first = mixed.generate_array(60)
        second = mixed.generate(60)
        expect = scalar.generate(120)
        assert np.array_equal(
            first, np.array([tuple(p) for p in expect[:60]])
        )
        assert second == expect[60:]

    def test_zero_points(self):
        arr = UniformPoints(seed=1).generate_array(0)
        assert arr.shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UniformPoints(seed=1).generate_array(-1)
