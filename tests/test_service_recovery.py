"""Crash recovery: torn WALs, checkpoint windows, and a real SIGKILL.

The acceptance bar: **no acknowledged write is ever lost.**  The
in-process tests walk each crash window the write path can leave
behind; the integration test at the bottom SIGKILLs a real server
subprocess mid-load and proves the reopened state contains every
acknowledged insert, and — after idempotently resending the full
trace — a census bit-identical to an unkilled reference.
"""

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.geometry import Point
from repro.quadtree import PRQuadtree
from repro.service import (
    ServiceError,
    WriteAheadLog,
    open_state,
    wal_path_for,
)
from repro.service.server import GENERATION_KEY
from repro.service.wal import OP_DELETE, OP_INSERT
from repro.service.loadgen import ServiceClient
from repro.workloads import UniformPoints


def _fresh_state(tmp_path, n=0, capacity=4):
    """A checkpointed page file + empty WAL, optionally pre-populated
    (the population is inside the checkpoint, not the WAL)."""
    path = tmp_path / "state.pf"
    tree, wal, _ = open_state(path, create=True, capacity=capacity)
    points = UniformPoints(seed=1987).generate(n) if n else []
    for p in points:
        tree.insert(p)
    tree.checkpoint()
    wal.close()
    tree.close()
    return path, points


def _append_wal(path, records, generation=0):
    """Simulate a crash after group commit: records are durable in the
    WAL but the page file never saw a checkpoint."""
    wal, _ = WriteAheadLog.open(wal_path_for(path))
    assert wal.generation == generation
    for op, p in records:
        wal.append(op, p)
    wal.sync()
    wal.close()


class TestCrashWindows:
    def test_replay_after_crash_before_checkpoint(self, tmp_path):
        path, points = _fresh_state(tmp_path, n=50)
        fresh = UniformPoints(seed=3).generate(20)
        _append_wal(
            path,
            [(OP_INSERT, p) for p in fresh]
            + [(OP_DELETE, points[0])],
        )
        tree, wal, replayed = open_state(path)
        try:
            assert replayed == 21
            assert len(tree) == 50 + len(set(fresh)) - 1
            for p in fresh:
                assert tree.contains(p)
            assert not tree.contains(points[0])
        finally:
            wal.close()
            tree.close()

    def test_torn_wal_tail_recovers_to_last_durable_record(self, tmp_path):
        path, _ = _fresh_state(tmp_path, n=10)
        fresh = UniformPoints(seed=5).generate(8)
        _append_wal(path, [(OP_INSERT, p) for p in fresh])
        wal_file = wal_path_for(path)
        raw = wal_file.read_bytes()
        wal_file.write_bytes(raw[:-7])  # crash mid-final-record
        tree, wal, replayed = open_state(path)
        try:
            assert replayed == 7  # everything but the torn record
            for p in fresh[:-1]:
                assert tree.contains(p)
            assert not tree.contains(fresh[-1])
        finally:
            wal.close()
            tree.close()

    def test_crash_between_checkpoint_tempfile_and_rename(self, tmp_path):
        # the checkpoint writes a temp file then os.replace()s it; a
        # kill in between leaves a stray temp next to an untouched old
        # image + same-generation WAL — recovery must replay normally
        path, _ = _fresh_state(tmp_path, n=10)
        fresh = UniformPoints(seed=7).generate(5)
        _append_wal(path, [(OP_INSERT, p) for p in fresh])
        stray = path.parent / (path.name + "XXgarbage.tmp")
        stray.write_bytes(b"\x00" * 512)  # half-written checkpoint image
        tree, wal, replayed = open_state(path)
        try:
            assert replayed == 5
            for p in fresh:
                assert tree.contains(p)
        finally:
            wal.close()
            tree.close()

    def test_stale_wal_after_checkpoint_rename_is_discarded(self, tmp_path):
        # crash AFTER the new image was renamed in but BEFORE the WAL
        # rotated: the WAL's records are already inside the checkpoint
        # and its generation lags the image's — discard, don't replay
        path, _ = _fresh_state(tmp_path, n=10)
        fresh = UniformPoints(seed=9).generate(5)
        _append_wal(path, [(OP_INSERT, p) for p in fresh])
        tree, wal, replayed = open_state(path)
        assert replayed == 5
        # hand-roll the first two checkpoint steps, crash before step 3
        tree.pagefile.update_meta({GENERATION_KEY: 1})
        tree.pool.flush()
        tree.pagefile.checkpoint()
        tree._file.close(checkpoint=False)  # SIGKILL: no clean close
        # wal was left open with generation 0 — a stale log on disk
        tree2, wal2, replayed2 = open_state(path)
        try:
            assert replayed2 == 0  # stale records must not replay twice
            assert wal2.generation == 1  # fresh log at the image's gen
            assert len(tree2) == 10 + 5  # the checkpoint has everything
            for p in fresh:
                assert tree2.contains(p)
        finally:
            wal.close()
            wal2.close()
            tree2.close()

    def test_wal_generation_ahead_of_image_is_corruption(self, tmp_path):
        path, _ = _fresh_state(tmp_path, n=5)
        WriteAheadLog.create(wal_path_for(path), 7, 2).close()
        with pytest.raises(ServiceError):
            open_state(path)

    def test_missing_wal_gets_recreated_at_image_generation(self, tmp_path):
        path, _ = _fresh_state(tmp_path, n=5)
        wal_path_for(path).unlink()
        tree, wal, replayed = open_state(path)
        try:
            assert replayed == 0
            assert wal.generation == 0
            assert len(tree) == 5
        finally:
            wal.close()
            tree.close()

    def test_wal_dim_mismatch_refused(self, tmp_path):
        path, _ = _fresh_state(tmp_path, n=5)
        WriteAheadLog.create(wal_path_for(path), 0, 3).close()
        with pytest.raises(ServiceError):
            open_state(path)


class TestSigkillIntegration:
    """Kill -9 a real server mid-load; acknowledged writes survive."""

    TOTAL = 600
    KILL_AFTER = 200  # acks received before the server dies
    CHECKPOINT_EVERY = 90  # several checkpoint/rotation cycles pre-kill

    def _spawn_server(self, path):
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "start", str(path),
             "--port", "0",
             "--checkpoint-every", str(self.CHECKPOINT_EVERY)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        line = proc.stdout.readline()
        if "serving" not in line:
            proc.kill()
            pytest.fail(
                f"server failed to start: {line!r} "
                f"{proc.stderr.read()[:2000]!r}"
            )
        address = line.split(" on ", 1)[1].split(" ", 1)[0]
        host, port = address.rsplit(":", 1)
        return proc, host, int(port)

    def test_acknowledged_inserts_survive_sigkill(self, tmp_path):
        path = tmp_path / "state.pf"
        points = UniformPoints(seed=42).generate(self.TOTAL)
        proc, host, port = self._spawn_server(path)
        acked = []
        try:
            async def drive():
                client = await ServiceClient.connect(host, port)
                pending = {}

                def harvest():
                    for j in [k for k, (_, f) in pending.items()
                              if f.done()]:
                        q, f = pending.pop(j)
                        if f.result().get("ok"):
                            acked.append(q)

                try:
                    for i, p in enumerate(points):
                        future = await client.submit(
                            "insert", point=list(p.coords)
                        )
                        pending[i] = (p, future)
                        if len(pending) >= 64:
                            # bound the pipeline so acks actually flow
                            # while we are still mid-trace
                            oldest = min(pending)
                            await asyncio.wait_for(
                                pending[oldest][1], timeout=30
                            )
                        harvest()
                        if len(acked) >= self.KILL_AFTER:
                            proc.send_signal(signal.SIGKILL)
                            break
                    # the kill races in-flight acks; harvest stragglers
                    for q, f in pending.values():
                        try:
                            response = await asyncio.wait_for(f, timeout=10)
                            if response.get("ok"):
                                acked.append(q)
                        except Exception:
                            break  # connection died with the server
                finally:
                    await client.close()

            asyncio.run(drive())
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        assert len(acked) >= self.KILL_AFTER
        assert len(acked) < self.TOTAL  # the kill really was mid-load

        # restart: WAL replay on top of the last checkpoint must
        # resurrect every acknowledged insert
        tree, wal, _ = open_state(path)
        try:
            for p in acked:
                assert tree.contains(p), \
                    f"acknowledged insert {p} lost by the crash"
            # idempotently resend the full trace; the census must then
            # match an unkilled reference that saw every point once
            for p in points:
                tree.insert(p)
            reference = PRQuadtree(capacity=tree.capacity)
            reference.insert_many(points)
            assert tree.occupancy_census() == reference.occupancy_census()
            assert tree.depth_census() == reference.depth_census()
            assert len(tree) == len(reference)
        finally:
            wal.close()
            tree.close()
