"""Slotted-page layout: slots, tombstones, compaction, full pages."""

import pytest

from repro.storage.page import (
    HEADER_SIZE,
    PageFullError,
    SLOT_SIZE,
    SlottedPage,
)


class TestBasics:
    def test_empty_page(self):
        page = SlottedPage.empty(128)
        assert page.size == 128
        assert page.slot_count == 0
        assert page.record_count == 0
        assert page.free_space == 128 - HEADER_SIZE

    def test_insert_get_round_trip(self):
        page = SlottedPage.empty(128)
        sid = page.insert(b"hello")
        assert sid == 0
        assert page.get(0) == b"hello"
        assert page.record_count == 1

    def test_slot_ids_are_sequential(self):
        page = SlottedPage.empty(256)
        sids = [page.insert(bytes([i]) * 4) for i in range(5)]
        assert sids == [0, 1, 2, 3, 4]
        assert [r for _, r in page.records()] == [
            bytes([i]) * 4 for i in range(5)
        ]

    def test_payload_round_trips_through_bytes(self):
        page = SlottedPage.empty(128)
        page.insert(b"alpha")
        page.insert(b"beta")
        clone = SlottedPage(bytearray(page.payload))
        assert list(clone.records()) == list(page.records())

    def test_variable_length_records(self):
        page = SlottedPage.empty(256)
        a = page.insert(b"x")
        b = page.insert(b"y" * 40)
        assert page.get(a) == b"x"
        assert page.get(b) == b"y" * 40

    def test_too_small_payload_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage(bytearray(HEADER_SIZE))


class TestDelete:
    def test_delete_tombstones(self):
        page = SlottedPage.empty(128)
        page.insert(b"a")
        page.insert(b"b")
        page.delete(0)
        assert page.record_count == 1
        assert page.slot_count == 2  # slot survives as a tombstone
        with pytest.raises(KeyError):
            page.get(0)
        assert page.get(1) == b"b"

    def test_delete_twice_raises(self):
        page = SlottedPage.empty(128)
        page.insert(b"a")
        page.delete(0)
        with pytest.raises(KeyError):
            page.delete(0)

    def test_bad_slot_raises(self):
        page = SlottedPage.empty(128)
        with pytest.raises(IndexError):
            page.get(0)
        with pytest.raises(IndexError):
            page.delete(3)

    def test_tombstone_slot_is_reused(self):
        page = SlottedPage.empty(128)
        page.insert(b"a")
        page.insert(b"b")
        page.delete(0)
        assert page.insert(b"c") == 0
        assert page.get(0) == b"c"

    def test_surviving_slot_ids_stable(self):
        page = SlottedPage.empty(256)
        for i in range(5):
            page.insert(bytes([65 + i]) * 3)
        page.delete(1)
        page.delete(3)
        assert page.get(0) == b"AAA"
        assert page.get(2) == b"CCC"
        assert page.get(4) == b"EEE"


class TestCompaction:
    def test_insert_compacts_dead_space(self):
        page = SlottedPage.empty(64)
        big = 64 - HEADER_SIZE - SLOT_SIZE - 4
        page.insert(b"z" * big)
        page.delete(0)
        # without compaction the heap is exhausted; reuse must succeed
        assert page.insert(b"w" * big) == 0
        assert page.get(0) == b"w" * big

    def test_full_page_raises(self):
        page = SlottedPage.empty(64)
        page.insert(b"z" * (64 - HEADER_SIZE - SLOT_SIZE))
        assert page.free_space == 0
        with pytest.raises(PageFullError):
            page.insert(b"x")

    def test_compaction_preserves_slot_ids(self):
        page = SlottedPage.empty(128)
        for i in range(4):
            page.insert(bytes([65 + i]) * 8)
        page.delete(1)
        page.delete(2)
        # force compaction with an insert bigger than the free gap
        gap = page.free_space
        page.insert(b"Q" * (gap + 8))
        assert page.get(0) == b"A" * 8
        assert page.get(3) == b"D" * 8


class TestReplace:
    def test_replace_same_length_in_place(self):
        page = SlottedPage.empty(128)
        page.insert(b"aaaa")
        page.replace(0, b"bbbb")
        assert page.get(0) == b"bbbb"

    def test_replace_different_length(self):
        page = SlottedPage.empty(128)
        page.insert(b"aaaa")
        page.insert(b"cc")
        page.replace(0, b"bbbbbbbb")
        assert page.get(0) == b"bbbbbbbb"
        assert page.get(1) == b"cc"

    def test_replace_rolls_back_when_full(self):
        page = SlottedPage.empty(64)
        page.insert(b"a" * 16)
        filler = page.free_space - SLOT_SIZE
        page.insert(b"f" * filler)
        with pytest.raises(PageFullError):
            page.replace(0, b"b" * 40)
        assert page.get(0) == b"a" * 16  # unchanged

    def test_replace_deleted_raises(self):
        page = SlottedPage.empty(128)
        page.insert(b"a")
        page.delete(0)
        with pytest.raises(KeyError):
            page.replace(0, b"b")
