"""Unit and property tests for the grid file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.gridfile import GridFile
from repro.workloads import UniformPoints

unit_coord = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
points = st.builds(Point, unit_coord, unit_coord)
point_lists = st.lists(points, min_size=0, max_size=60, unique=True)


def build(pts, capacity=2):
    grid = GridFile(bucket_capacity=capacity)
    grid.insert_many(pts)
    return grid


class TestBasics:
    def test_empty(self):
        grid = GridFile()
        assert len(grid) == 0
        assert grid.bucket_count() == 1
        assert grid.directory_size() == 1
        assert grid.scales() == [[], []]
        grid.validate()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            GridFile(bucket_capacity=0)

    def test_insert_and_contains(self):
        grid = GridFile(bucket_capacity=2)
        assert grid.insert(Point(0.3, 0.3))
        assert Point(0.3, 0.3) in grid
        assert Point(0.4, 0.4) not in grid

    def test_duplicate_rejected(self):
        grid = GridFile()
        assert grid.insert(Point(0.5, 0.5))
        assert not grid.insert(Point(0.5, 0.5))
        assert len(grid) == 1

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            GridFile().insert(Point(1.5, 0.5))

    def test_overflow_refines_a_scale(self):
        grid = GridFile(bucket_capacity=1)
        grid.insert(Point(0.1, 0.5))
        grid.insert(Point(0.9, 0.5))
        scales = grid.scales()
        assert sum(len(s) for s in scales) >= 1
        assert grid.bucket_count() == 2
        grid.validate()

    def test_cell_rect_covers_scales(self):
        grid = build(UniformPoints(seed=0).generate(100), capacity=2)
        # every cell rect is inside the bounds
        shape_x = len(grid.scales()[0]) + 1
        shape_y = len(grid.scales()[1]) + 1
        for i in range(shape_x):
            for j in range(shape_y):
                rect = grid.cell_rect((i, j))
                assert grid.bounds.contains_rect(rect)

    def test_two_disk_access_property(self):
        """Lookup inspects exactly one cell and one bucket — the grid
        file's headline guarantee; here we just verify correctness on a
        large instance."""
        pts = UniformPoints(seed=1).generate(800)
        grid = build(pts, capacity=4)
        for p in pts[::7]:
            assert grid.contains(p)
        grid.validate()


class TestDelete:
    def test_delete_present(self):
        pts = UniformPoints(seed=2).generate(50)
        grid = build(pts, capacity=3)
        assert grid.delete(pts[0])
        assert pts[0] not in grid
        assert len(grid) == 49
        grid.validate()

    def test_delete_absent(self):
        grid = build([Point(0.5, 0.5)])
        assert not grid.delete(Point(0.1, 0.1))
        assert not grid.delete(Point(1.5, 0.5))

    def test_delete_all_leaves_valid_structure(self):
        pts = UniformPoints(seed=3).generate(120)
        grid = build(pts, capacity=2)
        for p in pts:
            assert grid.delete(p)
            grid.validate()
        assert len(grid) == 0


class TestRangeSearch:
    def test_range_matches_brute_force(self):
        pts = UniformPoints(seed=4).generate(300)
        grid = build(pts, capacity=4)
        query = Rect(Point(0.2, 0.3), Point(0.7, 0.8))
        assert set(grid.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    def test_range_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GridFile().range_search(Rect.unit(3))

    def test_range_half_open(self):
        grid = build([Point(0.5, 0.5)], capacity=2)
        assert grid.range_search(Rect(Point(0, 0), Point(0.5, 0.5))) == []


class TestCensus:
    def test_census_totals(self):
        pts = UniformPoints(seed=5).generate(400)
        grid = build(pts, capacity=4)
        census = grid.occupancy_census()
        assert census.total_items == 400
        assert census.total_nodes == grid.bucket_count()

    def test_average_occupancy(self):
        pts = UniformPoints(seed=6).generate(200)
        grid = build(pts, capacity=4)
        assert grid.average_occupancy() == pytest.approx(
            200 / grid.bucket_count()
        )


class TestProperties:
    @given(point_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_membership_and_invariants(self, pts, capacity):
        grid = build(pts, capacity=capacity)
        assert len(grid) == len(pts)
        for p in pts:
            assert p in grid
        grid.validate()

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_points_round_trip(self, pts):
        grid = build(pts, capacity=3)
        assert set(grid.points()) == set(pts)

    @given(point_lists, st.data())
    @settings(max_examples=30, deadline=None)
    def test_range_search_property(self, pts, data):
        grid = build(pts, capacity=2)
        x0 = data.draw(unit_coord)
        y0 = data.draw(unit_coord)
        x1 = data.draw(st.floats(min_value=x0 + 1e-6, max_value=1.0))
        y1 = data.draw(st.floats(min_value=y0 + 1e-6, max_value=1.0))
        query = Rect(Point(x0, y0), Point(x1, y1))
        assert set(grid.range_search(query)) == {
            p for p in pts if query.contains_point(p)
        }

    @given(point_lists)
    @settings(max_examples=25, deadline=None)
    def test_insert_delete_round_trip(self, pts):
        grid = build(pts, capacity=2)
        for p in pts:
            assert grid.delete(p)
        assert len(grid) == 0
        grid.validate()
