"""Cross-run analytics: median+MAD regression gates on a synthetic
20-run history, trend rendering, drift/occupancy reports, and
DB-backed run diffing."""

import pytest

from repro.rundb import analyzer
from repro.rundb.analyzer import (
    MIN_HISTORY,
    Trend,
    TrendPoint,
    diff_runs,
    drift_report,
    gauge_trend,
    latest_run_pair,
    mad,
    median,
    occupancy_report,
    span_trend,
    stage_trend,
)
from repro.rundb.repository import RunDB

#: Deterministic per-run jitter (a few percent) around the 100ms base.
JITTER = [0.0, 0.003, -0.002, 0.004, -0.003, 0.001, -0.004, 0.002,
          -0.001, 0.0035, -0.0025, 0.0015, -0.0035, 0.0045, -0.0015,
          0.0005, -0.0045, 0.0025, -0.0005, 0.003]


def _seed_history(db, walls, stage="census", profile="smoke"):
    """One bench run per wall time, oldest first."""
    ids = []
    for i, wall in enumerate(walls):
        run_id = db.begin_run(
            "bench", label=f"run-{i}", profile=profile,
            created_unix=1000.0 + i,
        )
        db.record_stage(run_id, stage, wall, payload={"speedup": 2.0})
        db.finish_run(run_id, wall_s=wall)
        ids.append(run_id)
    return ids


@pytest.fixture
def steady_db(tmp_path):
    """Twenty healthy runs of a ~100ms census stage."""
    db = RunDB(tmp_path / "db.sqlite")
    _seed_history(db, [0.1 + j for j in JITTER])
    yield db
    db.close()


class TestStatistics:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0


class TestTrendGates:
    def _trend(self, values, **kwargs):
        points = [
            TrendPoint(run_id=i + 1, created_unix=float(i), value=v)
            for i, v in enumerate(values)
        ]
        return Trend(name="t", points=points, **kwargs)

    def test_not_armed_without_history(self):
        assert not self._trend([0.1]).regression
        assert not self._trend([0.1, 0.5]).regression
        assert self._trend([0.1] * MIN_HISTORY + [10.0]).armed

    def test_steady_history_is_ok(self):
        assert not self._trend([0.1 + j for j in JITTER]).regression

    def test_both_gates_required(self):
        # clears the multiplicative gate but sits inside the dispersion
        # of a noisy history -> not a regression
        noisy = [0.1, 0.3, 0.1, 0.3, 0.1, 0.3, 0.35]
        assert not self._trend(noisy, mad_k=3.0).regression
        # a tight history makes the same ratio fire
        tight = [0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.35]
        assert self._trend(tight).regression

    def test_min_value_floor(self):
        tiny = self._trend([1e-5, 1e-5, 1e-5, 9e-4], min_value=1e-3)
        assert not tiny.regression

    def test_render_shapes(self):
        text = self._trend([0.1, 0.1, 0.1, 0.5]).render()
        assert "REGRESSION" in text
        assert "4 run(s)" in text
        short = self._trend([0.1, 0.2]).render()
        assert "insufficient history" in short
        assert "(no data)" in Trend(name="empty").render()


class TestStageTrend:
    def test_twenty_run_fixture_is_healthy(self, steady_db):
        trend = stage_trend(steady_db, "census")
        assert len(trend.points) == 20
        assert trend.armed
        assert not trend.regression
        assert "verdict: ok" in trend.render()

    def test_injected_slowdown_flags(self, steady_db):
        run_id = steady_db.begin_run(
            "bench", label="slow", profile="smoke", created_unix=2000.0,
        )
        steady_db.record_stage(run_id, "census", 0.3)  # 3x the median
        trend = stage_trend(steady_db, "census")
        assert trend.regression
        assert trend.latest.value == pytest.approx(0.3)
        assert "verdict: REGRESSION" in trend.render()

    def test_payload_metric_and_profile_filter(self, steady_db):
        _seed_history(steady_db, [9.9], profile="full")
        trend = stage_trend(steady_db, "census", profile="smoke")
        assert len(trend.points) == 20
        speedup = stage_trend(steady_db, "census", metric="speedup")
        assert speedup.unit == ""
        assert all(p.value == 2.0 for p in speedup.points[:-1])


class TestOtherTrends:
    def test_span_trend(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            for i, mean in enumerate([0.01, 0.01, 0.01, 0.05]):
                run_id = db.begin_run("bench", created_unix=float(i))
                db.record_trace(run_id, "census", {
                    "spans": {"kernel.census": {
                        "count": 4, "total_s": mean * 4, "mean_s": mean,
                        "children": {},
                    }},
                })
            trend = span_trend(db, "kernel.census")
            assert trend.regression

    def test_gauge_trend_no_floor(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            for i, value in enumerate([0.01, 0.012, 0.011, 0.3]):
                run_id = db.begin_run("serve", created_unix=float(i))
                db.record_trace(run_id, "", {
                    "gauges": {"planner.drift": {
                        "last": value, "mean": value, "count": 1,
                    }},
                })
            trend = gauge_trend(db, "planner.drift")
            assert trend.min_value == 0.0
            assert trend.regression


class TestReports:
    def test_drift_report(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            assert "no serve runs" in drift_report(db)
            run_id = db.begin_run("serve", created_unix=1.0)
            db.record_drift(run_id, 0, {
                "n_points": 900, "actual_pages": 70, "page_error": 0.4,
                "occupancy_error": 0.1, "armed": True, "alarm": True,
            })
            text = drift_report(db)
            assert "alarms over time" in text
            assert "total: 1 alarm(s) across 1 run(s)" in text

    def test_occupancy_report(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            assert "no trial results" in occupancy_report(db)
            run_id = db.begin_run("session")
            db.record_trials(run_id, [{
                "spec": {"capacity": 4, "n_points": 256, "trials": 3,
                         "seed": 1, "generator": "uniform"},
                "cache_key": "k", "engine": "object", "workers": 1,
                "cache_hit": False, "wall_s": 0.1, "trials": 3,
                "mean_occupancy": 1.75, "count_sums": [],
            }])
            text = occupancy_report(db)
            assert "256" in text and "1.75" in text


class TestDiff:
    def _run_with_spans(self, db, means, created):
        run_id = db.begin_run("bench", profile="smoke",
                              created_unix=created)
        db.record_trace(run_id, "census", {
            "spans": {
                name: {"count": 2, "total_s": mean * 2, "mean_s": mean,
                       "children": {}}
                for name, mean in means.items()
            },
        })
        db.record_stage(run_id, "census", sum(means.values()))
        return run_id

    def test_diff_runs_detects_span_regression(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            old = self._run_with_spans(
                db, {"kernel.census": 0.01, "kernel.gone": 0.01}, 1.0
            )
            new = self._run_with_spans(
                db, {"kernel.census": 0.05, "kernel.new": 0.01}, 2.0
            )
            diff, stage_lines = diff_runs(db, old, new)
            assert not diff.ok
            assert [d.path for d in diff.regressions] == [
                "census:kernel.census"
            ]
            assert diff.added == ["census:kernel.new"]
            assert diff.removed == ["census:kernel.gone"]
            assert any("REGRESSION" in line for line in stage_lines)

    def test_min_mean_floor_skips_micro_spans(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            old = self._run_with_spans(db, {"tiny": 1e-6}, 1.0)
            new = self._run_with_spans(db, {"tiny": 9e-6}, 2.0)
            diff, _ = diff_runs(db, old, new)
            assert diff.ok
            assert diff.compared == 1

    def test_latest_run_pair_prefers_profile(self, tmp_path):
        with RunDB(tmp_path / "db.sqlite") as db:
            assert latest_run_pair(db) is None
            a = db.begin_run("bench", profile="smoke", created_unix=1.0)
            assert latest_run_pair(db) is None
            b = db.begin_run("bench", profile="full", created_unix=2.0)
            c = db.begin_run("bench", profile="smoke", created_unix=3.0)
            assert latest_run_pair(db) == (a, c)
            d = db.begin_run("bench", profile="gauss", created_unix=4.0)
            # no second 'gauss' run: falls back to the newest two
            assert latest_run_pair(db) == (c, d)
