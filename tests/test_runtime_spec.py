"""Unit tests for repro.runtime.spec — frozen experiment descriptions."""

import pickle

import pytest

from repro.geometry import Point, Rect
from repro.runtime import (
    ExperimentSpec,
    known_generators,
    rect_to_tuple,
    register_generator,
    tuple_to_rect,
)
from repro.runtime import spec as spec_module
from repro.workloads import GaussianPoints, UniformPoints


class TestValidation:
    def test_defaults(self):
        spec = ExperimentSpec(capacity=4)
        assert spec.n_points == 1000
        assert spec.trials == 10
        assert spec.generator == "uniform"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"capacity": 2, "n_points": -1},
            {"capacity": 2, "trials": 0},
            {"capacity": 2, "generator": "nope"},
            {"capacity": 2, "max_depth": -1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentSpec(**kwargs)

    def test_params_normalized(self):
        a = ExperimentSpec(
            capacity=2, generator_params=(("b", 1), ("a", 2))
        )
        b = ExperimentSpec(
            capacity=2, generator_params=(("a", 2), ("b", 1))
        )
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_hashable_and_picklable(self):
        spec = ExperimentSpec(capacity=3, bounds=((0.0, 0.0), (1.0, 1.0)))
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))


class TestSeedContract:
    def test_trial_seed_is_seed_plus_t(self):
        spec = ExperimentSpec(capacity=2, seed=100, trials=5)
        assert [spec.trial_seed(t) for t in range(5)] == [
            100, 101, 102, 103, 104
        ]

    def test_trial_seed_bounds_checked(self):
        spec = ExperimentSpec(capacity=2, trials=3)
        with pytest.raises(ValueError):
            spec.trial_seed(3)
        with pytest.raises(ValueError):
            spec.trial_seed(-1)


class TestResolution:
    def test_make_generator_matches_manual_construction(self):
        spec = ExperimentSpec(capacity=2, seed=9, generator="uniform")
        manual = UniformPoints(seed=9).generate(50)
        assert spec.make_generator(0).generate(50) == manual

    def test_gaussian_resolves(self):
        spec = ExperimentSpec(capacity=2, seed=4, generator="gaussian")
        generator = spec.make_generator(1)
        assert isinstance(generator, GaussianPoints)
        assert generator.generate(20) == GaussianPoints(seed=5).generate(20)

    def test_generator_params_forwarded(self):
        spec = ExperimentSpec(
            capacity=2, seed=0, generator="gaussian",
            generator_params=(("sigma_fraction", 0.25),),
        )
        expected = GaussianPoints(seed=0, sigma_fraction=0.25).generate(30)
        assert spec.make_generator(0).generate(30) == expected

    def test_bounds_rect_roundtrip(self):
        rect = Rect(Point(-1.0, 0.0), Point(2.0, 3.0))
        spec = ExperimentSpec(capacity=2, bounds=rect_to_tuple(rect))
        back = spec.bounds_rect()
        assert back.lo == rect.lo and back.hi == rect.hi

    def test_generator_bounds_default_to_tree_bounds(self):
        rect = Rect(Point(0.0, 0.0), Point(4.0, 4.0))
        spec = ExperimentSpec(capacity=2, bounds=rect_to_tuple(rect))
        assert spec.make_generator(0).bounds.hi == rect.hi

    def test_none_bounds_roundtrip(self):
        assert rect_to_tuple(None) is None
        assert tuple_to_rect(None) is None

    def test_register_generator(self):
        class Marked(UniformPoints):
            pass

        register_generator("marked-test", Marked)
        try:
            spec = ExperimentSpec(capacity=2, generator="marked-test")
            assert isinstance(spec.make_generator(0), Marked)
            assert "marked-test" in known_generators()
        finally:
            del spec_module._GENERATORS["marked-test"]

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_generator("", UniformPoints)

    def test_with_trials(self):
        spec = ExperimentSpec(capacity=2, trials=10)
        assert spec.with_trials(3).trials == 3
        assert spec.trials == 10


class TestCacheKey:
    BASE = dict(
        capacity=4, n_points=500, trials=7, seed=11, generator="uniform",
        max_depth=6, bounds=((0.0, 0.0), (1.0, 1.0)),
        collect_depth=True, collect_area=True,
    )

    def test_stable_across_instances(self):
        assert (
            ExperimentSpec(**self.BASE).cache_key()
            == ExperimentSpec(**self.BASE).cache_key()
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("capacity", 5),
            ("n_points", 501),
            ("trials", 8),
            ("seed", 12),
            ("generator", "gaussian"),
            ("max_depth", None),
            ("bounds", ((0.0, 0.0), (2.0, 2.0))),
            ("collect_depth", False),
            ("collect_area", False),
        ],
    )
    def test_every_field_feeds_the_key(self, field, value):
        changed = dict(self.BASE, **{field: value})
        assert (
            ExperimentSpec(**self.BASE).cache_key()
            != ExperimentSpec(**changed).cache_key()
        )

    def test_key_covers_schema_version(self, monkeypatch):
        before = ExperimentSpec(**self.BASE).cache_key()
        monkeypatch.setattr(spec_module, "SCHEMA_VERSION", 99_999)
        assert ExperimentSpec(**self.BASE).cache_key() != before


class TestSerialization:
    def test_roundtrip(self):
        spec = ExperimentSpec(
            capacity=3, n_points=200, trials=4, seed=2,
            generator="gaussian",
            generator_params=(("sigma_fraction", 0.3),),
            max_depth=5, bounds=((0.0, 0.0), (1.0, 1.0)),
            generator_bounds=((0.0, 0.0), (2.0, 2.0)),
            collect_depth=True, collect_area=True,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_ready(self):
        import json

        spec = ExperimentSpec(capacity=2, bounds=((0.0, 0.0), (1.0, 1.0)))
        assert ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec
