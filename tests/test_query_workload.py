"""Query workloads, the sweep/law experiments, and the ``repro query``
CLI (including its run-database recording)."""

import json

import numpy as np
import pytest

from repro.experiments.queries import (
    format_partial_match_law,
    format_query_sweep,
    point_quadtree_exponent,
    pr_quadtree_exponent,
    run_partial_match_law,
    run_query_sweep,
)
from repro.experiments.query_cli import main as query_main
from repro.geometry import Rect
from repro.workloads import QueryWorkload


class TestQueryWorkload:
    def test_deterministic_and_order_independent(self):
        a = QueryWorkload(dim=2, seed=9)
        b = QueryWorkload(dim=2, seed=9)
        # draw in different orders: batches must still be bit-equal
        rects_a = a.range_rects(10)
        knn_a = a.knn_points(10)
        knn_b = b.knn_points(10)
        rects_b = b.range_rects(10)
        assert [(tuple(r.lo), tuple(r.hi)) for r in rects_a] == \
            [(tuple(r.lo), tuple(r.hi)) for r in rects_b]
        assert np.array_equal(knn_a, knn_b)
        assert not np.array_equal(
            knn_a, QueryWorkload(dim=2, seed=10).knn_points(10)
        )

    def test_rects_inside_bounds(self):
        workload = QueryWorkload(dim=3, seed=1)
        for rect in workload.range_rects(50, side=0.4):
            assert rect.dim == 3
            for i in range(3):
                assert 0.0 <= rect.lo[i] < rect.hi[i] <= 1.0

    def test_pm_values_span_axes(self):
        workload = QueryWorkload(dim=3, seed=2)
        vals = workload.partial_match_values(20, (2, 0))
        assert vals.shape == (20, 2)
        assert ((vals >= 0.0) & (vals < 1.0)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(dim=0)
        with pytest.raises(ValueError):
            QueryWorkload(dim=2, bounds=Rect.unit(3))
        workload = QueryWorkload(dim=2)
        with pytest.raises(ValueError):
            workload.range_rects(-1)
        with pytest.raises(ValueError):
            workload.range_rects(5, side=0.0)
        with pytest.raises(ValueError):
            workload.partial_match_values(5, ())
        with pytest.raises(ValueError):
            workload.partial_match_values(5, (4,))


class TestQuerySweep:
    def test_sweep_verifies_parity(self):
        report = run_query_sweep(
            n=300, capacity=4, n_queries=16, k=3, seed=21
        )
        assert report.verified
        ops = {(r.op, r.engine) for r in report.results}
        assert ops == {
            (op, engine)
            for op in ("range", "knn", "partial_match")
            for engine in ("object", "vector")
        }
        for op in ("range", "knn", "partial_match"):
            assert report.speedup(op) is not None
        text = format_query_sweep(report)
        assert "parity: verified bit-identical" in text
        payload = report.to_dict()
        assert payload["ops"]["range"]["object"]["hits"] == \
            payload["ops"]["range"]["vector"]["hits"]

    def test_single_engine(self):
        report = run_query_sweep(
            n=200, capacity=4, n_queries=8, engines=("vector",),
            verify=False,
        )
        assert not report.verified
        assert report.build_tree_s is None
        assert {r.engine for r in report.results} == {"vector"}
        assert report.speedup("range") is None


class TestPartialMatchLaw:
    def test_theory_exponents(self):
        # Curien-Joseph / Flajolet-Puech d=2, s=1: (sqrt(17)-3)/2
        assert point_quadtree_exponent(2, 1) == pytest.approx(
            (17 ** 0.5 - 3) / 2, abs=1e-9
        )
        assert pr_quadtree_exponent(2, 1) == 0.5
        assert pr_quadtree_exponent(3, 1) == pytest.approx(2 / 3)
        # the point-tree exponent always dominates the trie's
        for dim in (2, 3, 4):
            for s in range(1, dim):
                assert point_quadtree_exponent(dim, s) > \
                    pr_quadtree_exponent(dim, s)
        with pytest.raises(ValueError):
            point_quadtree_exponent(2, 0)
        with pytest.raises(ValueError):
            pr_quadtree_exponent(2, 2)

    def test_fit_tracks_trie_theory(self):
        fits = run_partial_match_law(
            dims=(2,), capacities=(4,),
            sizes=(500, 1000, 2000, 4000), n_queries=64, trials=2,
            seed=7,
        )
        [fit] = fits
        assert fit.beta_pr == 0.5
        # generous envelope: small n, but the slope should be in the
        # right neighborhood and below the point-quadtree exponent + slack
        assert 0.3 < fit.beta_hat < 0.7
        assert len(fit.mean_nodes) == 4
        assert fit.mean_nodes[-1] > fit.mean_nodes[0]
        text = format_partial_match_law(fits)
        assert "beta_hat" in text and "0.5616" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_partial_match_law(dims=(2,), sizes=(1000,))
        with pytest.raises(ValueError):
            run_partial_match_law(dims=(1,))
        with pytest.raises(ValueError):
            run_partial_match_law(dims=(2,), trials=0)


class TestQueryCli:
    def test_run_writes_json_and_records(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.delenv("REPRO_NO_DB", raising=False)
        db = tmp_path / "runs.sqlite"
        out = tmp_path / "report.json"
        status = query_main([
            "run", "--n", "300", "--queries", "8", "--k", "2",
            "--json", str(out), "--db", str(db),
        ])
        assert status == 0
        assert "parity: verified bit-identical" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["verified"]
        assert payload["ops"]["range"]["speedup"] > 0

        from repro.rundb import RunDB

        with RunDB(db) as rundb:
            runs = rundb.runs(kind="query")
            assert len(runs) == 1
            detail = rundb.run(int(runs[0]["id"]))
            names = {s["stage"] for s in detail["stages"]}
            assert "query.range.vector.n300" in names
            assert "query.partial_match.object.n300" in names

    def test_pm_law_cli(self, tmp_path, capsys):
        out = tmp_path / "fits.json"
        status = query_main([
            "pm-law", "--dims", "2", "--capacities", "4",
            "--sizes", "400,800,1600", "--queries", "32",
            "--trials", "1", "--json", str(out), "--no-db",
        ])
        assert status == 0
        assert "beta_hat" in capsys.readouterr().out
        [fit] = json.loads(out.read_text())
        assert fit["beta_pr"] == 0.5

    def test_bad_args(self, capsys):
        assert query_main(["run", "--n", "100", "--pm-axes", "9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_routes_through_repro_main(self, capsys):
        from repro.__main__ import main as repro_main

        status = repro_main([
            "query", "run", "--n", "200", "--queries", "4",
            "--engine", "vector", "--no-db",
        ])
        assert status == 0
        assert "query sweep" in capsys.readouterr().out
