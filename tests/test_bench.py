"""The pinned perf suite: snapshot shape, stage sanity, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_VERSION,
    PROFILES,
    environment,
    main,
    render_traces,
    run_suite,
    summarize,
    trace_bundle_path,
    write_snapshot,
    write_trace_bundle,
)

STAGES = (
    "build", "census", "parallel", "warm_cache", "storage", "kernels",
    "queries", "serve",
)


@pytest.fixture(scope="module")
def snapshot():
    return run_suite(smoke=True, workers=2)


class TestSuite:
    def test_snapshot_shape(self, snapshot):
        assert snapshot["bench_version"] == BENCH_VERSION
        assert snapshot["profile"] == "smoke"
        assert set(snapshot["stages"]) == set(STAGES)
        assert snapshot["total_wall_s"] > 0

    def test_env_metadata(self, snapshot):
        env = snapshot["env"]
        assert env["python"]
        assert env["platform"]
        assert env["cpu_count"] >= 1

    def test_build_stage(self, snapshot):
        build = snapshot["stages"]["build"]
        assert build["trees_per_s"] > 0
        assert build["splits"] > 0
        assert build["max_depth"] >= 1
        trace = build["trace"]
        assert "runtime.execute" in trace["spans"]
        assert trace["counters"]["tree.built"] == build["params"]["trials"]

    def test_census_stage(self, snapshot):
        census = snapshot["stages"]["census"]
        assert census["censuses_per_s"] > 0
        assert census["leaves"] > 0
        spans = census["trace"]["spans"]
        assert spans["census.occupancy"]["count"] == \
            census["params"]["repeats"]

    def test_parallel_stage(self, snapshot):
        parallel = snapshot["stages"]["parallel"]
        assert parallel["serial_s"] > 0
        assert parallel["pool_s"] > 0
        assert parallel["speedup"] > 0

    def test_warm_cache_stage(self, snapshot):
        warm = snapshot["stages"]["warm_cache"]
        assert warm["cache_misses"] == 1
        assert warm["cache_hits"] == 1
        assert warm["warm_s"] < warm["cold_s"]
        # the bench cleaned its throwaway cache dir behind itself
        assert warm["files_removed"] >= 1

    def test_storage_stage(self, snapshot):
        storage = snapshot["stages"]["storage"]
        assert storage["inserts_per_s"] > 0
        assert storage["pages"] > 0
        assert storage["file_bytes"] > 0
        # the pool held the whole tree, so the warm pass never misses
        assert storage["warm_hit_rate"] == 1.0
        assert storage["cold_misses"] > 0
        trace = storage["trace"]
        assert "storage.checkpoint" in trace["spans"]
        assert trace["counters"]["storage.page_writes"] > 0

    def test_kernels_stage(self, snapshot):
        kernels = snapshot["stages"]["kernels"]
        sizes = kernels["params"]["sizes"]
        assert set(kernels["runs"]) == {str(size) for size in sizes}
        assert kernels["parity"] is True
        for run in kernels["runs"].values():
            assert run["parity"] is True
            assert run["object_s"] > 0
            assert run["vector_s"] > 0
            assert run["leaves"] > 0
        assert "kernel.census" in kernels["trace"]["spans"]

    def test_storage_stage_bulk_load(self, snapshot):
        storage = snapshot["stages"]["storage"]
        assert storage["bulk_s"] > 0
        assert storage["bulk_speedup"] > 0
        assert storage["bulk_parity"] is True

    def test_queries_stage(self, snapshot):
        queries = snapshot["stages"]["queries"]
        sizes = queries["params"]["sizes"]
        assert set(queries["runs"]) == {str(size) for size in sizes}
        assert queries["parity"] is True
        for run in queries["runs"].values():
            assert run["verified"] is True
            assert run["build_tree_s"] > 0
            assert run["build_kernel_s"] > 0
            for op in ("range", "knn", "partial_match"):
                entry = run["ops"][op]
                assert entry["speedup"] > 0
                assert entry["object"]["wall_s"] > 0
                assert entry["vector"]["wall_s"] > 0
                assert entry["object"]["hits"] == entry["vector"]["hits"]
        assert queries["range_speedup"] > 0
        assert queries["knn_speedup"] > 0
        assert queries["pm_speedup"] > 0
        spans = queries["trace"]["spans"]
        assert "kernel.query.range" in spans
        assert "kernel.query.knn" in spans
        assert "kernel.query.partial_match" in spans

    def test_serve_stage(self, snapshot):
        serve = snapshot["stages"]["serve"]
        assert serve["failures"] == 0
        assert serve["census_verified"] is True
        assert serve["achieved_qps"] > 0
        assert serve["mutations"] == serve["params"]["ops"]
        assert serve["insert_p99_ms"] >= serve["insert_p50_ms"] > 0
        # group commit must actually batch: far fewer fsyncs than ops
        assert serve["wal_syncs"] < serve["mutations"] / 2
        assert serve["mean_commit_batch"] > 1
        assert serve["checkpoints"] >= 1
        trace = serve["trace"]
        assert trace["counters"]["service.wal.append"] == serve["mutations"]
        assert "service.checkpoint" in trace["spans"]

    def test_every_stage_reports_wall_time(self, snapshot):
        for name in STAGES:
            assert snapshot["stages"][name]["stage_wall_s"] > 0

    def test_every_stage_reports_peak_rss(self, snapshot):
        pytest.importorskip("resource")
        for name in STAGES:
            assert snapshot["stages"][name]["stage_peak_rss_kb"] > 0
        # stage tracers carry the same signal as a gauge
        gauges = snapshot["stages"]["build"]["trace"]["gauges"]
        assert gauges["stage_peak_rss_kb"]["last"] > 0

    def test_pool_stage_trace_has_worker_subtrees(self, snapshot):
        parallel = snapshot["stages"]["parallel"]
        pool = parallel["pool_trace"]
        build = pool["spans"]["runtime.execute"]["children"]["runtime.build"]
        workers = [
            name for name in build["children"] if name.startswith("worker.")
        ]
        assert workers, "traced pool run should merge worker telemetry"
        # the pinned engine is vector, so workers count kernel censuses
        # (one per trial) instead of trees
        assert parallel["engine"] == "vector"
        assert pool["counters"]["kernel.census"] == \
            parallel["params"]["trials"]

    def test_parallel_stage_reports_object_cross_check(self, snapshot):
        parallel = snapshot["stages"]["parallel"]
        assert parallel["object_serial_s"] > 0
        assert parallel["object_pool_s"] > 0
        assert parallel["object_speedup"] > 0

    def test_profiles_are_pinned(self):
        # a profile edit must be a deliberate BENCH_VERSION bump
        assert PROFILES["full"]["build"] == {
            "capacity": 8, "n_points": 2000, "trials": 20
        }
        assert PROFILES["full"]["storage"] == {
            "capacity": 8, "n_points": 5000,
            "pool_pages": 1024, "queries": 200,
        }
        assert PROFILES["full"]["kernels"] == {
            "capacity": 8, "sizes": [2000, 20000]
        }
        assert PROFILES["full"]["queries"] == {
            "capacity": 8, "sizes": [2000, 20000], "queries": 256,
            "k": 8, "side": 0.1,
        }
        assert PROFILES["full"]["parallel"] == {
            "capacity": 8, "n_points": 2000, "trials": 32,
            "engine": "vector", "chunk_size": 8,
        }
        assert PROFILES["full"]["serve"] == {
            "capacity": 4, "ops": 1000, "size": 300,
            "checkpoint_every": 400, "query_fraction": 0.2,
        }
        assert set(PROFILES["smoke"]) == set(PROFILES["full"])

    def test_snapshot_is_json_serializable(self, snapshot):
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["bench_version"] == BENCH_VERSION


class TestReporting:
    def test_summary_mentions_every_stage(self, snapshot):
        text = summarize(snapshot)
        assert "trees/s" in text
        assert "census/s" in text
        assert "speedup" in text
        assert "warmup" in text
        assert "inserts/s" in text
        assert "warm pool" in text
        assert "vector" in text
        assert "censuses identical" in text
        assert "bulk load" in text
        assert "answers identical" in text
        assert "ops/s" in text
        assert "census verified" in text

    def test_write_snapshot_round_trips(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, tmp_path / "BENCH_test.json")
        loaded = json.loads(path.read_text())
        assert loaded["stages"]["build"]["splits"] == \
            snapshot["stages"]["build"]["splits"]

    def test_environment_standalone(self):
        assert environment()["implementation"]


class TestTraceBundle:
    def test_bundle_path_naming(self):
        assert trace_bundle_path(Path("BENCH_6.json")).name == \
            "BENCH_TRACE_6.json"
        assert trace_bundle_path(Path("out/custom.json")) == \
            Path("out/custom_trace.json")

    def test_bundle_holds_every_stage_trace(self, snapshot, tmp_path):
        path = write_trace_bundle(snapshot, tmp_path / "bundle.json")
        bundle = json.loads(path.read_text())
        assert bundle["bench_version"] == BENCH_VERSION
        stages = bundle["stages"]
        for name in ("build", "census", "warm_cache", "storage", "kernels",
                     "serve", "parallel.serial", "parallel.pool"):
            assert "spans" in stages[name], name

    def test_bundle_is_diffable_against_itself(self, snapshot, tmp_path):
        from repro.obs.cli import main as obs_main

        path = write_trace_bundle(snapshot, tmp_path / "bundle.json")
        assert obs_main(["diff", str(path), str(path)]) == 0

    def test_render_traces_shows_worker_trees(self, snapshot):
        text = render_traces(snapshot)
        assert "=== parallel.pool ===" in text
        assert "worker.0" in text


class TestCli:
    def test_main_writes_snapshot_and_trace_bundle(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        assert main(["--smoke", "--workers", "2", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["profile"] == "smoke"
        bundle_path = tmp_path / "BENCH_TRACE_cli.json"
        assert "build" in json.loads(bundle_path.read_text())["stages"]
        printed = capsys.readouterr().out
        assert "repro bench" in printed
        assert str(out) in printed
        assert str(bundle_path) in printed

    def test_main_verbose_prints_worker_trees(self, tmp_path, capsys):
        assert main(["--smoke", "--workers", "2", "--out", "-",
                     "--verbose"]) == 0
        printed = capsys.readouterr().out
        assert "=== parallel.pool ===" in printed
        assert "worker.0" in printed

    def test_main_dash_skips_writing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--smoke", "--workers", "2", "--out", "-"]) == 0
        assert not list(tmp_path.iterdir())

    def test_main_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            main(["--smoke", "--workers", "0"])

    def test_repro_cli_dispatches_bench(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        out = tmp_path / "BENCH_dispatch.json"
        code = repro_main(["bench", "--smoke", "--workers", "2",
                           "--out", str(out)])
        assert code == 0
        assert out.exists()
