"""Seeded query workloads — the read side of the paper's experiments.

The point generators in :mod:`~repro.workloads.generators` describe
what goes *into* a structure; :class:`QueryWorkload` describes what is
asked *of* it: a reproducible batch of range boxes, k-NN query points,
and partial-match values over the same region.  Every batch is a pure
function of ``(seed, dim, bounds)`` and the batch parameters —
independent of call order, because each kind of batch draws from its
own child of one :class:`numpy.random.SeedSequence`.  That is what
lets the object and vector query engines be timed against each other
on *exactly* the same queries, and lets ``repro bench`` and
``repro query`` replay the same workload across sessions and PRs.

Range boxes follow the classic selectivity model: centers uniform in
the region, each side a uniform fraction of the region side around a
target ``side`` (so a workload's expected selectivity is ``side**dim``
under uniform data).  Boxes are clipped to the region, never empty.
Partial-match values are uniform per fixed axis — the "random slice"
the partial-match scaling laws are stated for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Point, Rect

# child-stream keys: one per batch kind so adding a new kind (or
# drawing batches in a different order) never shifts another's stream
_RANGE_KEY = 0
_KNN_KEY = 1
_PM_KEY = 2


@dataclass(frozen=True)
class QueryWorkload:
    """A deterministic family of query batches over one region.

    Parameters
    ----------
    dim:
        Query dimensionality (must match the structure under test).
    seed:
        Root seed; two workloads with equal fields produce bit-equal
        batches.
    bounds:
        The queried region (default: the unit hypercube, matching the
        point generators).
    """

    dim: int = 2
    seed: int = 1987
    bounds: Optional[Rect] = None

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.bounds is None:
            object.__setattr__(self, "bounds", Rect.unit(self.dim))
        elif self.bounds.dim != self.dim:
            raise ValueError(
                f"bounds dimension {self.bounds.dim} != dim {self.dim}"
            )

    def _rng(self, key: int) -> np.random.Generator:
        seq = np.random.SeedSequence(self.seed)
        return np.random.default_rng(seq.spawn(key + 1)[key])

    def _span(self) -> Tuple[np.ndarray, np.ndarray]:
        lo = np.array(
            [self.bounds.lo[i] for i in range(self.dim)], dtype=np.float64
        )
        hi = np.array(
            [self.bounds.hi[i] for i in range(self.dim)], dtype=np.float64
        )
        return lo, hi

    def range_rects(self, n: int, side: float = 0.1) -> List[Rect]:
        """``n`` query boxes: uniform centers, per-axis extent uniform
        in ``[0.5*side, 1.5*side]`` of the region side, clipped to the
        region.  Expected selectivity ~= ``side ** dim`` on uniform
        data."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if not 0.0 < side <= 1.0:
            raise ValueError(f"side must be in (0, 1], got {side}")
        rng = self._rng(_RANGE_KEY)
        lo, hi = self._span()
        extent = hi - lo
        centers = lo + rng.random((n, self.dim)) * extent
        halves = (
            0.5 * side * (0.5 + rng.random((n, self.dim))) * extent
        )
        qlo = np.clip(centers - halves, lo, hi)
        qhi = np.clip(centers + halves, lo, hi)
        return [
            Rect(Point(*qlo[i]), Point(*qhi[i])) for i in range(n)
        ]

    def knn_points(self, n: int) -> np.ndarray:
        """``n`` uniform query points as an ``(n, dim)`` array."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rng = self._rng(_KNN_KEY)
        lo, hi = self._span()
        return lo + rng.random((n, self.dim)) * (hi - lo)

    def partial_match_values(
        self, n: int, axes: Sequence[int]
    ) -> np.ndarray:
        """``n`` random hyperplane positions for the fixed ``axes``:
        an ``(n, len(axes))`` array, each column uniform over that
        axis's extent."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        fixed = list(axes)
        if not fixed:
            raise ValueError("partial match needs at least one fixed axis")
        for a in fixed:
            if not 0 <= a < self.dim:
                raise ValueError(
                    f"axis {a} out of range for dim {self.dim}"
                )
        rng = self._rng(_PM_KEY)
        lo, hi = self._span()
        raw = rng.random((n, len(fixed)))
        cols = [
            lo[a] + raw[:, j] * (hi[a] - lo[a])
            for j, a in enumerate(fixed)
        ]
        return np.stack(cols, axis=1) if fixed else raw
