"""Seeded workload generators for points, segments, queries, and
churn traces."""

from .churn import DELETE, INSERT, ChurnWorkload, apply_churn
from .generators import (
    ClusteredPoints,
    DiagonalPoints,
    GaussianPoints,
    LatticeSubdivision,
    PointGenerator,
    RandomSegments,
    UniformPoints,
    logarithmic_sample_sizes,
)
from .queries import QueryWorkload

__all__ = [
    "ChurnWorkload",
    "ClusteredPoints",
    "DELETE",
    "INSERT",
    "LatticeSubdivision",
    "apply_churn",
    "DiagonalPoints",
    "GaussianPoints",
    "PointGenerator",
    "QueryWorkload",
    "RandomSegments",
    "UniformPoints",
    "logarithmic_sample_sizes",
]
