"""Churn workloads — steady state under mixed insert/delete traffic.

The paper derives its steady state for insertion-only growth.  A
natural follow-up for a *dynamic* index: does the occupancy
distribution survive churn (deletes balanced by inserts at constant
size)?  For the PR quadtree the answer is exactly yes — the structure
is a function of the current point set alone, so churn at size n is
indistinguishable from a fresh build of n points (a property the tests
verify).  For history-dependent structures (grid file scales never
retract; EXCELL's directory never shrinks) churn *degrades* occupancy,
a contrast the churn benchmark quantifies.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..geometry import Point, Rect
from .generators import PointGenerator, UniformPoints

#: Operation kinds in a churn trace.
INSERT = "insert"
DELETE = "delete"


class ChurnWorkload:
    """A reproducible stream of insert/delete operations.

    Phase 1 (*warm-up*): ``size`` inserts.  Phase 2 (*churn*): each
    step deletes one uniformly chosen live point and inserts one fresh
    point, holding the live count at ``size``.

    Parameters
    ----------
    size:
        Live-set size after warm-up.
    generator:
        Point source (default: uniform over the unit square).
    seed:
        Seed for the delete-victim choices (the generator seeds itself).
    """

    def __init__(
        self,
        size: int,
        generator: Optional[PointGenerator] = None,
        seed: Optional[int] = None,
    ):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if generator is None:
            generator = UniformPoints(seed=seed)
        self._size = size
        self._stream = generator.stream()
        self._rng = np.random.default_rng(seed)
        self._live: List[Point] = []

    @property
    def live_points(self) -> List[Point]:
        """The currently live point set (copy)."""
        return list(self._live)

    def operations(self, churn_steps: int) -> Iterator[Tuple[str, Point]]:
        """Yield ``(op, point)`` pairs: warm-up inserts, then churn.

        Each churn step yields a delete followed by an insert.  The
        iterator maintains the live set, so ``live_points`` is always
        consistent with the operations already consumed.
        """
        if churn_steps < 0:
            raise ValueError(f"churn_steps must be >= 0, got {churn_steps}")
        while len(self._live) < self._size:
            p = next(self._stream)
            self._live.append(p)
            yield (INSERT, p)
        for _ in range(churn_steps):
            victim_at = int(self._rng.integers(len(self._live)))
            victim = self._live[victim_at]
            self._live[victim_at] = self._live[-1]
            self._live.pop()
            yield (DELETE, victim)
            fresh = next(self._stream)
            self._live.append(fresh)
            yield (INSERT, fresh)


def apply_churn(structure, workload: ChurnWorkload, churn_steps: int) -> None:
    """Drive a structure with a churn workload.

    The structure needs ``insert(point)`` and ``delete(point)``; every
    delete must succeed (the workload only deletes live points) — a
    failed delete raises, catching structures that lose data.
    """
    for op, point in workload.operations(churn_steps):
        if op == INSERT:
            structure.insert(point)
        else:
            if not structure.delete(point):
                raise AssertionError(
                    f"structure failed to delete live point {point!r}"
                )
