"""Workload generators for the paper's experiments.

All generators are deterministic given a seed (numpy ``Generator``
underneath) and produce *distinct* points — the PR splitting rule is
defined on distinct points, and with continuous coordinates duplicates
have probability zero anyway; we enforce it so trees never reject.

The two distributions the paper evaluates:

- **uniform** over the tree's square region (Tables 1-4, Figure 2);
- **Gaussian** "two standard deviations wide centered in the square
  region" (Table 5, Figure 3) — i.e. sigma = side/4 per axis, centered,
  resampled until inside the region.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Point, Rect, Segment


class PointGenerator:
    """Base class: seeded random point streams over a region."""

    def __init__(self, bounds: Optional[Rect] = None, dim: int = 2,
                 seed: Optional[int] = None):
        if bounds is None:
            bounds = Rect.unit(dim)
        self._bounds = bounds
        self._rng = np.random.default_rng(seed)

    @property
    def bounds(self) -> Rect:
        """The region points are drawn from."""
        return self._bounds

    def _raw(self) -> Point:
        raise NotImplementedError

    def generate(self, n: int) -> List[Point]:
        """``n`` distinct points from the distribution."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        out: List[Point] = []
        seen = set()
        while len(out) < n:
            p = self._raw()
            if p not in seen:
                seen.add(p)
                out.append(p)
        return out

    def generate_array(self, n: int) -> np.ndarray:
        """``n`` distinct points as an ``(n, dim)`` float64 array —
        row ``i`` is exactly ``generate(n)[i]``'s coordinates.

        The base implementation lowers :meth:`generate`; subclasses
        with a pure per-coordinate draw (uniform) override it with a
        vectorized path that consumes the RNG stream identically, so
        callers (the runtime's shared-memory pool path) may rely on
        ``generate_array`` being bit-identical to ``generate`` for
        every generator.
        """
        points = self.generate(n)
        if not points:
            return np.empty((0, self._bounds.dim), dtype=np.float64)
        return np.array([tuple(p) for p in points], dtype=np.float64)

    def stream(self) -> Iterator[Point]:
        """An endless stream of distinct points."""
        seen = set()
        while True:
            p = self._raw()
            if p not in seen:
                seen.add(p)
                yield p


class UniformPoints(PointGenerator):
    """Uniformly distributed points — the paper's primary data model."""

    def _raw(self) -> Point:
        coords = [
            self._bounds.lo[i]
            + self._rng.random() * (self._bounds.hi[i] - self._bounds.lo[i])
            for i in range(self._bounds.dim)
        ]
        return Point(*coords)

    def generate_array(self, n: int) -> np.ndarray:
        """Vectorized draw, bit-identical to :meth:`generate`.

        ``_raw`` consumes one double per axis per point in row-major
        order, and a bulk ``Generator.random(k)`` yields exactly the
        same doubles as ``k`` scalar calls, so one bulk draw plus the
        same affine map reproduces the scalar stream.  Duplicate rows
        (probability ~0 in float64) fall back to the scalar loop's
        semantics: keep first occurrences, then keep drawing one point
        at a time until ``n`` are distinct.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        dim = self._bounds.dim
        if n == 0:
            return np.empty((0, dim), dtype=np.float64)
        lo = np.array(
            [self._bounds.lo[i] for i in range(dim)], dtype=np.float64
        )
        hi = np.array(
            [self._bounds.hi[i] for i in range(dim)], dtype=np.float64
        )
        raw = self._rng.random(n * dim).reshape(n, dim)
        arr = lo + raw * (hi - lo)
        # +0.0 normalizes -0.0 so the bitwise row comparison below
        # agrees with the scalar path's value-equality dedupe
        if np.unique(arr + 0.0, axis=0).shape[0] == n:
            return arr
        seen = set()
        rows: List[Tuple[float, ...]] = []
        for row in map(tuple, arr.tolist()):
            if row not in seen:
                seen.add(row)
                rows.append(row)
        while len(rows) < n:
            row = tuple(self._raw())
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return np.array(rows, dtype=np.float64)


class GaussianPoints(PointGenerator):
    """The paper's Gaussian workload: a normal distribution "two
    standard deviations wide centered in the square region".

    The paper's phrase is ambiguous between sigma = side/4 (region
    spans +-2 sigma) and sigma = side/2 (region *is* 2 sigma wide).
    Samples outside the region are rejected and redrawn.  The default
    ``sigma_fraction = 0.4`` is calibrated against the paper's Table 5:
    it reproduces both the near-uniform node counts at small n and the
    damped late-half oscillation (a side/4 bell overshoots the central
    density; a side/2 bell barely damps).  See EXPERIMENTS.md for the
    calibration sweep.
    """

    def __init__(self, bounds: Optional[Rect] = None, dim: int = 2,
                 seed: Optional[int] = None,
                 sigma_fraction: float = 0.4):
        super().__init__(bounds, dim, seed)
        if sigma_fraction <= 0:
            raise ValueError("sigma_fraction must be positive")
        self._sigma_fraction = sigma_fraction

    def _raw(self) -> Point:
        center = self._bounds.center
        while True:
            coords = [
                self._rng.normal(
                    center[i], self._sigma_fraction * self._bounds.side(i)
                )
                for i in range(self._bounds.dim)
            ]
            p = Point(*coords)
            if self._bounds.contains_point(p):
                return p


class ClusteredPoints(PointGenerator):
    """A mixture of compact Gaussian clusters — the strongly non-uniform
    regime where phasing should vanish entirely.

    ``n_clusters`` centers are drawn uniformly; each point picks a
    center at random and scatters around it with the given sigma
    (as a fraction of the region side), rejected to the region.
    """

    def __init__(self, bounds: Optional[Rect] = None, dim: int = 2,
                 seed: Optional[int] = None,
                 n_clusters: int = 8, cluster_sigma: float = 0.03):
        super().__init__(bounds, dim, seed)
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if cluster_sigma <= 0:
            raise ValueError("cluster_sigma must be positive")
        self._sigma = cluster_sigma
        self._centers = [
            Point(*(
                self._bounds.lo[i]
                + self._rng.random() * self._bounds.side(i)
                for i in range(self._bounds.dim)
            ))
            for _ in range(n_clusters)
        ]

    @property
    def centers(self) -> List[Point]:
        """The cluster centers."""
        return list(self._centers)

    def _raw(self) -> Point:
        center = self._centers[self._rng.integers(len(self._centers))]
        while True:
            coords = [
                self._rng.normal(center[i], self._sigma * self._bounds.side(i))
                for i in range(self._bounds.dim)
            ]
            p = Point(*coords)
            if self._bounds.contains_point(p):
                return p


class DiagonalPoints(PointGenerator):
    """Points jittered around the main diagonal — a worst-ish case for
    regular decomposition (deep splits along a 1-d manifold)."""

    def __init__(self, bounds: Optional[Rect] = None, dim: int = 2,
                 seed: Optional[int] = None, jitter: float = 0.01):
        super().__init__(bounds, dim, seed)
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._jitter = jitter

    def _raw(self) -> Point:
        while True:
            t = self._rng.random()
            coords = [
                self._bounds.lo[i]
                + t * self._bounds.side(i)
                + self._rng.normal(0.0, self._jitter * self._bounds.side(i))
                for i in range(self._bounds.dim)
            ]
            p = Point(*coords)
            if self._bounds.contains_point(p):
                return p


class RandomSegments:
    """Random short segments for the PMR quadtree experiments.

    Each segment has a uniform midpoint, uniform orientation, and
    length drawn uniformly from ``[min_length, max_length]`` (clipped
    so both endpoints stay inside the region by rejection).
    """

    def __init__(self, bounds: Optional[Rect] = None,
                 seed: Optional[int] = None,
                 min_length: float = 0.05, max_length: float = 0.2):
        if bounds is None:
            bounds = Rect.unit(2)
        if bounds.dim != 2:
            raise ValueError("segments are planar")
        if not 0 < min_length <= max_length:
            raise ValueError("need 0 < min_length <= max_length")
        self._bounds = bounds
        self._rng = np.random.default_rng(seed)
        self._min_length = min_length
        self._max_length = max_length

    @property
    def bounds(self) -> Rect:
        """The region segments are drawn from."""
        return self._bounds

    def _raw(self) -> Segment:
        while True:
            cx = self._bounds.lo.x + self._rng.random() * self._bounds.side(0)
            cy = self._bounds.lo.y + self._rng.random() * self._bounds.side(1)
            theta = self._rng.random() * math.pi
            length = self._min_length + self._rng.random() * (
                self._max_length - self._min_length
            )
            dx = 0.5 * length * math.cos(theta)
            dy = 0.5 * length * math.sin(theta)
            a = Point(cx - dx, cy - dy)
            b = Point(cx + dx, cy + dy)
            if self._bounds.contains_point(a) and self._bounds.contains_point(b):
                return Segment(a, b)

    def generate(self, n: int) -> List[Segment]:
        """``n`` distinct segments."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        out: List[Segment] = []
        seen = set()
        while len(out) < n:
            s = self._raw()
            if s not in seen:
                seen.add(s)
                out.append(s)
        return out


class LatticeSubdivision:
    """A random planar subdivision — PM1-compatible segment sets.

    Vertices sit on a jittered ``cells x cells`` lattice; edges connect
    horizontally/vertically adjacent vertices, each kept with
    probability ``edge_probability``.  With jitter below ~0.3 of a cell
    the edges of the perturbed lattice cannot cross except at shared
    endpoints, so the output is a valid polygonal map; generation
    re-verifies and redraws crossing edges regardless.
    """

    def __init__(self, cells: int = 6, jitter: float = 0.2,
                 edge_probability: float = 0.6,
                 bounds: Optional[Rect] = None,
                 seed: Optional[int] = None):
        if cells < 2:
            raise ValueError(f"cells must be >= 2, got {cells}")
        if not 0.0 <= jitter <= 0.3:
            raise ValueError("jitter must be in [0, 0.3] (planarity bound)")
        if not 0.0 < edge_probability <= 1.0:
            raise ValueError("edge_probability must be in (0, 1]")
        if bounds is None:
            bounds = Rect.unit(2)
        self._cells = cells
        self._jitter = jitter
        self._edge_probability = edge_probability
        self._bounds = bounds
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _legal_intersection(a: "Segment", b: "Segment") -> bool:
        """True iff a and b meet nowhere, or only at a shared vertex
        (endpoint comparison with float tolerance)."""
        crossing = a.intersection_point(b)
        if crossing is None:
            return True
        return any(
            crossing.distance_to(mine) < 1e-9
            and any(
                crossing.distance_to(theirs) < 1e-9
                for theirs in (b.a, b.b)
            )
            for mine in (a.a, a.b)
        )

    def generate(self) -> List["Segment"]:
        """One random subdivision (a fresh draw per call)."""
        cells = self._cells
        spacing_x = self._bounds.side(0) / cells
        spacing_y = self._bounds.side(1) / cells
        # vertices strictly inside the region: offset by half a cell
        vertices = {}
        for i in range(cells):
            for j in range(cells):
                jx = self._rng.uniform(-self._jitter, self._jitter)
                jy = self._rng.uniform(-self._jitter, self._jitter)
                vertices[(i, j)] = Point(
                    self._bounds.lo.x + (i + 0.5 + jx) * spacing_x,
                    self._bounds.lo.y + (j + 0.5 + jy) * spacing_y,
                )
        segments: List[Segment] = []
        for (i, j), vertex in vertices.items():
            for neighbor in ((i + 1, j), (i, j + 1)):
                if neighbor not in vertices:
                    continue
                if self._rng.random() > self._edge_probability:
                    continue
                candidate = Segment(vertex, vertices[neighbor])
                if all(
                    self._legal_intersection(candidate, existing)
                    for existing in segments
                ):
                    segments.append(candidate)
        return segments


def logarithmic_sample_sizes(
    start: int = 64, stop: int = 4096, steps_per_quadrupling: int = 4
) -> List[int]:
    """The paper's sample-size grid for Tables 4/5: sizes spaced so the
    count quadruples every ``steps_per_quadrupling`` steps.

    With the defaults this reproduces exactly
    ``64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896, 4096``
    (the paper truncates the intermediate sizes, e.g. 64*sqrt(2) -> 90).
    """
    if start < 1 or stop < start:
        raise ValueError("need 1 <= start <= stop")
    if steps_per_quadrupling < 1:
        raise ValueError("steps_per_quadrupling must be >= 1")
    sizes = []
    k = 0
    while True:
        # exponent written base-2 so exact powers of two stay exact
        n = int(start * 2.0 ** (2.0 * k / steps_per_quadrupling) + 1e-9)
        if n > stop:
            break
        sizes.append(n)
        k += 1
    return sizes
