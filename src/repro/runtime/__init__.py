"""Parallel trial-execution engine with deterministic seeding, result
caching, and run metrics.

The runtime owns experiment execution end to end: the harness and every
table/figure/benchmark route their trial loops through
:func:`execute`, which consults the on-disk :class:`ResultCache`,
schedules work across a process pool (or serially), and records a
:class:`RunReport`'s worth of metrics.  ``runtime_session`` scopes a
:class:`RuntimeConfig` over a whole command so ``--workers`` and cache
flags need no per-function plumbing.
"""

from .cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from .executor import (
    ENGINES,
    ChunkOutcome,
    RuntimeConfig,
    TrialResult,
    active_config,
    build_trials,
    execute,
    plan_chunks,
    runtime_session,
)
from .metrics import ChunkMetric, MetricsCollector, RunReport
from .spec import (
    SCHEMA_VERSION,
    ExperimentSpec,
    known_generators,
    rect_to_tuple,
    register_generator,
    tuple_to_rect,
)

__all__ = [
    "CACHE_DIR_ENV",
    "ChunkMetric",
    "ENGINES",
    "ChunkOutcome",
    "ExperimentSpec",
    "MetricsCollector",
    "ResultCache",
    "RunReport",
    "RuntimeConfig",
    "SCHEMA_VERSION",
    "TrialResult",
    "active_config",
    "build_trials",
    "default_cache_dir",
    "execute",
    "known_generators",
    "plan_chunks",
    "rect_to_tuple",
    "register_generator",
    "runtime_session",
    "tuple_to_rect",
]
