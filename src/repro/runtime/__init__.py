"""Parallel trial-execution engine with deterministic seeding, result
caching, and run metrics.

The runtime owns experiment execution end to end: the harness and every
table/figure/benchmark route their trial loops through
:func:`execute`, which consults the on-disk :class:`ResultCache`,
schedules work across a process pool (or serially), and records a
:class:`RunReport`'s worth of metrics.  ``runtime_session`` scopes a
:class:`RuntimeConfig` over a whole command so ``--workers`` and cache
flags need no per-function plumbing.
"""

from .autotune import ChunkAutotuner, PoolRunStats
from .cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from .executor import (
    ENGINES,
    ChunkOutcome,
    PersistentPool,
    RuntimeConfig,
    TrialResult,
    active_config,
    build_trials,
    build_trials_from_arrays,
    execute,
    plan_chunks,
    runtime_session,
)
from .metrics import ChunkMetric, MetricsCollector, RunReport
from .sharedmem import (
    SharedBlockRef,
    SharedPointBlock,
    live_block_count,
    live_block_names,
)
from .spec import (
    SCHEMA_VERSION,
    ExperimentSpec,
    known_generators,
    rect_to_tuple,
    register_generator,
    tuple_to_rect,
)

__all__ = [
    "CACHE_DIR_ENV",
    "ChunkAutotuner",
    "ChunkMetric",
    "ENGINES",
    "ChunkOutcome",
    "ExperimentSpec",
    "MetricsCollector",
    "PersistentPool",
    "PoolRunStats",
    "ResultCache",
    "RunReport",
    "RuntimeConfig",
    "SCHEMA_VERSION",
    "SharedBlockRef",
    "SharedPointBlock",
    "TrialResult",
    "active_config",
    "build_trials",
    "build_trials_from_arrays",
    "default_cache_dir",
    "execute",
    "known_generators",
    "live_block_count",
    "live_block_names",
    "plan_chunks",
    "rect_to_tuple",
    "register_generator",
    "runtime_session",
    "tuple_to_rect",
]
