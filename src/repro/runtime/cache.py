"""On-disk content-addressed result cache.

Entries are JSON files named by :meth:`ExperimentSpec.cache_key` under a
cache directory (``$REPRO_CACHE_DIR``, else ``~/.cache/repro``).  Each
file carries the schema version, the full spec it answers, and the
serialized trial results; reads verify all three so a stale, corrupted,
or truncated file is always a *miss*, never an exception or a wrong
answer.

Writes go through a temp file + ``os.replace`` so a crash mid-write
leaves either the old entry or none — a concurrent reader never sees a
half-written file under the final name.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .. import obs
from .spec import SCHEMA_VERSION, ExperimentSpec

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Spec-keyed store of experiment results.

    The cache maps :meth:`ExperimentSpec.cache_key` to an arbitrary
    JSON-serializable result payload (the executor stores serialized
    :class:`~repro.runtime.executor.TrialResult` objects).  It is
    deliberately dumb: no eviction, no locking — entries are immutable
    by construction (same key = same experiment = same deterministic
    result), so the worst concurrent-writer outcome is writing the same
    bytes twice.
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None) -> None:
        self._dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()

    @property
    def directory(self) -> Path:
        """Where entries live (created lazily on first store)."""
        return self._dir

    def path_for(self, spec: ExperimentSpec) -> Path:
        """The file an entry for ``spec`` would occupy."""
        return self._dir / f"{spec.cache_key()}.json"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def load(self, spec: ExperimentSpec) -> Optional[Dict[str, Any]]:
        """The stored result payload for ``spec``, or ``None`` on miss.

        Anything unreadable — missing file, truncated/corrupted JSON,
        wrong schema version, wrong spec (hash collision or hand-edited
        file) — is treated as a miss.
        """
        with obs.span("cache.load"):
            result = self._load(spec)
        obs.count("cache.hit" if result is not None else "cache.miss")
        return result

    def _load(self, spec: ExperimentSpec) -> Optional[Dict[str, Any]]:
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema_version") != SCHEMA_VERSION:
            return None
        if entry.get("spec") != spec.to_dict():
            return None
        result = entry.get("result")
        if not isinstance(result, dict):
            return None
        return result

    def contains(self, spec: ExperimentSpec) -> bool:
        """Whether a *valid* entry exists for ``spec``."""
        return self.load(spec) is not None

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------

    def store(self, spec: ExperimentSpec, result: Mapping[str, Any]) -> Path:
        """Persist ``result`` as the answer for ``spec``; returns the
        entry path.  Write failures are swallowed — caching is an
        optimization, never a correctness dependency.  That covers
        filesystem trouble (read-only dir, disk full) *and* payloads
        JSON cannot encode (``TypeError``/``ValueError``): either way
        the run proceeds uncached and no temp file is left behind."""
        entry = {
            "schema_version": SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "result": dict(result),
        }
        path = self.path_for(spec)
        with obs.span("cache.store"):
            try:
                self._dir.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    prefix=path.stem, suffix=".tmp", dir=self._dir
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(entry, handle, sort_keys=True)
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            except (OSError, TypeError, ValueError):
                obs.count("cache.store_error")
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry, plus any orphaned ``*.tmp`` files left
        by writers killed between ``mkstemp`` and ``os.replace``;
        returns the number of files removed."""
        removed = 0
        if not self._dir.is_dir():
            return removed
        for pattern in ("*.json", "*.tmp"):
            for path in self._dir.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        """Number of entry files currently on disk (valid or not)."""
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))
