"""Feedback chunk sizing for the process pool.

Telemetry v2 gave the pool exactly two utilization signals:
``pool.worker.busy_fraction`` (how much of the pool's wall clock each
worker spent inside chunks) and ``pool.straggler_ratio`` (the slowest
worker's busy time over the mean).  The :class:`ChunkAutotuner` closes
the loop: after every pool run the executor reports those numbers via
:meth:`observe`, and the next ``plan_chunks`` call asks
:meth:`suggest` before falling back to the static heuristic.

The policy is deliberately small and deterministic (pinned by
``tests/test_runtime_executor.py``):

- **low busy fraction** (< :data:`ChunkAutotuner.LOW_BUSY`): the pool
  spent most of its wall clock on scheduling, pickling, and result
  transport rather than trials — chunks are too small, double them;
- **high straggler ratio** (> :data:`ChunkAutotuner.HIGH_STRAGGLER`)
  with room to split: one worker finished long after the rest —
  chunks are too coarse to load-balance, halve them;
- **rescued chunks present**: the pool is unhealthy; keep the current
  size rather than tuning against garbage timings;
- otherwise the current size is locked in.

Suggestions clamp to ``[1, ceil(trials / workers)]`` so a size tuned
on one run can never produce fewer than one chunk per busy worker on
the next.  Explicit ``RuntimeConfig.chunk_size`` always wins; the
autotuner only fills the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PoolRunStats:
    """What one pool run looked like, as the autotuner sees it."""

    workers: int
    chunk_size: int
    chunk_count: int
    pool_elapsed: float
    #: mean over workers of (busy seconds / pool wall seconds)
    mean_busy_fraction: float
    #: slowest worker's busy seconds over the mean (1.0 = balanced)
    straggler_ratio: float
    #: rescue seconds / (pool + rescue seconds); 0.0 for a clean run
    rescue_fraction: float


class ChunkAutotuner:
    """Adapts the default chunk size from observed pool utilization."""

    #: Below this mean busy fraction the pool is overhead-dominated.
    LOW_BUSY = 0.6
    #: Above this straggler ratio the pool is imbalance-dominated.
    HIGH_STRAGGLER = 1.5

    def __init__(self) -> None:
        self._suggestion: Optional[int] = None

    @property
    def suggestion(self) -> Optional[int]:
        """The current unclamped suggestion (``None`` until the first
        :meth:`observe`)."""
        return self._suggestion

    def suggest(self, trials: int, workers: int) -> Optional[int]:
        """Chunk size for the next run, clamped to the run's shape;
        ``None`` means "no observation yet, use the static default"."""
        if self._suggestion is None:
            return None
        ceiling = max(1, -(-trials // workers))
        return max(1, min(self._suggestion, ceiling))

    def observe(self, stats: PoolRunStats) -> None:
        """Fold one pool run's utilization into the suggestion."""
        if stats.rescue_fraction > 0.0:
            return
        if stats.mean_busy_fraction < self.LOW_BUSY:
            self._suggestion = stats.chunk_size * 2
        elif stats.straggler_ratio > self.HIGH_STRAGGLER \
                and stats.chunk_size > 1:
            self._suggestion = max(1, stats.chunk_size // 2)
        else:
            self._suggestion = stats.chunk_size
