"""Feedback chunk sizing for the process pool.

Telemetry v2 gave the pool exactly two utilization signals:
``pool.worker.busy_fraction`` (how much of the pool's wall clock each
worker spent inside chunks) and ``pool.straggler_ratio`` (the slowest
worker's busy time over the mean).  The :class:`ChunkAutotuner` closes
the loop: after every pool run the executor reports those numbers via
:meth:`observe`, and the next ``plan_chunks`` call asks
:meth:`suggest` before falling back to the static heuristic.

The policy is deliberately small and deterministic (pinned by
``tests/test_runtime_executor.py``):

- **low busy fraction** (< :data:`ChunkAutotuner.LOW_BUSY`): the pool
  spent most of its wall clock on scheduling, pickling, and result
  transport rather than trials — chunks are too small, double them;
- **high straggler ratio** (> :data:`ChunkAutotuner.HIGH_STRAGGLER`)
  with room to split: one worker finished long after the rest —
  chunks are too coarse to load-balance, halve them;
- **rescued chunks present**: the pool is unhealthy; keep the current
  size rather than tuning against garbage timings;
- otherwise the current size is locked in.

Suggestions clamp to ``[1, ceil(trials / workers)]`` so a size tuned
on one run can never produce fewer than one chunk per busy worker on
the next.  Explicit ``RuntimeConfig.chunk_size`` always wins; the
autotuner only fills the default.

Sizes are additionally tracked **per configuration** when callers pass
a ``key`` (the executor passes ``(engine, n_points)``; the worker
count rides in via the call/stats) — a size tuned for the vector
engine at n=20000 says nothing about object trees at n=500.  With a
``store`` attached (see :class:`repro.rundb.AutotuneStore`), keyed
suggestions are seeded from persisted history on first miss, and only
**locked-in** sizes (a balanced, healthy run confirming the current
size) are written back — doubling/halving steps are experiments, not
answers.  Keyless use keeps the original single-scalar behavior
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class PoolRunStats:
    """What one pool run looked like, as the autotuner sees it."""

    workers: int
    chunk_size: int
    chunk_count: int
    pool_elapsed: float
    #: mean over workers of (busy seconds / pool wall seconds)
    mean_busy_fraction: float
    #: slowest worker's busy seconds over the mean (1.0 = balanced)
    straggler_ratio: float
    #: rescue seconds / (pool + rescue seconds); 0.0 for a clean run
    rescue_fraction: float


class ChunkAutotuner:
    """Adapts the default chunk size from observed pool utilization."""

    #: Below this mean busy fraction the pool is overhead-dominated.
    LOW_BUSY = 0.6
    #: Above this straggler ratio the pool is imbalance-dominated.
    HIGH_STRAGGLER = 1.5

    def __init__(self, store=None) -> None:
        self._suggestion: Optional[int] = None
        #: (engine, n_points, workers) -> last keyed suggestion
        self._by_key: Dict[Tuple[str, int, int], int] = {}
        #: keys already asked of the store (hit or miss), so a missing
        #: persisted size is looked up at most once per key
        self._loaded: set = set()
        self._store = store

    @property
    def suggestion(self) -> Optional[int]:
        """The current unclamped suggestion (``None`` until the first
        :meth:`observe`)."""
        return self._suggestion

    def suggest(
        self,
        trials: int,
        workers: int,
        key: Optional[Tuple[str, int]] = None,
    ) -> Optional[int]:
        """Chunk size for the next run, clamped to the run's shape;
        ``None`` means "no observation yet, use the static default".

        With ``key=(engine, n_points)`` the per-configuration size is
        preferred (seeded from the attached store's persisted lock-in
        on first miss); the keyless scalar remains the fallback so a
        fresh configuration still benefits from the session's tuning.
        """
        raw = self._suggestion
        if key is not None:
            full = (key[0], key[1], workers)
            if full not in self._by_key and self._store is not None \
                    and full not in self._loaded:
                self._loaded.add(full)
                stored = self._store.load(*full)
                if stored is not None:
                    self._by_key[full] = int(stored)
            raw = self._by_key.get(full, raw)
        if raw is None:
            return None
        ceiling = max(1, -(-trials // workers))
        return max(1, min(raw, ceiling))

    def observe(
        self,
        stats: PoolRunStats,
        key: Optional[Tuple[str, int]] = None,
    ) -> None:
        """Fold one pool run's utilization into the suggestion."""
        if stats.rescue_fraction > 0.0:
            return
        locked = False
        if stats.mean_busy_fraction < self.LOW_BUSY:
            suggestion = stats.chunk_size * 2
        elif stats.straggler_ratio > self.HIGH_STRAGGLER \
                and stats.chunk_size > 1:
            suggestion = max(1, stats.chunk_size // 2)
        else:
            suggestion = stats.chunk_size
            locked = True
        self._suggestion = suggestion
        if key is not None:
            full = (key[0], key[1], stats.workers)
            self._by_key[full] = suggestion
            if locked and self._store is not None:
                self._store.save(*full, suggestion)
