"""Frozen experiment specifications — the unit of work the runtime runs.

The harness historically threaded loose kwargs (capacity, n_points,
trials, seed, generator factory, ...) through every layer.  The runtime
replaces that with :class:`ExperimentSpec`, a frozen, hashable, fully
serializable description of one experiment.  Freezing the spec is what
makes the rest of the subsystem possible:

- **process-pool execution** — a spec pickles cleanly to workers, where
  a closure over a generator factory would not;
- **result caching** — :meth:`ExperimentSpec.cache_key` is a stable
  content hash, so identical experiments are recognized across runs;
- **the seed contract** — trial ``t`` always uses generator seed
  ``spec.seed + t`` (see :meth:`trial_seed`), which is what keeps the
  parallel path bit-identical to the serial one.

Generators are referenced *by name* through a registry rather than by
callable, so specs stay data.  The registry covers every generator the
paper's experiments use; :func:`register_generator` extends it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..geometry import Point, Rect
from ..workloads import (
    ClusteredPoints,
    DiagonalPoints,
    GaussianPoints,
    PointGenerator,
    UniformPoints,
)

#: Version of the (spec, result) serialization schema.  Bump whenever
#: the cache payload layout or the meaning of any spec field changes;
#: old cache entries are then treated as misses, never misread.
SCHEMA_VERSION = 1

#: Registry of generator names resolvable from a spec.
_GENERATORS: Dict[str, Callable[..., PointGenerator]] = {
    "uniform": UniformPoints,
    "gaussian": GaussianPoints,
    "clustered": ClusteredPoints,
    "diagonal": DiagonalPoints,
}

BoundsTuple = Tuple[Tuple[float, ...], Tuple[float, ...]]


def register_generator(
    name: str, constructor: Callable[..., PointGenerator]
) -> None:
    """Register a generator constructor under ``name``.

    The constructor must accept ``bounds`` and ``seed`` keyword
    arguments (plus any spec-supplied ``generator_params``).
    """
    if not name:
        raise ValueError("generator name must be non-empty")
    _GENERATORS[name] = constructor


def known_generators() -> Tuple[str, ...]:
    """Sorted names the spec layer can resolve."""
    return tuple(sorted(_GENERATORS))


def rect_to_tuple(rect: Optional[Rect]) -> Optional[BoundsTuple]:
    """Serialize a Rect to nested ``(lo, hi)`` coordinate tuples."""
    if rect is None:
        return None
    return (tuple(rect.lo), tuple(rect.hi))


def tuple_to_rect(bounds: Optional[BoundsTuple]) -> Optional[Rect]:
    """Inverse of :func:`rect_to_tuple`."""
    if bounds is None:
        return None
    lo, hi = bounds
    return Rect(Point(*lo), Point(*hi))


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to rerun one experiment bit-for-bit.

    Fields mirror :func:`repro.experiments.harness.run_trials`; the
    ``generator`` is a registry name and ``generator_params`` a sorted
    tuple of ``(key, value)`` pairs so the spec stays hashable.
    ``bounds`` is the tree's root block, ``generator_bounds`` the
    sampling region (``None`` = same as ``bounds``); both are nested
    coordinate tuples, not Rects, so specs pickle and JSON-serialize.
    """

    capacity: int
    n_points: int = 1000
    trials: int = 10
    seed: int = 0
    generator: str = "uniform"
    generator_params: Tuple[Tuple[str, Any], ...] = ()
    max_depth: Optional[int] = None
    bounds: Optional[BoundsTuple] = None
    generator_bounds: Optional[BoundsTuple] = None
    collect_depth: bool = False
    collect_area: bool = False

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {self.n_points}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.generator not in _GENERATORS:
            raise ValueError(
                f"unknown generator {self.generator!r}; "
                f"known: {', '.join(known_generators())}"
            )
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")
        # normalize params to a sorted tuple of pairs so equal specs
        # hash equal regardless of construction order
        params = tuple(sorted((str(k), v) for k, v in self.generator_params))
        object.__setattr__(self, "generator_params", params)

    # ------------------------------------------------------------------
    # seed contract
    # ------------------------------------------------------------------

    def trial_seed(self, trial: int) -> int:
        """The harness's seed-stream contract: trial ``t`` uses
        ``seed + t``.  Workers MUST derive per-trial seeds through this
        method so chunked execution reproduces the serial stream."""
        if not 0 <= trial < self.trials:
            raise ValueError(f"trial {trial} outside 0..{self.trials - 1}")
        return self.seed + trial

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def bounds_rect(self) -> Optional[Rect]:
        """The tree's root block as a Rect (``None`` = structure default)."""
        return tuple_to_rect(self.bounds)

    def make_generator(self, trial: int) -> PointGenerator:
        """Construct the seeded generator for one trial."""
        constructor = _GENERATORS[self.generator]
        gen_bounds = (
            self.generator_bounds
            if self.generator_bounds is not None
            else self.bounds
        )
        return constructor(
            bounds=tuple_to_rect(gen_bounds),
            seed=self.trial_seed(trial),
            **dict(self.generator_params),
        )

    def with_trials(self, trials: int) -> "ExperimentSpec":
        """A copy running a different number of trials."""
        return replace(self, trials=trials)

    # ------------------------------------------------------------------
    # serialization & content addressing
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used for cache keys and files)."""
        return {
            "capacity": self.capacity,
            "n_points": self.n_points,
            "trials": self.trials,
            "seed": self.seed,
            "generator": self.generator,
            "generator_params": [list(p) for p in self.generator_params],
            "max_depth": self.max_depth,
            "bounds": _bounds_to_lists(self.bounds),
            "generator_bounds": _bounds_to_lists(self.generator_bounds),
            "collect_depth": self.collect_depth,
            "collect_area": self.collect_area,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            capacity=data["capacity"],
            n_points=data["n_points"],
            trials=data["trials"],
            seed=data["seed"],
            generator=data["generator"],
            generator_params=tuple(
                (k, v) for k, v in data.get("generator_params", [])
            ),
            max_depth=data.get("max_depth"),
            bounds=_lists_to_bounds(data.get("bounds")),
            generator_bounds=_lists_to_bounds(data.get("generator_bounds")),
            collect_depth=data.get("collect_depth", False),
            collect_area=data.get("collect_area", False),
        )

    def cache_key(self) -> str:
        """Stable content hash identifying this experiment's results.

        Covers every field that affects the output plus
        :data:`SCHEMA_VERSION`, so a schema bump invalidates the whole
        cache at once.  Uses canonical JSON (sorted keys) so the key is
        independent of dict ordering and process.
        """
        payload = {"schema": SCHEMA_VERSION, "spec": self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _bounds_to_lists(bounds: Optional[BoundsTuple]):
    if bounds is None:
        return None
    return [list(bounds[0]), list(bounds[1])]


def _lists_to_bounds(bounds) -> Optional[BoundsTuple]:
    if bounds is None:
        return None
    return (tuple(bounds[0]), tuple(bounds[1]))
