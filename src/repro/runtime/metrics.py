"""Run instrumentation for the trial-execution engine.

The executor records what it actually did — chunks run, where they ran,
trees built, cache hits — into a :class:`MetricsCollector`; the
collector renders a :class:`RunReport` that the CLI prints under
``--verbose`` and that tests use to assert things like "a warm-cache
rerun built zero trees".

Collectors are cheap plain-Python objects.  The executor only touches
them from the coordinating process (workers return timings with their
results), so no locking is needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs import Tracer


@dataclass(frozen=True)
class ChunkMetric:
    """One executed chunk of trials."""

    trials: int
    wall_time: float
    #: where the chunk ran: "pool" (worker process), "serial"
    #: (single-worker path), or "degraded" (in-process after a pool
    #: failure)
    mode: str = "serial"


@dataclass
class RunReport:
    """What a batch of experiment runs cost and where the time went."""

    workers: int = 1
    chunks: List[ChunkMetric] = field(default_factory=list)
    trees_built: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    wall_time: float = 0.0
    #: span/counter/gauge tracer for the run, when instrumentation was
    #: on (``RuntimeConfig.tracer``); ``summary()`` renders its tree
    trace: Optional[Tracer] = None

    @property
    def runs(self) -> int:
        """Number of experiment executions covered by this report."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of runs answered from cache (0.0 when no runs)."""
        if not self.runs:
            return 0.0
        return self.cache_hits / self.runs

    @property
    def chunk_wall_time(self) -> float:
        """Total wall time spent inside chunks (sums worker time, so it
        can exceed ``wall_time`` when chunks ran concurrently)."""
        return sum(c.wall_time for c in self.chunks)

    @property
    def trees_per_second(self) -> float:
        """Build throughput over the report's wall clock."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.trees_built / self.wall_time

    def summary(self) -> str:
        """Human-readable digest for the CLI's ``--verbose`` mode."""
        by_mode = {}
        for chunk in self.chunks:
            by_mode[chunk.mode] = by_mode.get(chunk.mode, 0) + 1
        mode_part = (
            ", ".join(f"{n} {mode}" for mode, n in sorted(by_mode.items()))
            or "none"
        )
        lines = [
            "run report:",
            f"  workers        : {self.workers}",
            f"  experiments    : {self.runs} "
            f"({self.cache_hits} cache hits, {self.cache_misses} misses, "
            f"{self.cache_hit_ratio:.0%} hit ratio)",
            f"  chunks         : {len(self.chunks)} ({mode_part})",
            f"  trees built    : {self.trees_built}",
            f"  retries        : {self.retries}",
            f"  wall time      : {self.wall_time:.3f}s",
            f"  throughput     : {self.trees_per_second:.1f} trees/sec",
        ]
        if self.trace is not None:
            lines.append(self.trace.render())
        return "\n".join(lines)


class MetricsCollector:
    """Accumulates execution events; renders them as a RunReport."""

    def __init__(self) -> None:
        self._chunks: List[ChunkMetric] = []
        self._trees_built = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._retries = 0
        self._wall_time = 0.0
        self._workers = 1

    # -- recording -----------------------------------------------------

    def record_workers(self, workers: int) -> None:
        """Remember the widest pool used during the session."""
        self._workers = max(self._workers, workers)

    def record_chunk(
        self, trials: int, wall_time: float, mode: str
    ) -> None:
        """One chunk of ``trials`` trees finished in ``wall_time``."""
        self._chunks.append(ChunkMetric(trials, wall_time, mode))
        self._trees_built += trials

    def record_cache_hit(self) -> None:
        """An experiment was answered entirely from the result cache."""
        self._cache_hits += 1

    def record_cache_miss(self) -> None:
        """An experiment had to be (re)run."""
        self._cache_misses += 1

    def record_retry(self) -> None:
        """A failed chunk was resubmitted."""
        self._retries += 1

    def add_wall_time(self, seconds: float) -> None:
        """Fold one execution's wall clock into the session total."""
        self._wall_time += seconds

    # -- reading -------------------------------------------------------

    @property
    def trees_built(self) -> int:
        """Trees built so far (cache hits build none)."""
        return self._trees_built

    @property
    def cache_hits(self) -> int:
        """Experiments answered from cache so far."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Experiments actually executed so far."""
        return self._cache_misses

    def report(self) -> RunReport:
        """Snapshot the session as an immutable-ish report."""
        return RunReport(
            workers=self._workers,
            chunks=list(self._chunks),
            trees_built=self._trees_built,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            retries=self._retries,
            wall_time=self._wall_time,
        )


class Stopwatch:
    """Tiny context-manager timer the executor wraps runs in."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
