"""Zero-copy point transport between the coordinator and pool workers.

The pool path used to make every worker regenerate its chunk's points
from the seed stream — correct, but it serialized the slow Python
generator loop into every chunk.  Now the coordinator generates each
trial's coordinate array exactly once (see
``PointGenerator.generate_array``), writes it straight into one
``multiprocessing.shared_memory`` block shaped ``(trials, n_points,
dim)`` float64, and workers attach numpy *views* by name — no point
ever pickles, and a chunk submission carries only the frozen spec plus
a :class:`SharedBlockRef` (a name and a shape).

Lifecycle (pinned by ``tests/test_runtime_executor.py``):

- the **coordinator** is the only process that ever ``unlink``s.  It
  does so in ``_run_pool``'s ``finally`` — normal completion, worker
  crashes, and in-process rescue all pass through it, so no block
  outlives its run;
- **workers** only ever ``close``.  Each worker caches its attachment
  per block name and drops stale ones when a new run's block arrives,
  so a persistent worker holds at most one mapping at a time;
- a module-level registry of live coordinator-side blocks backs the
  leak assertions in tests (``live_block_count`` must return to zero
  after every run, crash paths included).

``close()`` can raise ``BufferError`` while a numpy view of the buffer
is still referenced somewhere; we treat that as "the mapping is freed
when the last view dies" and still unlink immediately — unlinking only
needs the name, and the POSIX semantics (like an open unlinked file)
free the segment once every mapping is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SharedBlockRef:
    """The picklable coordinates of one shared point block."""

    name: str
    trials: int
    n_points: int
    dim: int

    @property
    def shape(self) -> Tuple[int, int, int]:
        """The block's array shape."""
        return (self.trials, self.n_points, self.dim)


#: Coordinator-side registry of blocks created and not yet unlinked.
_LIVE: Dict[str, "SharedPointBlock"] = {}


class SharedPointBlock:
    """Coordinator-side owner of one run's shared coordinate tensor."""

    def __init__(
        self, shm: shared_memory.SharedMemory, trials: int,
        n_points: int, dim: int,
    ) -> None:
        self._shm = shm
        self._ref = SharedBlockRef(shm.name, trials, n_points, dim)
        self._array: Optional[np.ndarray] = np.ndarray(
            self._ref.shape, dtype=np.float64, buffer=shm.buf
        )
        self._closed = False

    @classmethod
    def create(cls, trials: int, n_points: int, dim: int) -> "SharedPointBlock":
        """Allocate a block for ``trials`` arrays of ``(n_points, dim)``
        float64 coordinates (1 byte minimum: zero-size maps are
        rejected by the OS, and zero-point specs still need a name to
        ship)."""
        if trials < 1 or n_points < 0 or dim < 1:
            raise ValueError(
                f"bad block shape ({trials}, {n_points}, {dim})"
            )
        nbytes = max(trials * n_points * dim * 8, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        block = cls(shm, trials, n_points, dim)
        _LIVE[shm.name] = block
        return block

    @property
    def ref(self) -> SharedBlockRef:
        """What a worker needs to attach."""
        return self._ref

    @property
    def array(self) -> np.ndarray:
        """The writable ``(trials, n_points, dim)`` view."""
        if self._array is None:
            raise ValueError("shared block is closed")
        return self._array

    def close_and_unlink(self) -> None:
        """Release and destroy the block (idempotent; the one cleanup
        path — both normal completion and crash rescue call it)."""
        if self._closed:
            return
        self._closed = True
        _LIVE.pop(self._ref.name, None)
        self._array = None
        try:
            self._shm.close()
        except BufferError:
            # a live numpy view still points into the buffer; the
            # mapping is released when the last view is collected
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def live_block_count() -> int:
    """Blocks this process created and has not yet unlinked."""
    return len(_LIVE)


def live_block_names() -> Tuple[str, ...]:
    """Names of the live blocks (for leak diagnostics in tests)."""
    return tuple(sorted(_LIVE))


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-worker attachment cache: block name -> (SharedMemory, view).
#: Persistent workers see one block per run; stale attachments are
#: closed when the next run's block arrives.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach_view(ref: SharedBlockRef) -> np.ndarray:
    """The block's ``(trials, n_points, dim)`` read view in this
    process, attached on first use and cached by name."""
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    for name in list(_ATTACHED):
        _detach(name)
    shm = shared_memory.SharedMemory(name=ref.name)
    view = np.ndarray(ref.shape, dtype=np.float64, buffer=shm.buf)
    _ATTACHED[ref.name] = (shm, view)
    return view


def _detach(name: str) -> None:
    shm, _ = _ATTACHED.pop(name)
    try:
        shm.close()
    except BufferError:
        pass


def reset_attachments() -> None:
    """Drop every cached attachment (tests, and worker teardown)."""
    for name in list(_ATTACHED):
        _detach(name)
