"""The trial-execution engine: chunked, parallel, cached, measured.

``execute(spec)`` is the one entry point.  It answers an
:class:`~repro.runtime.spec.ExperimentSpec` with a :class:`TrialResult`,
taking the fastest correct path available:

1. **cache** — if the active config enables caching and a valid entry
   exists, no tree is built at all;
2. **process pool** — with ``workers > 1`` the trial range is split
   into chunks and fanned out over a pool of **persistent workers**
   (one ``ProcessPoolExecutor`` per :func:`runtime_session`, not one
   per call).  The coordinator generates every trial's points once —
   vectorized, via ``PointGenerator.generate_array`` — into a
   ``multiprocessing.shared_memory`` block; workers attach numpy views
   by name, so no point coordinate ever pickles.  Vector-engine
   workers run whole chunks through one batched kernel call
   (:func:`repro.kernels.vector_census_batch`).  A failed chunk is
   retried once in the pool; a **broken** pool (worker crash) sends
   the failed chunk and every surviving future straight to in-process
   rescue — no futile resubmissions.  If the pool cannot be created at
   all (sandboxed platform without ``fork``/semaphores) the whole run
   degrades to in-process execution rather than failing.  Traced runs
   give every worker its own :class:`~repro.obs.Tracer`; the snapshots
   ride home with each chunk and merge into the coordinator's report
   as ``worker.N`` subtrees plus utilization gauges (busy fraction per
   worker, straggler ratio, rescue fraction).  Those same utilization
   numbers feed a :class:`~repro.runtime.autotune.ChunkAutotuner` that
   adapts the default chunk size run over run;
3. **serial** — ``workers <= 1`` runs in-process with zero pool
   overhead, exactly like the historical harness loop.

Every path preserves the harness's seed-stream contract: trial ``t``
uses generator seed ``spec.seed + t``, and partial results merge in
trial order, so parallel results are bit-identical to serial ones (see
``tests/test_runtime_parity.py``).

Configuration travels either explicitly (pass a :class:`RuntimeConfig`)
or ambiently via :func:`runtime_session`, which the CLI and the
benchmark suite use so deep call stacks need no new parameters.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..geometry import Point, Rect
from ..obs import Tracer
from ..quadtree import CensusAccumulator, DepthCensus, PRQuadtree
from . import sharedmem
from .autotune import ChunkAutotuner, PoolRunStats
from .cache import ResultCache
from .metrics import MetricsCollector
from .sharedmem import SharedBlockRef, SharedPointBlock
from .spec import ExperimentSpec


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class TrialResult:
    """Everything a spec's trials measured, in mergeable form."""

    capacity: int
    accumulator: CensusAccumulator
    depth_censuses: List[DepthCensus] = field(default_factory=list)
    area_occupancy: List[Tuple[float, int]] = field(default_factory=list)

    @classmethod
    def empty(cls, capacity: int) -> "TrialResult":
        """A zero-trial result to merge partials into."""
        return cls(capacity=capacity, accumulator=CensusAccumulator(capacity))

    @property
    def trials(self) -> int:
        """Trials folded in so far."""
        return self.accumulator.trials

    def merge(self, other: "TrialResult") -> None:
        """Fold another partial result in (callers merge in trial order
        so collected lists line up with the serial path)."""
        if other.capacity != self.capacity:
            raise ValueError(
                f"capacity mismatch: {other.capacity} vs {self.capacity}"
            )
        self.accumulator.merge(other.accumulator)
        self.depth_censuses.extend(other.depth_censuses)
        self.area_occupancy.extend(other.area_occupancy)

    # -- serialization (cache entries, worker transport) ---------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready representation; exact under a JSON round trip
        (counts are integer-valued floats, areas round-trip via repr)."""
        return {
            "count_sums": list(self.accumulator.count_sums),
            "trials": self.trials,
            "depth_censuses": [
                {
                    "capacity": census.capacity,
                    "by_depth": {
                        str(depth): list(row)
                        for depth, row in census.by_depth.items()
                    },
                }
                for census in self.depth_censuses
            ],
            "area_occupancy": [[a, o] for a, o in self.area_occupancy],
        }

    @classmethod
    def from_payload(
        cls, spec: ExperimentSpec, payload: Dict[str, Any]
    ) -> "TrialResult":
        """Rebuild a result for ``spec``; raises ``ValueError`` (or
        ``KeyError``/``TypeError`` from malformed shapes) when the
        payload cannot be the answer to ``spec``."""
        count_sums = [float(x) for x in payload["count_sums"]]
        if len(count_sums) != spec.capacity + 1:
            raise ValueError("count_sums length does not match capacity")
        trials = int(payload["trials"])
        if trials != spec.trials:
            raise ValueError("stored trial count does not match spec")
        censuses = []
        for item in payload["depth_censuses"]:
            capacity = int(item["capacity"])
            if capacity != spec.capacity:
                raise ValueError("depth census capacity mismatch")
            by_depth = {}
            for depth, row in item["by_depth"].items():
                counts = tuple(int(c) for c in row)
                if len(counts) != capacity + 1:
                    raise ValueError("depth census row length mismatch")
                by_depth[int(depth)] = counts
            censuses.append(DepthCensus(by_depth, capacity))
        area = [(float(a), int(o)) for a, o in payload["area_occupancy"]]
        return cls(
            capacity=spec.capacity,
            accumulator=CensusAccumulator(
                spec.capacity, _count_sums=count_sums, _trials=trials
            ),
            depth_censuses=censuses,
            area_occupancy=area,
        )


@dataclass
class ChunkOutcome:
    """What one chunk of trials produced (picklable worker return)."""

    start: int
    trials: int
    payload: Dict[str, Any]
    wall_time: float
    #: worker process id — chunks from the same pool worker share one,
    #: which is how the coordinator groups per-worker telemetry
    pid: int = 0
    #: the worker-local tracer's ``to_dict()`` snapshot, when the
    #: coordinating run was traced (``None`` otherwise)
    trace: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# the work itself (module-level so it pickles to worker processes)
# ----------------------------------------------------------------------


ENGINES = ("object", "vector")


def build_trials(
    spec: ExperimentSpec, start: int, count: int, engine: str = "object"
) -> TrialResult:
    """Run trials ``start .. start+count-1`` of ``spec`` in-process.

    This is *the* trial loop — serial execution, pool workers, and
    degraded fallbacks all funnel through it, so the seed contract
    lives in exactly one place.  ``engine`` picks how each trial's
    census is computed: ``"object"`` builds a real :class:`PRQuadtree`
    (the parity oracle, and the only engine that can enumerate leaf
    rectangles), ``"vector"`` runs the Morton-code kernel
    (:func:`repro.kernels.vector_census`) — bit-identical censuses,
    no tree.  Specs that collect leaf areas silently use the object
    engine regardless, since the kernel has no blocks to measure.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "vector" and not spec.collect_area:
        return _build_trials_vector(spec, start, count)
    result = TrialResult.empty(spec.capacity)
    bounds = spec.bounds_rect()
    for trial in range(start, start + count):
        generator = spec.make_generator(trial)
        _object_trial(spec, bounds, generator.generate(spec.n_points), result)
    return result


def build_trials_from_arrays(
    spec: ExperimentSpec,
    start: int,
    count: int,
    engine: str,
    arrays: np.ndarray,
) -> TrialResult:
    """Run trials ``start .. start+count-1`` from pre-generated points.

    ``arrays`` is a ``(count, n_points, dim)`` float64 tensor whose row
    ``i`` holds exactly what ``spec.make_generator(start + i)
    .generate(spec.n_points)`` would produce — the coordinator wrote it
    into shared memory once, so workers (and the crash-rescue path)
    skip generation entirely.  Results are bit-identical to
    :func:`build_trials` for the same range: the object engine rebuilds
    :class:`Point` objects from the rows (float64 round-trips exactly),
    and the vector engine feeds the whole chunk to one batched kernel
    call (:func:`repro.kernels.vector_census_batch`).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if arrays.shape[0] != count:
        raise ValueError(
            f"arrays hold {arrays.shape[0]} trials, chunk needs {count}"
        )
    if engine == "vector" and not spec.collect_area:
        return _batch_trials_vector(spec, arrays)
    result = TrialResult.empty(spec.capacity)
    bounds = spec.bounds_rect()
    for i in range(count):
        # .tolist() yields Python floats: the exact values the
        # generator produced, so the tree sees identical points
        points = [Point(*row) for row in arrays[i].tolist()]
        _object_trial(spec, bounds, points, result)
    return result


def _object_trial(
    spec: ExperimentSpec,
    bounds: Optional[Rect],
    points: Any,
    result: TrialResult,
) -> None:
    """One object-engine trial: build the tree, fold its censuses in."""
    with obs.span("trial.build"):
        tree = PRQuadtree(
            capacity=spec.capacity, bounds=bounds, max_depth=spec.max_depth
        )
        tree.insert_many(points)
    with obs.span("trial.census"):
        result.accumulator.add(tree.occupancy_census())
        if spec.collect_depth:
            result.depth_censuses.append(tree.depth_census())
        if spec.collect_area:
            result.area_occupancy.extend(
                (rect.volume, min(occ, spec.capacity))
                for rect, _, occ in tree.leaves()
            )
    if obs.enabled():
        # structural signals the tree counted for free during the
        # build (pool workers record them into their own tracer,
        # which the coordinator merges back after the pool drains)
        obs.count("tree.built")
        obs.count("tree.splits", tree.split_count)
        obs.count("tree.replace_scans", tree.replace_scans)
        obs.gauge("tree.max_depth", tree.max_depth_reached)


def _build_trials_vector(
    spec: ExperimentSpec, start: int, count: int
) -> TrialResult:
    """The vector-engine trial loop: same seed contract, same spans,
    censuses bit-identical to the object loop's — but each trial is a
    kernel call over the generated point array instead of a tree."""
    from ..kernels import vector_census

    result = TrialResult.empty(spec.capacity)
    # the object tree defaults omitted bounds to the unit square
    bounds = spec.bounds_rect() or Rect.unit(2)
    for trial in range(start, start + count):
        generator = spec.make_generator(trial)
        with obs.span("trial.build"):
            partition = vector_census(
                generator.generate(spec.n_points),
                spec.capacity,
                bounds=bounds,
                dim=bounds.dim,
                max_depth=spec.max_depth,
            )
        with obs.span("trial.census"):
            result.accumulator.add(partition.occupancy_census())
            if spec.collect_depth:
                result.depth_censuses.append(partition.depth_census())
    return result


def _batch_trials_vector(
    spec: ExperimentSpec, arrays: np.ndarray
) -> TrialResult:
    """The batched vector path: one kernel call for the whole chunk.

    Spans keep the per-trial names (``trial.build`` around the batched
    kernel, ``trial.census`` around the fold) so worker subtrees stay
    comparable across paths — but each appears once per *chunk* here.
    """
    from ..kernels import vector_census_batch

    result = TrialResult.empty(spec.capacity)
    bounds = spec.bounds_rect() or Rect.unit(2)
    with obs.span("trial.build"):
        partitions = vector_census_batch(
            np.asarray(arrays, dtype=np.float64),
            spec.capacity,
            bounds=bounds,
            dim=bounds.dim,
            max_depth=spec.max_depth,
        )
    with obs.span("trial.census"):
        for partition in partitions:
            result.accumulator.add(partition.occupancy_census())
            if spec.collect_depth:
                result.depth_censuses.append(partition.depth_census())
    return result


def _run_chunk(
    spec: ExperimentSpec,
    start: int,
    count: int,
    engine: str = "object",
    traced: bool = False,
    shm: Optional[SharedBlockRef] = None,
) -> ChunkOutcome:
    """Worker entry point: run one chunk, return a picklable outcome.

    With ``shm`` set, the chunk's points are read from the
    coordinator's shared block (rows ``start .. start+count-1``)
    instead of being regenerated from the seed stream; if attaching
    fails (block already gone, exotic platform) the worker falls back
    to regenerating — same results either way.

    With ``traced=True`` (the coordinator's run was traced) the chunk
    runs under its own worker-local :class:`Tracer` and ships the
    snapshot home in the outcome; the coordinator merges per-worker
    snapshots into ``worker.N`` subtrees (see ``_merge_worker_traces``).
    """
    began = time.perf_counter()
    arrays: Optional[np.ndarray] = None
    if shm is not None:
        try:
            arrays = sharedmem.attach_view(shm)[start:start + count]
        except (OSError, ValueError):
            arrays = None

    def _work() -> TrialResult:
        if arrays is not None:
            return build_trials_from_arrays(spec, start, count, engine, arrays)
        return build_trials(spec, start, count, engine)

    trace: Optional[Dict[str, Any]] = None
    if traced:
        tracer = Tracer()
        with obs.tracing(tracer):
            result = _work()
        trace = tracer.to_dict()
    else:
        result = _work()
    return ChunkOutcome(
        start=start,
        trials=count,
        payload=result.to_payload(),
        wall_time=time.perf_counter() - began,
        pid=os.getpid(),
        trace=trace,
    )


def plan_chunks(
    trials: int, workers: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``trials`` into contiguous ``(start, count)`` chunks.

    Defaults to ~4 chunks per worker so slow chunks load-balance, while
    keeping per-chunk scheduling overhead amortized over several trees.
    A runt tail (smaller than half ``chunk_size``) merges into the
    previous chunk — a 1–2-trial straggler can't amortize its
    scheduling cost, and the merged chunk stays under 1.5×
    ``chunk_size``.  Plans always cover ``0..trials`` exactly, in
    order, without overlap (property-tested).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is None:
        # one chunk per serial run; otherwise ~4 chunks per worker
        chunk_size = trials if workers == 1 \
            else max(1, -(-trials // (workers * 4)))
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [
        (start, min(chunk_size, trials - start))
        for start in range(0, trials, chunk_size)
    ]
    if len(chunks) >= 2 and chunks[-1][1] * 2 < chunk_size:
        start, count = chunks[-2]
        chunks[-2] = (start, count + chunks[-1][1])
        chunks.pop()
    return chunks


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


class PersistentPool:
    """One ``ProcessPoolExecutor`` kept warm across ``execute`` calls.

    The old pool path paid worker spawn + interpreter import on every
    ``_execute_fresh`` — often more than the trials themselves.  A
    session now owns one of these: :meth:`acquire` returns the live
    pool, recreating it only when the requested width changes or a
    worker crash marked it broken.  ``runtime_session`` tears it down
    on exit; ad-hoc configs (an ``execute`` call outside any session)
    still get a per-call pool, so nothing leaks.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._broken = False

    def acquire(self, workers: int) -> ProcessPoolExecutor:
        """The live pool at ``workers`` width (created or recreated as
        needed; raises ``OSError`` where pool creation is impossible,
        which ``_execute_fresh`` turns into a degraded serial run)."""
        if self._pool is not None and (
            self._broken or self._workers != workers
        ):
            self.shutdown()
        if self._pool is None:
            # the module-global name, so tests can stub pool creation
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._workers = workers
            self._broken = False
        return self._pool

    def mark_broken(self) -> None:
        """Note a worker crash; the next :meth:`acquire` recreates."""
        self._broken = True

    @property
    def is_live(self) -> bool:
        """Whether a usable pool currently exists."""
        return self._pool is not None and not self._broken

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._broken = False


@dataclass
class RuntimeConfig:
    """How the engine should run: width, caching, instrumentation."""

    workers: int = 1
    use_cache: bool = False
    cache_dir: Union[str, None] = None
    chunk_size: Optional[int] = None
    verbose: bool = False
    #: Let pool-utilization telemetry adapt the default chunk size
    #: between runs (explicit ``chunk_size`` always wins).
    autotune: bool = True
    #: Census engine: ``"object"`` builds real trees, ``"vector"`` runs
    #: the Morton-code kernel.  Deliberately part of the runtime config,
    #: not the :class:`ExperimentSpec` — engines are bit-identical, so
    #: the choice is about *how* to execute, not *what* experiment it
    #: is, and cached results stay shared between engines.
    engine: str = "object"
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    #: Optional span/counter/gauge tracer.  ``runtime_session`` and
    #: ``execute`` install it as the ambient :mod:`repro.obs` tracer, so
    #: setting it turns on structured instrumentation for the whole run.
    tracer: Optional[Tracer] = None
    #: Run-database path (see :mod:`repro.rundb`).  ``None`` (the
    #: default) records nothing — library and test use stays free of
    #: side effects; the CLI opts in via ``rundb.resolve_db_path``.
    #: With a path set, every ``execute()`` is buffered and the session
    #: flushes one run row at exit, and the chunk autotuner loads/saves
    #: its locked-in sizes keyed by (engine, n, workers).
    db_path: Union[str, Path, None] = None
    #: Label stamped on the recorded run (e.g. the CLI command name).
    db_label: Optional[str] = None
    _cache: Optional[ResultCache] = field(
        default=None, repr=False, compare=False
    )
    _pool: Optional[PersistentPool] = field(
        default=None, repr=False, compare=False
    )
    _autotuner: Optional[ChunkAutotuner] = field(
        default=None, repr=False, compare=False
    )
    _recorder: Optional[Any] = field(
        default=None, repr=False, compare=False
    )
    _fallback_noted: bool = field(default=False, repr=False, compare=False)

    def result_cache(self) -> ResultCache:
        """The configured cache (constructed lazily, then reused)."""
        if self._cache is None:
            self._cache = ResultCache(self.cache_dir)
        return self._cache

    def persistent_pool(self) -> PersistentPool:
        """This config's pool holder (constructed lazily, then reused)."""
        if self._pool is None:
            self._pool = PersistentPool()
        return self._pool

    def autotuner(self) -> ChunkAutotuner:
        """This config's chunk autotuner (lazy, persists across runs).
        With a run DB configured it loads/saves locked-in sizes keyed
        by (engine, n, workers), so sessions stop relearning."""
        if self._autotuner is None:
            store = None
            if self.db_path is not None:
                from ..rundb.recorder import AutotuneStore
                store = AutotuneStore(self.db_path)
            self._autotuner = ChunkAutotuner(store=store)
        return self._autotuner

    def recorder(self):
        """This config's session recorder, or ``None`` when no run DB
        is configured (lazy; flushed by ``runtime_session`` exit)."""
        if self.db_path is None:
            return None
        if self._recorder is None:
            from ..rundb.recorder import SessionRecorder
            self._recorder = SessionRecorder(
                self.db_path, label=self.db_label
            )
        return self._recorder

    def flush_recording(self) -> None:
        """Write any buffered session record (safe to call always)."""
        if self._recorder is not None:
            self._recorder.flush(self)

    def shutdown_pool(self) -> None:
        """Stop any persistent workers (safe when none were started)."""
        if self._pool is not None:
            self._pool.shutdown()

    def report(self):
        """The collector's current RunReport, carrying the tracer's
        span tree when instrumentation recorded anything.  Traced runs
        also get the run-end ``cache.hit_ratio`` gauge here — the last
        observation is always the whole run's ratio."""
        report = self.collector.report()
        if self.tracer is not None and not self.tracer.is_empty():
            if report.runs:
                self.tracer.gauge("cache.hit_ratio", report.cache_hit_ratio)
            report.trace = self.tracer
        return report


_ACTIVE: List[RuntimeConfig] = []


def active_config() -> Optional[RuntimeConfig]:
    """The innermost runtime session's config, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def runtime_session(
    config: Optional[RuntimeConfig] = None, **kwargs
) -> Iterator[RuntimeConfig]:
    """Install ``config`` (or ``RuntimeConfig(**kwargs)``) as the
    ambient runtime for the dynamic extent of the ``with`` block.

    Sessions nest; the innermost wins.  The CLI wraps each command in
    one so every ``run_trials`` call under it inherits ``--workers``
    and the cache settings without signature changes down the stack.
    A session also scopes the persistent worker pool: the first pooled
    ``execute`` under it spins the workers up, later ones reuse them,
    and session exit shuts them down.
    """
    if config is None:
        config = RuntimeConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config object or kwargs, not both")
    _ACTIVE.append(config)
    try:
        if config.tracer is not None:
            with obs.tracing(config.tracer):
                yield config
        else:
            yield config
    finally:
        _ACTIVE.pop()
        if not any(config is entry for entry in _ACTIVE):
            config.shutdown_pool()
            config.flush_recording()


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def execute(
    spec: ExperimentSpec, config: Optional[RuntimeConfig] = None
) -> TrialResult:
    """Answer ``spec``: from cache if possible, else by building trees
    (in parallel when the config asks for it), recording metrics either
    way."""
    if config is None:
        config = active_config() or RuntimeConfig()
    if config.tracer is not None and obs.active_tracer() is not config.tracer:
        # direct execute() call outside a runtime_session: the config's
        # tracer still sees the run
        with obs.tracing(config.tracer):
            return _execute(spec, config)
    return _execute(spec, config)


def _execute(spec: ExperimentSpec, config: RuntimeConfig) -> TrialResult:
    if config.engine not in ENGINES:
        raise ValueError(
            f"unknown engine {config.engine!r}; expected one of {ENGINES}"
        )
    collector = config.collector
    collector.record_workers(max(1, config.workers))
    began = time.perf_counter()
    try:
        with obs.span("runtime.execute"):
            cache = config.result_cache() if config.use_cache else None
            result: Optional[TrialResult] = None
            if cache is not None:
                payload = cache.load(spec)
                if payload is not None:
                    try:
                        result = TrialResult.from_payload(spec, payload)
                    except (KeyError, TypeError, ValueError):
                        result = None  # malformed entry: treat as a miss
            if result is not None:
                collector.record_cache_hit()
                _note_execution(config, spec, result, True, began)
                return result
            collector.record_cache_miss()
            with obs.span("runtime.build"):
                result = _execute_fresh(spec, config, collector)
            if cache is not None:
                cache.store(spec, result.to_payload())
            _note_execution(config, spec, result, False, began)
            return result
    finally:
        collector.add_wall_time(time.perf_counter() - began)


def _note_execution(
    config: RuntimeConfig,
    spec: ExperimentSpec,
    result: TrialResult,
    cache_hit: bool,
    began: float,
) -> None:
    """Buffer one execution into the config's session recorder (no-op
    without a configured run DB; pure in-memory append with one)."""
    recorder = config.recorder()
    if recorder is not None:
        recorder.note_execution(
            spec, result, config.engine, config.workers, cache_hit,
            time.perf_counter() - began,
        )


def _execute_fresh(
    spec: ExperimentSpec, config: RuntimeConfig, collector: MetricsCollector
) -> TrialResult:
    if config.engine == "vector" and spec.collect_area:
        # the kernel has no blocks to measure: this spec silently used
        # the object engine before — now it says so
        obs.count("runtime.engine_fallback")
        if config.verbose and not config._fallback_noted:
            config._fallback_noted = True
            print(
                "note: engine 'vector' cannot collect leaf areas; "
                "running these trials on the object engine",
                file=sys.stderr,
            )
    workers = max(1, config.workers)
    chunk_size = config.chunk_size
    if chunk_size is None and config.autotune and workers > 1:
        chunk_size = config.autotuner().suggest(
            spec.trials, workers, key=(config.engine, spec.n_points)
        )
    chunks = plan_chunks(spec.trials, workers, chunk_size)
    if workers <= 1 or len(chunks) <= 1:
        return _run_serial(spec, chunks, collector, config.engine)
    try:
        outcomes = _run_pool(spec, chunks, workers, collector, config)
    except OSError:
        # pool could not be created at all (no semaphores / no fork):
        # degrade the entire run to in-process execution
        return _run_serial(
            spec, chunks, collector, config.engine, mode="degraded"
        )
    return _merge_outcomes(spec, outcomes)


def _run_serial(
    spec: ExperimentSpec,
    chunks: List[Tuple[int, int]],
    collector: MetricsCollector,
    engine: str = "object",
    mode: str = "serial",
) -> TrialResult:
    result = TrialResult.empty(spec.capacity)
    if mode == "degraded":
        obs.count("runtime.degraded")
    for start, count in chunks:
        began = time.perf_counter()
        with obs.span(f"chunk.{mode}"):
            result.merge(build_trials(spec, start, count, engine))
        collector.record_chunk(count, time.perf_counter() - began, mode)
    return result


def _run_pool(
    spec: ExperimentSpec,
    chunks: List[Tuple[int, int]],
    workers: int,
    collector: MetricsCollector,
    config: RuntimeConfig,
) -> List[ChunkOutcome]:
    """Fan chunks over the (persistent) process pool with shared-memory
    point transport; retry a failed chunk once in the pool, then rescue
    it in-process.  A broken pool (worker crash) short-circuits every
    surviving future straight to the rescue list — no resubmissions to
    a dead pool, no inflated retry counts.  Only raises if a chunk
    fails even in-process (a genuine bug, not a pool issue).
    """
    engine = config.engine
    # configs installed by runtime_session keep their pool warm across
    # execute() calls; ad-hoc configs get a per-call pool so direct
    # execute(spec, config) use can't leak worker processes
    persistent = any(config is entry for entry in _ACTIVE)
    if persistent:
        pool = config.persistent_pool().acquire(workers)
    else:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(chunks)))

    outcomes: List[ChunkOutcome] = []
    rescued: List[Tuple[int, int]] = []
    traced = obs.enabled()
    broken = False

    def _mark_broken() -> None:
        nonlocal broken
        broken = True
        obs.count("runtime.pool_broken")
        if persistent:
            config.persistent_pool().mark_broken()

    block: Optional[SharedPointBlock] = None
    try:
        bounds = spec.bounds_rect() or Rect.unit(2)
        try:
            block = SharedPointBlock.create(
                spec.trials, spec.n_points, bounds.dim
            )
        except (OSError, ValueError):
            block = None  # no shared memory: workers regenerate points
        shm_ref = block.ref if block is not None else None

        pool_began = time.perf_counter()
        futures: List[Tuple[int, int, Any]] = []
        with obs.span("pool.generate"):
            for start, count in chunks:
                if block is not None:
                    array = block.array
                    for trial in range(start, start + count):
                        array[trial] = spec.make_generator(
                            trial
                        ).generate_array(spec.n_points)
                if broken:
                    rescued.append((start, count))
                    continue
                try:
                    # submit as soon as this chunk's rows are written,
                    # overlapping generation with worker execution
                    futures.append((start, count, pool.submit(
                        _run_chunk, spec, start, count, engine, traced,
                        shm_ref,
                    )))
                except BrokenProcessPool:
                    _mark_broken()
                    rescued.append((start, count))
        for start, count, future in futures:
            if broken:
                # a dead pool fails every surviving future; send them
                # straight to rescue instead of burning retries
                rescued.append((start, count))
                continue
            try:
                outcome = future.result()
            except BrokenProcessPool:
                _mark_broken()
                rescued.append((start, count))
                continue
            except Exception:
                collector.record_retry()
                obs.count("runtime.retry")
                try:
                    outcome = pool \
                        .submit(_run_chunk, spec, start, count, engine,
                                traced, shm_ref) \
                        .result()
                except BrokenProcessPool:
                    _mark_broken()
                    rescued.append((start, count))
                    continue
                except Exception:
                    rescued.append((start, count))
                    continue
            outcomes.append(outcome)
            collector.record_chunk(outcome.trials, outcome.wall_time, "pool")
            # pool chunks time themselves in the worker; fold the
            # measured duration into the coordinator's span tree
            obs.record("chunk.pool", outcome.wall_time)
        pool_elapsed = time.perf_counter() - pool_began

        rescue_s = 0.0
        for start, count in rescued:
            obs.count("runtime.degraded")
            began = time.perf_counter()
            with obs.span("chunk.degraded"):
                if block is not None:
                    result = build_trials_from_arrays(
                        spec, start, count, engine,
                        block.array[start:start + count],
                    )
                else:
                    result = build_trials(spec, start, count, engine)
            wall = time.perf_counter() - began
            outcomes.append(
                ChunkOutcome(
                    start=start,
                    trials=count,
                    payload=result.to_payload(),
                    wall_time=wall,
                )
            )
            collector.record_chunk(count, wall, "degraded")
            rescue_s += wall

        if traced:
            _merge_worker_traces(outcomes, pool_elapsed)
            total = pool_elapsed + rescue_s
            obs.gauge(
                "pool.rescue_fraction",
                rescue_s / total if rescued and total > 0.0 else 0.0,
            )
        if config.autotune:
            config.autotuner().observe(
                _pool_run_stats(
                    chunks, outcomes, workers, pool_elapsed, rescue_s,
                    bool(rescued),
                ),
                key=(engine, spec.n_points),
            )
    finally:
        if block is not None:
            block.close_and_unlink()
        if not persistent:
            pool.shutdown(wait=True)
    return outcomes


def _pool_run_stats(
    chunks: List[Tuple[int, int]],
    outcomes: List[ChunkOutcome],
    workers: int,
    pool_elapsed: float,
    rescue_s: float,
    had_rescues: bool,
) -> PoolRunStats:
    """Utilization summary of one pool run for the chunk autotuner.

    Computed from chunk wall times and worker pids, so it works on
    untraced runs too (rescued chunks carry ``pid=0`` and count only
    toward the rescue fraction, never toward worker busy time).
    """
    busy_by_pid: Dict[int, float] = {}
    for outcome in outcomes:
        if outcome.pid:
            busy_by_pid[outcome.pid] = (
                busy_by_pid.get(outcome.pid, 0.0) + outcome.wall_time
            )
    mean_busy_fraction = 0.0
    straggler_ratio = 1.0
    if busy_by_pid and pool_elapsed > 0.0:
        busy = list(busy_by_pid.values())
        mean_busy = sum(busy) / len(busy)
        mean_busy_fraction = mean_busy / pool_elapsed
        if mean_busy > 0.0:
            straggler_ratio = max(busy) / mean_busy
    total = pool_elapsed + rescue_s
    return PoolRunStats(
        workers=workers,
        chunk_size=chunks[0][1],
        chunk_count=len(chunks),
        pool_elapsed=pool_elapsed,
        mean_busy_fraction=mean_busy_fraction,
        straggler_ratio=straggler_ratio,
        rescue_fraction=rescue_s / total if had_rescues and total > 0.0
        else 0.0,
    )


def _merge_worker_traces(
    outcomes: List[ChunkOutcome], pool_elapsed: float
) -> None:
    """Graft pool-worker telemetry onto the ambient tracer.

    Chunk outcomes carry their worker's tracer snapshot and pid; chunks
    from the same pid merge into one per-worker view, mounted under the
    open coordinator span as ``worker.0 .. worker.k-1`` (pids sorted,
    so numbering is stable for a given run).  Each worker's subtree is
    its true span tree — ``trial.build`` / ``trial.census`` timings and
    ``tree.*`` / ``kernel.*`` / ``storage.pool.*`` counters recorded in
    the worker process, not synthesized by the coordinator.  Utilization
    lands in gauges: ``pool.worker.busy_fraction`` (one observation per
    worker: busy seconds / pool wall seconds) and ``pool.straggler_ratio``
    (slowest worker's busy time over the mean — 1.0 is a perfectly
    balanced pool).
    """
    tracer = obs.active_tracer()
    if tracer is None:
        return
    by_pid: Dict[int, List[ChunkOutcome]] = {}
    for outcome in outcomes:
        if outcome.trace is not None:
            by_pid.setdefault(outcome.pid, []).append(outcome)
    if not by_pid:
        return
    busy_times: List[float] = []
    for index, pid in enumerate(sorted(by_pid)):
        group = by_pid[pid]
        merged = Tracer()
        for outcome in group:
            merged.merge(Tracer.from_dict(outcome.trace))
        busy = sum(outcome.wall_time for outcome in group)
        busy_times.append(busy)
        tracer.graft(
            f"worker.{index}", merged, count=len(group), total=busy
        )
        if pool_elapsed > 0.0:
            obs.gauge("pool.worker.busy_fraction", busy / pool_elapsed)
    obs.gauge("pool.workers_used", float(len(by_pid)))
    mean_busy = sum(busy_times) / len(busy_times)
    if mean_busy > 0.0:
        obs.gauge("pool.straggler_ratio", max(busy_times) / mean_busy)


def _merge_outcomes(
    spec: ExperimentSpec, outcomes: List[ChunkOutcome]
) -> TrialResult:
    """Combine chunk outcomes *in trial order* so collected lists match
    the serial path element for element."""
    result = TrialResult.empty(spec.capacity)
    for outcome in sorted(outcomes, key=lambda o: o.start):
        partial_spec = spec.with_trials(outcome.trials)
        result.merge(TrialResult.from_payload(partial_spec, outcome.payload))
    return result
