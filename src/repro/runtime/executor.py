"""The trial-execution engine: chunked, parallel, cached, measured.

``execute(spec)`` is the one entry point.  It answers an
:class:`~repro.runtime.spec.ExperimentSpec` with a :class:`TrialResult`,
taking the fastest correct path available:

1. **cache** — if the active config enables caching and a valid entry
   exists, no tree is built at all;
2. **process pool** — with ``workers > 1`` the trial range is split
   into chunks and fanned out over a ``ProcessPoolExecutor``.  A failed
   chunk is retried once in the pool; if the pool itself breaks (worker
   crash, sandboxed platform without ``fork``/semaphores) the remaining
   chunks degrade to in-process execution rather than failing the run.
   Traced runs give every worker its own :class:`~repro.obs.Tracer`;
   the snapshots ride home with each chunk and merge into the
   coordinator's report as ``worker.N`` subtrees plus utilization
   gauges (busy fraction per worker, straggler ratio);
3. **serial** — ``workers <= 1`` runs in-process with zero pool
   overhead, exactly like the historical harness loop.

Every path preserves the harness's seed-stream contract: trial ``t``
uses generator seed ``spec.seed + t``, and partial results merge in
trial order, so parallel results are bit-identical to serial ones (see
``tests/test_runtime_parity.py``).

Configuration travels either explicitly (pass a :class:`RuntimeConfig`)
or ambiently via :func:`runtime_session`, which the CLI and the
benchmark suite use so deep call stacks need no new parameters.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .. import obs
from ..obs import Tracer
from ..quadtree import CensusAccumulator, DepthCensus, PRQuadtree
from .cache import ResultCache
from .metrics import MetricsCollector
from .spec import ExperimentSpec


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class TrialResult:
    """Everything a spec's trials measured, in mergeable form."""

    capacity: int
    accumulator: CensusAccumulator
    depth_censuses: List[DepthCensus] = field(default_factory=list)
    area_occupancy: List[Tuple[float, int]] = field(default_factory=list)

    @classmethod
    def empty(cls, capacity: int) -> "TrialResult":
        """A zero-trial result to merge partials into."""
        return cls(capacity=capacity, accumulator=CensusAccumulator(capacity))

    @property
    def trials(self) -> int:
        """Trials folded in so far."""
        return self.accumulator.trials

    def merge(self, other: "TrialResult") -> None:
        """Fold another partial result in (callers merge in trial order
        so collected lists line up with the serial path)."""
        if other.capacity != self.capacity:
            raise ValueError(
                f"capacity mismatch: {other.capacity} vs {self.capacity}"
            )
        self.accumulator.merge(other.accumulator)
        self.depth_censuses.extend(other.depth_censuses)
        self.area_occupancy.extend(other.area_occupancy)

    # -- serialization (cache entries, worker transport) ---------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready representation; exact under a JSON round trip
        (counts are integer-valued floats, areas round-trip via repr)."""
        return {
            "count_sums": list(self.accumulator.count_sums),
            "trials": self.trials,
            "depth_censuses": [
                {
                    "capacity": census.capacity,
                    "by_depth": {
                        str(depth): list(row)
                        for depth, row in census.by_depth.items()
                    },
                }
                for census in self.depth_censuses
            ],
            "area_occupancy": [[a, o] for a, o in self.area_occupancy],
        }

    @classmethod
    def from_payload(
        cls, spec: ExperimentSpec, payload: Dict[str, Any]
    ) -> "TrialResult":
        """Rebuild a result for ``spec``; raises ``ValueError`` (or
        ``KeyError``/``TypeError`` from malformed shapes) when the
        payload cannot be the answer to ``spec``."""
        count_sums = [float(x) for x in payload["count_sums"]]
        if len(count_sums) != spec.capacity + 1:
            raise ValueError("count_sums length does not match capacity")
        trials = int(payload["trials"])
        if trials != spec.trials:
            raise ValueError("stored trial count does not match spec")
        censuses = []
        for item in payload["depth_censuses"]:
            capacity = int(item["capacity"])
            if capacity != spec.capacity:
                raise ValueError("depth census capacity mismatch")
            by_depth = {}
            for depth, row in item["by_depth"].items():
                counts = tuple(int(c) for c in row)
                if len(counts) != capacity + 1:
                    raise ValueError("depth census row length mismatch")
                by_depth[int(depth)] = counts
            censuses.append(DepthCensus(by_depth, capacity))
        area = [(float(a), int(o)) for a, o in payload["area_occupancy"]]
        return cls(
            capacity=spec.capacity,
            accumulator=CensusAccumulator(
                spec.capacity, _count_sums=count_sums, _trials=trials
            ),
            depth_censuses=censuses,
            area_occupancy=area,
        )


@dataclass
class ChunkOutcome:
    """What one chunk of trials produced (picklable worker return)."""

    start: int
    trials: int
    payload: Dict[str, Any]
    wall_time: float
    #: worker process id — chunks from the same pool worker share one,
    #: which is how the coordinator groups per-worker telemetry
    pid: int = 0
    #: the worker-local tracer's ``to_dict()`` snapshot, when the
    #: coordinating run was traced (``None`` otherwise)
    trace: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# the work itself (module-level so it pickles to worker processes)
# ----------------------------------------------------------------------


ENGINES = ("object", "vector")


def build_trials(
    spec: ExperimentSpec, start: int, count: int, engine: str = "object"
) -> TrialResult:
    """Run trials ``start .. start+count-1`` of ``spec`` in-process.

    This is *the* trial loop — serial execution, pool workers, and
    degraded fallbacks all funnel through it, so the seed contract
    lives in exactly one place.  ``engine`` picks how each trial's
    census is computed: ``"object"`` builds a real :class:`PRQuadtree`
    (the parity oracle, and the only engine that can enumerate leaf
    rectangles), ``"vector"`` runs the Morton-code kernel
    (:func:`repro.kernels.vector_census`) — bit-identical censuses,
    no tree.  Specs that collect leaf areas silently use the object
    engine regardless, since the kernel has no blocks to measure.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "vector" and not spec.collect_area:
        return _build_trials_vector(spec, start, count)
    result = TrialResult.empty(spec.capacity)
    bounds = spec.bounds_rect()
    for trial in range(start, start + count):
        generator = spec.make_generator(trial)
        with obs.span("trial.build"):
            tree = PRQuadtree(
                capacity=spec.capacity, bounds=bounds, max_depth=spec.max_depth
            )
            tree.insert_many(generator.generate(spec.n_points))
        with obs.span("trial.census"):
            result.accumulator.add(tree.occupancy_census())
            if spec.collect_depth:
                result.depth_censuses.append(tree.depth_census())
            if spec.collect_area:
                result.area_occupancy.extend(
                    (rect.volume, min(occ, spec.capacity))
                    for rect, _, occ in tree.leaves()
                )
        if obs.enabled():
            # structural signals the tree counted for free during the
            # build (pool workers record them into their own tracer,
            # which the coordinator merges back after the pool drains)
            obs.count("tree.built")
            obs.count("tree.splits", tree.split_count)
            obs.count("tree.replace_scans", tree.replace_scans)
            obs.gauge("tree.max_depth", tree.max_depth_reached)
    return result


def _build_trials_vector(
    spec: ExperimentSpec, start: int, count: int
) -> TrialResult:
    """The vector-engine trial loop: same seed contract, same spans,
    censuses bit-identical to the object loop's — but each trial is a
    kernel call over the generated point array instead of a tree."""
    from ..geometry import Rect
    from ..kernels import vector_census

    result = TrialResult.empty(spec.capacity)
    # the object tree defaults omitted bounds to the unit square
    bounds = spec.bounds_rect() or Rect.unit(2)
    for trial in range(start, start + count):
        generator = spec.make_generator(trial)
        with obs.span("trial.build"):
            partition = vector_census(
                generator.generate(spec.n_points),
                spec.capacity,
                bounds=bounds,
                dim=bounds.dim,
                max_depth=spec.max_depth,
            )
        with obs.span("trial.census"):
            result.accumulator.add(partition.occupancy_census())
            if spec.collect_depth:
                result.depth_censuses.append(partition.depth_census())
    return result


def _run_chunk(
    spec: ExperimentSpec,
    start: int,
    count: int,
    engine: str = "object",
    traced: bool = False,
) -> ChunkOutcome:
    """Worker entry point: run one chunk, return a picklable outcome.

    With ``traced=True`` (the coordinator's run was traced) the chunk
    runs under its own worker-local :class:`Tracer` and ships the
    snapshot home in the outcome; the coordinator merges per-worker
    snapshots into ``worker.N`` subtrees (see ``_merge_worker_traces``).
    """
    began = time.perf_counter()
    trace: Optional[Dict[str, Any]] = None
    if traced:
        tracer = Tracer()
        with obs.tracing(tracer):
            result = build_trials(spec, start, count, engine)
        trace = tracer.to_dict()
    else:
        result = build_trials(spec, start, count, engine)
    return ChunkOutcome(
        start=start,
        trials=count,
        payload=result.to_payload(),
        wall_time=time.perf_counter() - began,
        pid=os.getpid(),
        trace=trace,
    )


def plan_chunks(
    trials: int, workers: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``trials`` into contiguous ``(start, count)`` chunks.

    Defaults to ~4 chunks per worker so slow chunks load-balance, while
    keeping per-chunk scheduling overhead amortized over several trees.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size is None:
        # one chunk per serial run; otherwise ~4 chunks per worker
        chunk_size = trials if workers == 1 \
            else max(1, -(-trials // (workers * 4)))
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(chunk_size, trials - start))
        for start in range(0, trials, chunk_size)
    ]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass
class RuntimeConfig:
    """How the engine should run: width, caching, instrumentation."""

    workers: int = 1
    use_cache: bool = False
    cache_dir: Union[str, None] = None
    chunk_size: Optional[int] = None
    verbose: bool = False
    #: Census engine: ``"object"`` builds real trees, ``"vector"`` runs
    #: the Morton-code kernel.  Deliberately part of the runtime config,
    #: not the :class:`ExperimentSpec` — engines are bit-identical, so
    #: the choice is about *how* to execute, not *what* experiment it
    #: is, and cached results stay shared between engines.
    engine: str = "object"
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    #: Optional span/counter/gauge tracer.  ``runtime_session`` and
    #: ``execute`` install it as the ambient :mod:`repro.obs` tracer, so
    #: setting it turns on structured instrumentation for the whole run.
    tracer: Optional[Tracer] = None
    _cache: Optional[ResultCache] = field(
        default=None, repr=False, compare=False
    )

    def result_cache(self) -> ResultCache:
        """The configured cache (constructed lazily, then reused)."""
        if self._cache is None:
            self._cache = ResultCache(self.cache_dir)
        return self._cache

    def report(self):
        """The collector's current RunReport, carrying the tracer's
        span tree when instrumentation recorded anything.  Traced runs
        also get the run-end ``cache.hit_ratio`` gauge here — the last
        observation is always the whole run's ratio."""
        report = self.collector.report()
        if self.tracer is not None and not self.tracer.is_empty():
            if report.runs:
                self.tracer.gauge("cache.hit_ratio", report.cache_hit_ratio)
            report.trace = self.tracer
        return report


_ACTIVE: List[RuntimeConfig] = []


def active_config() -> Optional[RuntimeConfig]:
    """The innermost runtime session's config, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def runtime_session(
    config: Optional[RuntimeConfig] = None, **kwargs
) -> Iterator[RuntimeConfig]:
    """Install ``config`` (or ``RuntimeConfig(**kwargs)``) as the
    ambient runtime for the dynamic extent of the ``with`` block.

    Sessions nest; the innermost wins.  The CLI wraps each command in
    one so every ``run_trials`` call under it inherits ``--workers``
    and the cache settings without signature changes down the stack.
    """
    if config is None:
        config = RuntimeConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config object or kwargs, not both")
    _ACTIVE.append(config)
    try:
        if config.tracer is not None:
            with obs.tracing(config.tracer):
                yield config
        else:
            yield config
    finally:
        _ACTIVE.pop()


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def execute(
    spec: ExperimentSpec, config: Optional[RuntimeConfig] = None
) -> TrialResult:
    """Answer ``spec``: from cache if possible, else by building trees
    (in parallel when the config asks for it), recording metrics either
    way."""
    if config is None:
        config = active_config() or RuntimeConfig()
    if config.tracer is not None and obs.active_tracer() is not config.tracer:
        # direct execute() call outside a runtime_session: the config's
        # tracer still sees the run
        with obs.tracing(config.tracer):
            return _execute(spec, config)
    return _execute(spec, config)


def _execute(spec: ExperimentSpec, config: RuntimeConfig) -> TrialResult:
    if config.engine not in ENGINES:
        raise ValueError(
            f"unknown engine {config.engine!r}; expected one of {ENGINES}"
        )
    collector = config.collector
    collector.record_workers(max(1, config.workers))
    began = time.perf_counter()
    try:
        with obs.span("runtime.execute"):
            cache = config.result_cache() if config.use_cache else None
            result: Optional[TrialResult] = None
            if cache is not None:
                payload = cache.load(spec)
                if payload is not None:
                    try:
                        result = TrialResult.from_payload(spec, payload)
                    except (KeyError, TypeError, ValueError):
                        result = None  # malformed entry: treat as a miss
            if result is not None:
                collector.record_cache_hit()
                return result
            collector.record_cache_miss()
            with obs.span("runtime.build"):
                result = _execute_fresh(spec, config, collector)
            if cache is not None:
                cache.store(spec, result.to_payload())
            return result
    finally:
        collector.add_wall_time(time.perf_counter() - began)


def _execute_fresh(
    spec: ExperimentSpec, config: RuntimeConfig, collector: MetricsCollector
) -> TrialResult:
    workers = max(1, config.workers)
    chunks = plan_chunks(spec.trials, workers, config.chunk_size)
    if workers <= 1 or len(chunks) <= 1:
        return _run_serial(spec, chunks, collector, config.engine)
    try:
        outcomes = _run_pool(spec, chunks, workers, collector, config.engine)
    except OSError:
        # pool could not be created at all (no semaphores / no fork):
        # degrade the entire run to in-process execution
        return _run_serial(
            spec, chunks, collector, config.engine, mode="degraded"
        )
    return _merge_outcomes(spec, outcomes)


def _run_serial(
    spec: ExperimentSpec,
    chunks: List[Tuple[int, int]],
    collector: MetricsCollector,
    engine: str = "object",
    mode: str = "serial",
) -> TrialResult:
    result = TrialResult.empty(spec.capacity)
    if mode == "degraded":
        obs.count("runtime.degraded")
    for start, count in chunks:
        began = time.perf_counter()
        with obs.span(f"chunk.{mode}"):
            result.merge(build_trials(spec, start, count, engine))
        collector.record_chunk(count, time.perf_counter() - began, mode)
    return result


def _run_pool(
    spec: ExperimentSpec,
    chunks: List[Tuple[int, int]],
    workers: int,
    collector: MetricsCollector,
    engine: str = "object",
) -> List[ChunkOutcome]:
    """Fan chunks over a process pool; retry each failure once in the
    pool, then fall back to running that chunk in-process.  Only raises
    if a chunk fails even in-process (a genuine bug, not a pool issue).
    """
    outcomes: List[ChunkOutcome] = []
    rescued: List[Tuple[int, int]] = []
    traced = obs.enabled()
    pool_began = time.perf_counter()
    with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        futures = [
            (start, count,
             pool.submit(_run_chunk, spec, start, count, engine, traced))
            for start, count in chunks
        ]
        for start, count, future in futures:
            try:
                outcome = future.result()
            except Exception:
                collector.record_retry()
                obs.count("runtime.retry")
                try:
                    outcome = pool \
                        .submit(_run_chunk, spec, start, count, engine,
                                traced) \
                        .result()
                except Exception:
                    rescued.append((start, count))
                    continue
            outcomes.append(outcome)
            collector.record_chunk(outcome.trials, outcome.wall_time, "pool")
            # pool chunks time themselves in the worker; fold the
            # measured duration into the coordinator's span tree
            obs.record("chunk.pool", outcome.wall_time)
    if traced:
        _merge_worker_traces(outcomes, time.perf_counter() - pool_began)
    for start, count in rescued:
        obs.count("runtime.degraded")
        began = time.perf_counter()
        with obs.span("chunk.degraded"):
            result = build_trials(spec, start, count, engine)
        outcomes.append(
            ChunkOutcome(
                start=start,
                trials=count,
                payload=result.to_payload(),
                wall_time=time.perf_counter() - began,
            )
        )
        collector.record_chunk(count, outcomes[-1].wall_time, "degraded")
    return outcomes


def _merge_worker_traces(
    outcomes: List[ChunkOutcome], pool_elapsed: float
) -> None:
    """Graft pool-worker telemetry onto the ambient tracer.

    Chunk outcomes carry their worker's tracer snapshot and pid; chunks
    from the same pid merge into one per-worker view, mounted under the
    open coordinator span as ``worker.0 .. worker.k-1`` (pids sorted,
    so numbering is stable for a given run).  Each worker's subtree is
    its true span tree — ``trial.build`` / ``trial.census`` timings and
    ``tree.*`` / ``kernel.*`` / ``storage.pool.*`` counters recorded in
    the worker process, not synthesized by the coordinator.  Utilization
    lands in gauges: ``pool.worker.busy_fraction`` (one observation per
    worker: busy seconds / pool wall seconds) and ``pool.straggler_ratio``
    (slowest worker's busy time over the mean — 1.0 is a perfectly
    balanced pool).
    """
    tracer = obs.active_tracer()
    if tracer is None:
        return
    by_pid: Dict[int, List[ChunkOutcome]] = {}
    for outcome in outcomes:
        if outcome.trace is not None:
            by_pid.setdefault(outcome.pid, []).append(outcome)
    if not by_pid:
        return
    busy_times: List[float] = []
    for index, pid in enumerate(sorted(by_pid)):
        group = by_pid[pid]
        merged = Tracer()
        for outcome in group:
            merged.merge(Tracer.from_dict(outcome.trace))
        busy = sum(outcome.wall_time for outcome in group)
        busy_times.append(busy)
        tracer.graft(
            f"worker.{index}", merged, count=len(group), total=busy
        )
        if pool_elapsed > 0.0:
            obs.gauge("pool.worker.busy_fraction", busy / pool_elapsed)
    obs.gauge("pool.workers_used", float(len(by_pid)))
    mean_busy = sum(busy_times) / len(busy_times)
    if mean_busy > 0.0:
        obs.gauge("pool.straggler_ratio", max(busy_times) / mean_busy)


def _merge_outcomes(
    spec: ExperimentSpec, outcomes: List[ChunkOutcome]
) -> TrialResult:
    """Combine chunk outcomes *in trial order* so collected lists match
    the serial path element for element."""
    result = TrialResult.empty(spec.capacity)
    for outcome in sorted(outcomes, key=lambda o: o.start):
        partial_spec = spec.with_trials(outcome.trials)
        result.merge(TrialResult.from_payload(partial_spec, outcome.payload))
    return result
