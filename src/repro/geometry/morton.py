"""Morton (Z-order) codes — the linearization behind the PR quadtree.

Orenstein's "multidimensional tries" [Oren82], the paper's citation for
the PR quadtree, are exactly tries over bit-interleaved coordinates:
the PR quadtree's quadrant path for a point *is* the prefix of its
Morton code.  This module provides the codes and a sorted-array index
built on them, used in the examples to show the equivalence and as a
simple baseline for range queries.

Coordinates are quantized to ``bits`` binary digits per axis within a
bounding box; two points share a depth-k PR quadtree block iff their
Morton codes share their first ``k*dim`` bits (a property the tests
verify against the real tree).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple

from .point import Point
from .rect import Rect


def interleave(coords: Sequence[int], bits: int) -> int:
    """Bit-interleave nonnegative integers into one Morton code.

    Axis 0 contributes the most significant bit of each group, so the
    code orders blocks in the same SW, SE, NW, NE sequence as
    ``Rect.split`` (bit of axis i at group position i).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    dim = len(coords)
    if dim < 1:
        raise ValueError("need at least one coordinate")
    # Validate once per coordinate, not once per (level, axis) pair; the
    # range check is level-independent, so hoisting it preserves which
    # coordinate a mixed-validity input is reported for (the lowest
    # offending axis, exactly as the first loop iteration used to find).
    limit = 1 << bits
    for value in coords:
        if not 0 <= value < limit:
            raise ValueError(
                f"coordinate {value} outside 0..{limit - 1}"
            )
    code = 0
    for level in range(bits - 1, -1, -1):
        for axis in range(dim):
            code = (code << 1) | ((coords[axis] >> level) & 1)
    return code


def interleave_many(coords: "np.ndarray", bits: int) -> "np.ndarray":
    """Vectorized :func:`interleave` over an ``(n, dim)`` integer array.

    Returns a ``uint64`` array of ``n`` Morton codes with exactly the
    scalar function's bit layout (axis 0 most significant within each
    ``dim``-bit group).  ``bits * dim`` must stay within 62 so the codes
    remain exact in both ``uint64`` and ``int64`` arithmetic — the same
    limit :class:`MortonIndex` enforces.
    """
    import numpy as np

    arr = np.asarray(coords)
    if arr.ndim != 2:
        raise ValueError(f"coords must be 2-d (n, dim), got shape {arr.shape}")
    dim = arr.shape[1]
    if dim < 1:
        raise ValueError("need at least one coordinate per point")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if bits * dim > 62:
        raise ValueError(
            f"bits*dim = {bits * dim} exceeds the 62-bit code budget"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"coords must be an integer array, got {arr.dtype}")
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << bits)):
        bad = arr[(arr < 0) | (arr >= (1 << bits))].flat[0]
        raise ValueError(f"coordinate {bad} outside 0..{(1 << bits) - 1}")
    arr = arr.astype(np.uint64)
    codes = np.zeros(arr.shape[0], dtype=np.uint64)
    one = np.uint64(1)
    for level in range(bits - 1, -1, -1):
        for axis in range(dim):
            codes = (codes << one) | ((arr[:, axis] >> np.uint64(level)) & one)
    return codes


def deinterleave(code: int, dim: int, bits: int) -> Tuple[int, ...]:
    """Inverse of :func:`interleave`."""
    if code < 0 or code >= 1 << (dim * bits):
        raise ValueError(f"code {code} outside range for dim={dim} bits={bits}")
    coords = [0] * dim
    for level in range(bits - 1, -1, -1):
        for axis in range(dim):
            bit = (code >> (level * dim + (dim - 1 - axis))) & 1
            coords[axis] |= bit << level
    return tuple(coords)


def quantize(p: Point, bounds: Rect, bits: int) -> Tuple[int, ...]:
    """Map a point to integer grid coordinates inside ``bounds``."""
    if not bounds.contains_point(p):
        raise ValueError(f"{p!r} outside {bounds!r}")
    scale = 1 << bits
    return tuple(
        min(int((p[i] - bounds.lo[i]) / bounds.side(i) * scale), scale - 1)
        for i in range(bounds.dim)
    )


def morton_key(p: Point, bounds: Optional[Rect] = None, bits: int = 16) -> int:
    """The Morton code of a point at ``bits`` bits per axis."""
    if bounds is None:
        bounds = Rect.unit(p.dim)
    return interleave(quantize(p, bounds, bits), bits)


def prefix_at_depth(code: int, depth: int, dim: int, bits: int) -> int:
    """The leading ``depth`` quadrant choices of a Morton code.

    Equals the PR quadtree's root-to-depth path for the point: two
    points land in the same depth-k block iff their prefixes match.
    """
    if not 0 <= depth <= bits:
        raise ValueError(f"depth must be in 0..{bits}, got {depth}")
    return code >> ((bits - depth) * dim)


class MortonIndex:
    """A sorted-array spatial index over Morton codes.

    The simplest practical use of z-ordering: keep ``(code, point)``
    pairs sorted and answer box queries by scanning the code range of
    the query's bounding Morton interval, filtering exactly.  Provided
    as the baseline the tree structures are measured against in the
    examples.
    """

    def __init__(self, bounds: Optional[Rect] = None, bits: int = 16,
                 dim: int = 2):
        if bounds is None:
            bounds = Rect.unit(dim)
        if bits < 1 or bits * bounds.dim > 62:
            raise ValueError("bits per axis out of supported range")
        self._bounds = bounds
        self._bits = bits
        self._codes: List[int] = []
        self._points: List[Point] = []

    @property
    def bounds(self) -> Rect:
        """The indexed region."""
        return self._bounds

    @property
    def bits(self) -> int:
        """Quantization bits per axis."""
        return self._bits

    def __len__(self) -> int:
        return len(self._points)

    def insert(self, p: Point) -> None:
        """Insert a point (duplicates allowed; they share a code)."""
        code = morton_key(p, self._bounds, self._bits)
        at = bisect.bisect_left(self._codes, code)
        self._codes.insert(at, code)
        self._points.insert(at, p)

    def insert_many(self, points: Iterable[Point]) -> None:
        """Bulk insert followed by one sort — preferred for loading."""
        pairs = [
            (morton_key(p, self._bounds, self._bits), p) for p in points
        ]
        pairs.extend(zip(self._codes, self._points))
        pairs.sort(key=lambda pair: pair[0])
        self._codes = [code for code, _ in pairs]
        self._points = [p for _, p in pairs]

    def range_search(self, query: Rect) -> List[Point]:
        """All points in the half-open query box.

        Scans the Morton interval of the query's corners and filters
        exactly; correct always, efficient when the query is small and
        compact (the z-curve keeps nearby points nearby).
        """
        if query.dim != self._bounds.dim:
            raise ValueError("query dimension mismatch")
        if not query.intersects(self._bounds):
            return []
        clipped = query.intersection(self._bounds)
        lo_cell = quantize(clipped.lo, self._bounds, self._bits)
        # the hi corner is exclusive; step inside before quantizing
        eps_point = Point(
            *(
                min(clipped.hi[i], self._bounds.hi[i])
                - 1e-12 * self._bounds.side(i)
                for i in range(self._bounds.dim)
            )
        )
        hi_cell = quantize(
            self._bounds.clamp(eps_point), self._bounds, self._bits
        )
        lo_code = interleave(lo_cell, self._bits)
        hi_code = interleave(hi_cell, self._bits)
        start = bisect.bisect_left(self._codes, min(lo_code, hi_code))
        stop = bisect.bisect_right(self._codes, max(lo_code, hi_code))
        return [
            p
            for p in self._points[start:stop]
            if query.contains_point(p)
        ]

    def points(self) -> List[Point]:
        """All points in Morton order."""
        return list(self._points)

    def validate(self) -> None:
        """Invariant: codes sorted and consistent with their points."""
        assert self._codes == sorted(self._codes)
        for code, p in zip(self._codes, self._points):
            assert code == morton_key(p, self._bounds, self._bits)
