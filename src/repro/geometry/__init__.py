"""Geometric primitives shared by every hierarchical structure.

- :class:`Point` — immutable d-dimensional points.
- :class:`Rect` — half-open axis-aligned boxes with regular-split helpers.
- :class:`Segment` — planar line segments with box-clipping predicates.
"""

from .morton import (
    MortonIndex,
    deinterleave,
    interleave,
    interleave_many,
    morton_key,
    prefix_at_depth,
    quantize,
)
from .point import Point
from .rect import Rect
from .segment import Segment

__all__ = [
    "MortonIndex",
    "Point",
    "Rect",
    "Segment",
    "deinterleave",
    "interleave",
    "interleave_many",
    "morton_key",
    "prefix_at_depth",
    "quantize",
]
