"""Points in d-dimensional space.

The spatial substrate for every hierarchical structure in this package.
Points are immutable, hashable, and support the small amount of vector
arithmetic the tree algorithms need (distance, midpoint interpolation,
componentwise comparison against box boundaries).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple


class Point:
    """An immutable point in d-dimensional Euclidean space.

    Coordinates are stored as a tuple of floats.  Two points compare
    equal iff they have the same dimension and identical coordinates,
    which makes ``Point`` safe to use in sets and as dictionary keys
    (the PR quadtree's "distinct point" splitting rule relies on this).

    >>> p = Point(0.25, 0.75)
    >>> p.dim
    2
    >>> p[0], p[1]
    (0.25, 0.75)
    """

    __slots__ = ("_coords",)

    def __init__(self, *coords: float):
        if not coords:
            raise ValueError("a point needs at least one coordinate")
        self._coords: Tuple[float, ...] = tuple(float(c) for c in coords)
        for c in self._coords:
            if math.isnan(c):
                raise ValueError("point coordinates may not be NaN")

    @classmethod
    def of(cls, coords: Iterable[float]) -> "Point":
        """Build a point from any iterable of coordinates."""
        return cls(*coords)

    @property
    def coords(self) -> Tuple[float, ...]:
        """The coordinate tuple."""
        return self._coords

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self._coords)

    @property
    def x(self) -> float:
        """First coordinate (convenience for planar data)."""
        return self._coords[0]

    @property
    def y(self) -> float:
        """Second coordinate (convenience for planar data)."""
        if len(self._coords) < 2:
            raise AttributeError("1-dimensional point has no y coordinate")
        return self._coords[1]

    def __getitem__(self, i: int) -> float:
        return self._coords[i]

    def __iter__(self) -> Iterator[float]:
        return iter(self._coords)

    def __len__(self) -> int:
        return len(self._coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self._coords == other._coords

    def __hash__(self) -> int:
        return hash(self._coords)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self._coords)
        return f"Point({inner})"

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``.

        Raises ``ValueError`` on dimension mismatch.
        """
        self._check_dim(other)
        return math.sqrt(
            sum((a - b) ** 2 for a, b in zip(self._coords, other._coords))
        )

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (cheaper; used by nearest-neighbor)."""
        self._check_dim(other)
        return sum((a - b) ** 2 for a, b in zip(self._coords, other._coords))

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        self._check_dim(other)
        return sum(abs(a - b) for a, b in zip(self._coords, other._coords))

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between ``self`` and ``other``."""
        self._check_dim(other)
        return Point(*((a + b) / 2.0 for a, b in zip(self._coords, other._coords)))

    def translated(self, offsets: Sequence[float]) -> "Point":
        """A new point shifted by ``offsets`` componentwise."""
        if len(offsets) != self.dim:
            raise ValueError(
                f"offset dimension {len(offsets)} != point dimension {self.dim}"
            )
        return Point(*(a + o for a, o in zip(self._coords, offsets)))

    def scaled(self, factor: float) -> "Point":
        """A new point with every coordinate multiplied by ``factor``."""
        return Point(*(a * factor for a in self._coords))

    def dominates(self, other: "Point") -> bool:
        """True iff every coordinate of ``self`` is >= the matching one."""
        self._check_dim(other)
        return all(a >= b for a, b in zip(self._coords, other._coords))

    def _check_dim(self, other: "Point") -> None:
        if self.dim != other.dim:
            raise ValueError(
                f"dimension mismatch: {self.dim} vs {other.dim}"
            )
