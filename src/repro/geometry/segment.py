"""Line segments in the plane, with the clipping predicates the PMR
quadtree needs.

The PMR quadtree (Nelson & Samet 1986, the paper's companion line-data
structure) stores each segment in every leaf block that it passes
through, so the fundamental predicate is segment/box intersection.  We
use the standard Cohen–Sutherland/Liang–Barsky style parametric clip,
which is exact for the axis-aligned boxes produced by regular
decomposition.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from .point import Point
from .rect import Rect


class Segment:
    """A directed line segment between two distinct planar points.

    Segments compare equal regardless of direction: ``Segment(a, b) ==
    Segment(b, a)``.  This matches the PMR quadtree's view of a segment
    as an undirected piece of geometry.
    """

    __slots__ = ("_a", "_b")

    def __init__(self, a: Point, b: Point):
        if a.dim != 2 or b.dim != 2:
            raise ValueError("segments are planar: endpoints must be 2-d")
        if a == b:
            raise ValueError("degenerate segment: endpoints coincide")
        self._a = a
        self._b = b

    @property
    def a(self) -> Point:
        """First endpoint."""
        return self._a

    @property
    def b(self) -> Point:
        """Second endpoint."""
        return self._b

    @property
    def length(self) -> float:
        """Euclidean length."""
        return self._a.distance_to(self._b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return {self._a, self._b} == {other._a, other._b}

    def __hash__(self) -> int:
        # Order-independent hash so reversed segments collide.
        return hash(frozenset((self._a, self._b)))

    def __repr__(self) -> str:
        return f"Segment({self._a!r}, {self._b!r})"

    def point_at(self, t: float) -> Point:
        """The point ``a + t*(b-a)``; ``t`` in [0,1] stays on the segment."""
        return Point(
            self._a.x + t * (self._b.x - self._a.x),
            self._a.y + t * (self._b.y - self._a.y),
        )

    def midpoint(self) -> Point:
        """The segment's midpoint."""
        return self.point_at(0.5)

    def clip_parameters(self, rect: Rect) -> Optional[Tuple[float, float]]:
        """Liang–Barsky clip of the segment against a closed box.

        Returns the parameter interval ``(t_enter, t_exit)`` of the
        portion inside the box, or ``None`` if the segment misses the
        box entirely.  The box is treated as closed here — a segment
        that only grazes a boundary still "passes through" the block
        for PMR purposes; the quadtree layer resolves boundary ties
        with the half-open point rule where it matters.
        """
        if rect.dim != 2:
            raise ValueError("segment clipping requires a 2-d box")
        dx = self._b.x - self._a.x
        dy = self._b.y - self._a.y
        t0, t1 = 0.0, 1.0
        # p, q pairs for the four box edges: p*t <= q keeps the point in.
        checks = (
            (-dx, self._a.x - rect.lo.x),
            (dx, rect.hi.x - self._a.x),
            (-dy, self._a.y - rect.lo.y),
            (dy, rect.hi.y - self._a.y),
        )
        for p, q in checks:
            if p == 0.0:
                if q < 0.0:
                    return None  # parallel and outside this edge
                continue
            r = q / p
            if p < 0.0:
                if r > t1:
                    return None
                if r > t0:
                    t0 = r
            else:
                if r < t0:
                    return None
                if r < t1:
                    t1 = r
        return (t0, t1)

    def intersects_rect(self, rect: Rect) -> bool:
        """True iff any part of the segment lies in the closed box."""
        return self.clip_parameters(rect) is not None

    def crosses_interior(self, rect: Rect) -> bool:
        """True iff the segment properly passes through the block.

        Two exclusions keep the decomposition rules well-founded:

        - zero-length overlap (corner grazing): ``t_enter == t_exit``
          would force infinite splitting at shared corners;
        - boundary riding on the *far* side: a segment lying exactly on
          a block edge belongs to the half-open side only (the block
          whose half-open membership test accepts the overlap
          midpoint), mirroring the point convention — otherwise an
          axis-aligned edge would be "in" both neighbors forever.
        """
        params = self.clip_parameters(rect)
        if params is None:
            return False
        t0, t1 = params
        if t1 - t0 <= 1e-12:
            return False
        return rect.contains_point(self.point_at((t0 + t1) / 2.0))

    def intersection_point(self, other: "Segment") -> Optional[Point]:
        """The single crossing point of two segments, or ``None``.

        Collinear overlaps return ``None`` (no *single* crossing).
        """
        ax, ay = self._a.x, self._a.y
        dx1 = self._b.x - ax
        dy1 = self._b.y - ay
        bx, by = other._a.x, other._a.y
        dx2 = other._b.x - bx
        dy2 = other._b.y - by
        denom = dx1 * dy2 - dy1 * dx2
        if math.isclose(denom, 0.0, abs_tol=1e-15):
            return None
        s = ((bx - ax) * dy2 - (by - ay) * dx2) / denom
        t = ((bx - ax) * dy1 - (by - ay) * dx1) / denom
        if 0.0 <= s <= 1.0 and 0.0 <= t <= 1.0:
            return self.point_at(s)
        return None

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the nearest point of the segment."""
        dx = self._b.x - self._a.x
        dy = self._b.y - self._a.y
        len2 = dx * dx + dy * dy
        if len2 == 0.0:
            # Endpoints distinct but so close the squared length
            # underflows; the segment is numerically a point.
            return self._a.distance_to(p)
        t = ((p.x - self._a.x) * dx + (p.y - self._a.y) * dy) / len2
        t = min(max(t, 0.0), 1.0)
        return self.point_at(t).distance_to(p)
