"""Axis-aligned boxes (rectangles in 2-d, intervals in 1-d, boxes in d-d).

Every hierarchical decomposition in this package carves space into
half-open boxes ``[lo, hi)``.  Using half-open boundaries makes the
quadrants of a split *disjoint* and their union exactly the parent —
a point on an internal boundary belongs to exactly one child.  The
tree invariant tests rely on this.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from .point import Point


class Rect:
    """A half-open axis-aligned box ``[lo, hi)`` in d dimensions.

    ``lo`` and ``hi`` are corner points; ``lo[i] < hi[i]`` must hold in
    every dimension (degenerate boxes are rejected — a quadtree block
    always has positive area).

    >>> r = Rect(Point(0, 0), Point(1, 1))
    >>> r.contains_point(Point(0, 0)), r.contains_point(Point(1, 1))
    (True, False)
    """

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: Point, hi: Point):
        if lo.dim != hi.dim:
            raise ValueError(f"corner dimension mismatch: {lo.dim} vs {hi.dim}")
        for a, b in zip(lo, hi):
            if not a < b:
                raise ValueError(f"degenerate box: lo={lo!r} hi={hi!r}")
        self._lo = lo
        self._hi = hi

    @classmethod
    def unit(cls, dim: int) -> "Rect":
        """The unit box ``[0,1)^dim`` — the default root block."""
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        return cls(Point(*([0.0] * dim)), Point(*([1.0] * dim)))

    @classmethod
    def from_bounds(cls, bounds: Sequence[Tuple[float, float]]) -> "Rect":
        """Build from a list of per-dimension ``(lo, hi)`` pairs."""
        los = [b[0] for b in bounds]
        his = [b[1] for b in bounds]
        return cls(Point(*los), Point(*his))

    @property
    def lo(self) -> Point:
        """Inclusive lower corner."""
        return self._lo

    @property
    def hi(self) -> Point:
        """Exclusive upper corner."""
        return self._hi

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self._lo.dim

    @property
    def center(self) -> Point:
        """Center point — the split point of a regular decomposition."""
        return self._lo.midpoint(self._hi)

    def side(self, i: int) -> float:
        """Extent along dimension ``i``."""
        return self._hi[i] - self._lo[i]

    @property
    def sides(self) -> Tuple[float, ...]:
        """Extents along every dimension."""
        return tuple(self._hi[i] - self._lo[i] for i in range(self.dim))

    @property
    def volume(self) -> float:
        """Product of side lengths (area in 2-d)."""
        v = 1.0
        for i in range(self.dim):
            v *= self.side(i)
        return v

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self._lo == other._lo and self._hi == other._hi

    def __hash__(self) -> int:
        return hash((self._lo, self._hi))

    def __repr__(self) -> str:
        return f"Rect({self._lo!r}, {self._hi!r})"

    def contains_point(self, p: Point) -> bool:
        """True iff ``p`` lies inside the half-open box."""
        if p.dim != self.dim:
            raise ValueError(f"dimension mismatch: {p.dim} vs {self.dim}")
        return all(
            lo <= c < hi for lo, c, hi in zip(self._lo, p, self._hi)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely within ``self``."""
        return all(
            slo <= olo and ohi <= shi
            for slo, olo, ohi, shi in zip(self._lo, other._lo, other._hi, self._hi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True iff the two half-open boxes share any point."""
        return all(
            slo < ohi and olo < shi
            for slo, olo, ohi, shi in zip(self._lo, other._lo, other._hi, self._hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping box; raises ``ValueError`` if disjoint."""
        if not self.intersects(other):
            raise ValueError(f"boxes do not intersect: {self!r}, {other!r}")
        lo = Point(*(max(a, b) for a, b in zip(self._lo, other._lo)))
        hi = Point(*(min(a, b) for a, b in zip(self._hi, other._hi)))
        return Rect(lo, hi)

    def quadrant_index(self, p: Point) -> int:
        """Index of the regular-split child containing ``p``.

        The children of a regular split are numbered by a bitmask:
        bit ``i`` is set iff ``p[i] >= center[i]``.  In 2-d this gives
        the familiar SW=0, SE=1, NW=2, NE=3 ordering.
        """
        if not self.contains_point(p):
            raise ValueError(f"{p!r} not inside {self!r}")
        c = self.center
        idx = 0
        for i in range(self.dim):
            if p[i] >= c[i]:
                idx |= 1 << i
        return idx

    def child(self, index: int) -> "Rect":
        """The ``index``-th child of a regular split (bitmask numbering)."""
        n_children = 1 << self.dim
        if not 0 <= index < n_children:
            raise ValueError(f"child index {index} out of range 0..{n_children - 1}")
        c = self.center
        los: List[float] = []
        his: List[float] = []
        for i in range(self.dim):
            if index & (1 << i):
                los.append(c[i])
                his.append(self._hi[i])
            else:
                los.append(self._lo[i])
                his.append(c[i])
        return Rect(Point(*los), Point(*his))

    @property
    def is_splittable(self) -> bool:
        """True iff a regular split produces non-degenerate children.

        Near the limits of float precision the midpoint of a very thin
        box can collide with a boundary; trees pin such blocks (treat
        them as at a depth limit) instead of splitting them.
        """
        c = self.center
        return all(
            lo < mid < hi for lo, mid, hi in zip(self._lo, c, self._hi)
        )

    def is_splittable_on(self, axis: int) -> bool:
        """True iff halving ``axis`` produces non-degenerate children."""
        if not 0 <= axis < self.dim:
            raise ValueError(f"axis {axis} out of range for dim {self.dim}")
        mid = self.center[axis]
        return self._lo[axis] < mid < self._hi[axis]

    def split(self) -> List["Rect"]:
        """All ``2^dim`` children of a regular split, in index order.

        The children are pairwise disjoint and their union is exactly
        ``self`` (a consequence of the half-open convention).
        """
        return [self.child(i) for i in range(1 << self.dim)]

    def split_binary(self, axis: int) -> Tuple["Rect", "Rect"]:
        """Halve along a single ``axis`` — the bintree split rule."""
        if not 0 <= axis < self.dim:
            raise ValueError(f"axis {axis} out of range for dim {self.dim}")
        c = self.center
        lo_his = list(self._hi.coords)
        lo_his[axis] = c[axis]
        hi_los = list(self._lo.coords)
        hi_los[axis] = c[axis]
        return (
            Rect(self._lo, Point(*lo_his)),
            Rect(Point(*hi_los), self._hi),
        )

    def corners(self) -> Iterator[Point]:
        """Iterate over the ``2^dim`` corner points."""
        axes = [(self._lo[i], self._hi[i]) for i in range(self.dim)]
        for combo in itertools.product(*axes):
            yield Point(*combo)

    def clamp(self, p: Point) -> Point:
        """The point of the *closed* box closest to ``p``.

        Used by nearest-neighbor pruning: the distance from a query
        point to a block is the distance to its clamped projection.
        """
        return Point(
            *(min(max(c, lo), hi) for lo, c, hi in zip(self._lo, p, self._hi))
        )

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to the closed box (0 if inside)."""
        return self.clamp(p).distance_to(p)
