"""Trace export: Chrome/Perfetto ``trace_event`` JSON and folded stacks.

Two complementary views of a tracer:

- :func:`export_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev.  When the tracer
  recorded per-occurrence events (``Tracer(events=N)``) they are
  exported as real complete events; otherwise a timeline is
  *synthesized* from the aggregate span tree (one ``X`` event per tree
  node, children laid out sequentially inside their parent), which
  shows proportions rather than true scheduling.  Subtrees named
  ``worker.N`` — the executor's merged pool-worker telemetry — are
  placed on their own Chrome thread row, starting at their parent's
  timestamp, so worker concurrency reads the way it ran.
- :func:`export_folded` — one ``a;b;c <self-time-µs>`` line per span
  tree node, the folded-stack format flamegraph.pl / speedscope /
  inferno consume directly.

Both accept a live :class:`~repro.obs.trace.Tracer` or a
``Tracer.to_dict()`` snapshot (the on-disk trace format).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

from .trace import SpanStats, Tracer

#: Subtree names the executor mounts per-worker telemetry under.
WORKER_NAME = re.compile(r"^worker\.(\d+)$")

_MICRO = 1e6  # seconds -> trace_event microseconds


def _as_tracer(trace: Union[Tracer, Dict[str, Any]]) -> Tracer:
    if isinstance(trace, Tracer):
        return trace
    return Tracer.from_dict(trace)


def export_chrome_trace(
    trace: Union[Tracer, Dict[str, Any]]
) -> Dict[str, Any]:
    """The tracer as a Chrome ``trace_event`` JSON object.

    Returns a dict ready for ``json.dump``: ``{"traceEvents": [...],
    "displayTimeUnit": "ms"}`` where every span event has ``ph`` (event
    phase), ``ts`` (µs), and ``dur`` (µs) fields.  Counters ride along
    as ``C`` events so Perfetto plots them as counter tracks.
    """
    tracer = _as_tracer(trace)
    events: List[Dict[str, Any]] = []
    threads: Dict[int, str] = {0: "main"}
    recorded = tracer.events
    if recorded:
        base = min(event.ts for event in recorded)
        for event in sorted(recorded, key=lambda e: e.ts):
            events.append({
                "name": event.name,
                "cat": "span",
                "ph": "X",
                "ts": (event.ts - base) * _MICRO,
                "dur": event.dur * _MICRO,
                "pid": 0,
                "tid": 0,
                "args": {"path": "/".join(event.path)},
            })
    else:
        cursor = 0.0
        for node in tracer.roots.values():
            cursor = _synthesize(node, cursor, 0, events, threads, tracer)
    for ts, (name, value) in enumerate(sorted(tracer.counters.items())):
        events.append({
            "name": name,
            "ph": "C",
            "ts": float(ts),
            "pid": 0,
            "tid": 0,
            "args": {"value": value},
        })
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in sorted(threads.items())
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def _synthesize(
    node: SpanStats,
    start_us: float,
    tid: int,
    out: List[Dict[str, Any]],
    threads: Dict[int, str],
    tracer: Tracer,
) -> float:
    """Emit one ``X`` event for ``node`` at ``start_us`` and lay its
    children out sequentially inside it; returns where the *parent's*
    cursor should continue.  ``worker.N`` nodes render on their own
    thread row and do not advance the parent cursor (they ran
    concurrently with it)."""
    worker = WORKER_NAME.match(node.name)
    if worker:
        tid = int(worker.group(1)) + 1
        threads[tid] = node.name
    args: Dict[str, Any] = {
        "count": node.count,
        "mean_ms": node.mean * 1e3,
    }
    hist = tracer.span_histograms.get(node.name)
    if hist is not None and hist.count:
        args["p50_ms"] = hist.p50 * 1e3
        args["p99_ms"] = hist.p99 * 1e3
    out.append({
        "name": node.name,
        "cat": "span",
        "ph": "X",
        "ts": start_us,
        "dur": node.total * _MICRO,
        "pid": 0,
        "tid": tid,
        "args": args,
    })
    cursor = start_us
    for child in node.children.values():
        cursor = _synthesize(child, cursor, tid, out, threads, tracer)
    if worker:
        return start_us  # concurrent: the parent's cursor stands still
    return start_us + node.total * _MICRO


def export_folded(trace: Union[Tracer, Dict[str, Any]]) -> str:
    """The span tree as folded-stack lines (``a;b;c <self-µs>``).

    Self time is the node's total minus its children's totals, clamped
    at zero (external ``record()`` durations can exceed the enclosing
    wall clock), in integer microseconds — the unit flamegraph.pl
    expects to be additive.
    """
    tracer = _as_tracer(trace)
    lines: List[str] = []

    def walk(node: SpanStats, prefix: str) -> None:
        path = prefix + node.name
        child_total = sum(c.total for c in node.children.values())
        self_us = max(0, round((node.total - child_total) * _MICRO))
        lines.append(f"{path} {self_us}")
        for child in node.children.values():
            walk(child, path + ";")

    for root in tracer.roots.values():
        walk(root, "")
    return "\n".join(lines) + ("\n" if lines else "")
