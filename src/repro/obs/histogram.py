"""Log-bucketed histograms — the distributional third of the obs layer.

The paper's central objects are *distributions* (the steady-state
occupancy vector, the phasing oscillation of the mean), and aggregates
alone (count/total/min/max) cannot show a latency distribution's shape:
a bimodal span (fast cache hits + slow rebuilds) and a uniform one
render identically.  :class:`Histogram` fixes that with the classic
log-bucketed design every production metrics system converges on
(HdrHistogram, Prometheus, DDSketch):

- **fixed geometric bucket boundaries** — powers of ``2**(1/4)``
  (four buckets per doubling, ~19% relative width) spanning 1ns to
  ~9.2e9, so every histogram in the system shares one boundary array
  and merging two histograms is element-wise addition;
- **bounded memory** — at most :data:`BUCKETS` ints regardless of how
  many values are observed, serialized sparsely;
- **quantile estimates** — p50/p90/p99 read the cumulative counts and
  return the geometric midpoint of the target bucket, clamped to the
  exact observed min/max, so estimates carry the bucket's relative
  error bound and the extremes stay exact.

Values at or below zero (gauges may observe anything) land in a
dedicated underflow bucket; values beyond the last boundary land in
the overflow bucket.  Both still count toward ``count``/``sum`` and
the exact min/max.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: Buckets per doubling of the value range (4 -> ~19% bucket width).
_PER_DOUBLING = 4

#: log2 of the first finite boundary (2**-30 ~ 0.93ns as seconds).
_LOG2_FIRST = -30

#: log2 of the last finite boundary (2**33 ~ 8.6e9 — covers seconds,
#: counts, and kilobyte-sized gauges alike).
_LOG2_LAST = 33

#: Number of finite buckets, plus one underflow (index 0) and one
#: overflow (index BUCKETS-1) bucket.
BUCKETS = (_LOG2_LAST - _LOG2_FIRST) * _PER_DOUBLING + 2

_SCALE = _PER_DOUBLING  # buckets per unit of log2(value)


def bucket_index(value: float) -> int:
    """The bucket ``value`` falls in (0 = underflow, BUCKETS-1 = overflow).

    Bucket ``i`` (for 0 < i < BUCKETS-1) covers the half-open interval
    ``(bound(i-1), bound(i)]`` where ``bound(i) = 2**(_LOG2_FIRST + i/4)``
    — a value exactly on a boundary closes its bucket.
    """
    if value <= 0.0 or not math.isfinite(value):
        return 0
    index = math.ceil((math.log2(value) - _LOG2_FIRST) * _SCALE)
    if index <= 0:
        return 0
    if index > BUCKETS - 2:
        return BUCKETS - 1
    return index


_bucket_index = bucket_index  # hot-path alias used inside observe()


def bucket_bounds(index: int) -> tuple:
    """``(low, high)`` value range of bucket ``index`` (inf-open ends)."""
    if index <= 0:
        return (float("-inf"), 2.0 ** _LOG2_FIRST)
    if index >= BUCKETS - 1:
        return (2.0 ** (_LOG2_FIRST + (BUCKETS - 2) / _SCALE), float("inf"))
    low = 2.0 ** (_LOG2_FIRST + (index - 1) / _SCALE)
    high = 2.0 ** (_LOG2_FIRST + index / _SCALE)
    return (low, high)


class Histogram:
    """Bounded log-bucketed value distribution with quantile estimates.

    >>> h = Histogram()
    >>> for v in (0.001, 0.002, 0.004):
    ...     h.observe(v)
    >>> h.count
    3
    >>> 0.001 <= h.quantile(0.5) <= 0.004
    True
    """

    __slots__ = ("count", "sum", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets: Optional[List[int]] = None  # allocated on first use

    # -- recording -----------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one value in.  Non-finite values count (overflow bucket
        for ``+inf``, underflow otherwise) but are kept out of
        ``sum``/``min``/``max`` so snapshots stay JSON-encodable."""
        self.count += 1
        if math.isfinite(value):
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            index = _bucket_index(value)
        else:
            index = BUCKETS - 1 if value > 0 else 0
        if self._buckets is None:
            self._buckets = [0] * BUCKETS
        self._buckets[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (same fixed boundaries, so this is
        element-wise addition) — commutative and associative."""
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        if other._buckets is not None:
            if self._buckets is None:
                self._buckets = list(other._buckets)
            else:
                mine = self._buckets
                for i, n in enumerate(other._buckets):
                    if n:
                        mine[i] += n

    def copy(self) -> "Histogram":
        """An independent snapshot of the current state."""
        out = Histogram()
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        if self._buckets is not None:
            out._buckets = list(self._buckets)
        return out

    def delta(self, earlier: Optional["Histogram"]) -> "Histogram":
        """What was observed *since* ``earlier``, a past snapshot of
        this histogram.

        Because a histogram only ever accumulates, the delta is exact
        bucket-wise subtraction (counts and sums included) — the
        inverse of :meth:`merge`: ``full.delta(prefix)`` merged back
        into ``prefix`` reproduces ``full`` bucket for bucket.  The
        interval's true extremes are unrecoverable, so ``min``/``max``
        come from the cumulative view, which only tightens the quantile
        clamp, never loosens it.  A snapshot that is *not* a past state
        (bucket counts would go negative — e.g. the tracer was swapped
        mid-poll) degrades to a full copy, so pollers resynchronize
        instead of seeing garbage.
        """
        if earlier is None or earlier.count == 0:
            return self.copy()
        count = self.count - earlier.count
        if count < 0:
            return self.copy()
        out = Histogram()
        if count == 0:
            return out
        theirs = earlier._buckets or [0] * BUCKETS
        buckets = [
            m - e for m, e in zip(self._buckets or [0] * BUCKETS, theirs)
        ]
        if any(n < 0 for n in buckets):
            return self.copy()
        out.count = count
        out.sum = self.sum - earlier.sum
        out.min = self.min
        out.max = self.max
        out._buckets = buckets
        return out

    # -- reading -------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact mean of everything observed (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty.

        Walks the cumulative bucket counts to the bucket containing the
        target rank and returns its geometric midpoint, clamped to the
        exact observed ``[min, max]`` so p0/p100 are exact and no
        estimate leaves the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count or self._buckets is None:
            return 0.0
        target = q * self.count
        seen = 0
        for index, n in enumerate(self._buckets):
            if not n:
                continue
            seen += n
            if seen >= target:
                low, high = bucket_bounds(index)
                if not math.isfinite(low) or low <= 0.0:
                    estimate = high
                elif not math.isfinite(high):
                    estimate = low
                else:
                    estimate = math.sqrt(low * high)  # geometric midpoint
                if self.min <= self.max:  # some finite value observed
                    estimate = min(max(estimate, self.min), self.max)
                return estimate
        return self.max if self.min <= self.max else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def is_empty(self) -> bool:
        return self.count == 0

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready sparse snapshot (only occupied buckets)."""
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }
        if self.min <= self.max:  # only when a finite value was seen
            out["min"] = self.min
            out["max"] = self.max
        if self._buckets is not None:
            out["buckets"] = {
                str(i): n for i, n in enumerate(self._buckets) if n
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`to_dict` output (quantiles recompute)."""
        h = cls()
        h.count = int(data.get("count", 0))
        h.sum = float(data.get("sum", 0.0))
        if h.count:
            h.min = float(data.get("min", float("inf")))
            h.max = float(data.get("max", float("-inf")))
        buckets = data.get("buckets")
        if buckets:
            h._buckets = [0] * BUCKETS
            for key, n in buckets.items():
                index = int(key)
                if 0 <= index < BUCKETS:
                    h._buckets[index] += int(n)
        return h

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:g}, "
            f"p50={self.p50:g}, p99={self.p99:g})"
        )
