"""Bounded per-occurrence span event recording.

Aggregate span trees (``SpanStats``) answer *where the time went*;
they cannot answer *when* — a timeline view (Chrome's ``about:tracing``,
Perfetto) needs individual occurrences with start timestamps.  The
:class:`EventRecorder` is the opt-in bridge: ``Tracer(events=N)`` keeps
the **last N completed span occurrences** in a ring buffer, so event
memory stays bounded no matter how long the run is, and
:func:`repro.obs.export.export_chrome_trace` turns them into real
``trace_event`` entries instead of synthesized ones.

Each event carries the span's full *path* (names from the root down),
its start timestamp (``time.perf_counter()`` — only differences are
meaningful, and only within one process), and its duration.  Timestamps
from merged worker tracers therefore live on separate timelines; the
exporter keeps them on separate Chrome threads so they never need to be
comparable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Tuple


class SpanEvent:
    """One completed span occurrence."""

    __slots__ = ("path", "ts", "dur")

    def __init__(self, path: Tuple[str, ...], ts: float, dur: float):
        self.path = path
        self.ts = ts
        self.dur = dur

    @property
    def name(self) -> str:
        """The span's own name (last path component)."""
        return self.path[-1] if self.path else ""

    @property
    def depth(self) -> int:
        """Nesting depth (0 = root span)."""
        return len(self.path) - 1

    def to_dict(self) -> Dict[str, Any]:
        return {"path": list(self.path), "ts": self.ts, "dur": self.dur}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanEvent":
        return cls(
            tuple(str(p) for p in data["path"]),
            float(data["ts"]),
            float(data["dur"]),
        )

    def __repr__(self) -> str:
        return (
            f"SpanEvent({'/'.join(self.path)!r}, "
            f"ts={self.ts:.6f}, dur={self.dur:.6f})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanEvent)
            and self.path == other.path
            and self.ts == other.ts
            and self.dur == other.dur
        )


class EventRecorder:
    """Ring buffer of the most recent :class:`SpanEvent` occurrences.

    >>> r = EventRecorder(2)
    >>> for i in range(3):
    ...     r.record(("a",), float(i), 0.1)
    >>> [e.ts for e in r.events], r.dropped
    ([1.0, 2.0], 1)
    """

    __slots__ = ("_ring", "_total", "capacity")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[SpanEvent] = deque(maxlen=capacity)
        self._total = 0

    def record(self, path: Tuple[str, ...], ts: float, dur: float) -> None:
        """Append one completed occurrence (oldest drops when full)."""
        self._ring.append(SpanEvent(path, ts, dur))
        self._total += 1

    def extend(self, events: Iterable[SpanEvent]) -> None:
        """Fold in already-built events (tracer merge)."""
        for event in events:
            self._ring.append(event)
            self._total += 1

    @property
    def events(self) -> List[SpanEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    @property
    def total(self) -> int:
        """Occurrences ever recorded (retained + dropped)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Occurrences the ring has forgotten."""
        return self._total - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "total": self._total,
            "spans": [event.to_dict() for event in self._ring],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EventRecorder":
        recorder = cls(int(data.get("capacity", 1)))
        for item in data.get("spans", []):
            recorder._ring.append(SpanEvent.from_dict(item))
        recorder._total = int(data.get("total", len(recorder._ring)))
        return recorder
