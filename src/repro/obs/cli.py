"""``python -m repro obs`` — inspect, diff, and export trace snapshots.

Three subcommands over saved trace JSON (raw ``Tracer.to_dict()``
snapshots, ``repro bench`` trace bundles, or full ``BENCH_*.json``
snapshots — :func:`repro.obs.diff.extract_traces` recognizes all
three):

- ``repro obs report <trace.json>`` — render each contained trace the
  way ``--verbose`` would (span tree with p50/p99, counters, gauges);
- ``repro obs diff <old.json> <new.json> [--threshold 1.5]`` — span-by-
  span latency/structural regression diff; exits nonzero iff a span's
  mean latency regressed past the threshold (CI's trace-level guard,
  complementing ``benchmarks/compare_bench.py``'s wall clocks);
- ``repro obs export <trace.json> --format chrome|folded`` — Chrome/
  Perfetto ``trace_event`` JSON or folded flamegraph stacks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .diff import (
    DEFAULT_MIN_MEAN,
    DEFAULT_THRESHOLD,
    TraceDiff,
    diff_traces,
    extract_traces,
)
from .export import export_chrome_trace, export_folded
from .trace import Tracer


def _load(path: str) -> Dict[str, Any]:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object at top level")
    return data


def _load_traces(path: str) -> Dict[str, Dict[str, Any]]:
    traces = extract_traces(_load(path))
    if not traces:
        raise SystemExit(
            f"{path}: no trace snapshots found (expected a Tracer "
            "to_dict() dump, a bench trace bundle, or a BENCH_*.json)"
        )
    return traces


def _merged_tracer(traces: Dict[str, Dict[str, Any]]) -> Tracer:
    """One tracer view of a possibly multi-trace file: a single
    anonymous trace passes through; named traces mount as subtrees."""
    if list(traces) == [""]:
        return Tracer.from_dict(traces[""])
    merged = Tracer()
    for name in sorted(traces):
        merged.graft(name, Tracer.from_dict(traces[name]))
    return merged


def _cmd_report(args: argparse.Namespace) -> int:
    traces = _load_traces(args.trace)
    first = True
    for name in sorted(traces):
        if not first:
            print()
        first = False
        if name:
            print(f"=== {name} ===")
        print(Tracer.from_dict(traces[name]).render())
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old = _load_traces(args.old)
    new = _load_traces(args.new)
    combined = TraceDiff(threshold=args.threshold)
    for name in sorted(set(old) & set(new)):
        part = diff_traces(
            old[name], new[name],
            threshold=args.threshold,
            min_mean=args.min_mean_us * 1e-6,
        )
        if name:  # qualify paths with the trace they came from
            for attr in ("regressions", "improvements"):
                setattr(part, attr, [
                    type(d)(f"{name}/{d.path}", d.old_mean, d.new_mean,
                            d.old_count, d.new_count)
                    for d in getattr(part, attr)
                ])
            part.added = [f"{name}/{p}" for p in part.added]
            part.removed = [f"{name}/{p}" for p in part.removed]
        combined.merge(part)
    for name in sorted(set(old) ^ set(new)):
        side = "new" if name in new else "old"
        print(f"note: trace '{name}' only in {side} snapshot; skipped")
    print(combined.render())
    return 0 if combined.ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    traces = _load_traces(args.trace)
    tracer = _merged_tracer(traces)
    if args.format == "chrome":
        text = json.dumps(export_chrome_trace(tracer), indent=1)
    else:
        text = export_folded(tracer)
    if args.out == "-":
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
    else:
        Path(args.out).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )
        print(f"wrote {args.format} trace to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Inspect, diff, and export repro trace snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a trace snapshot like --verbose would"
    )
    report.add_argument("trace", help="trace JSON (snapshot or BENCH file)")
    report.set_defaults(fn=_cmd_report)

    diff = sub.add_parser(
        "diff",
        help="span-level regression diff; exits 1 on latency regression",
    )
    diff.add_argument("old", help="baseline trace JSON")
    diff.add_argument("new", help="candidate trace JSON")
    diff.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed per-span mean slowdown factor (default: %(default)s)",
    )
    diff.add_argument(
        "--min-mean-us", type=float, default=DEFAULT_MIN_MEAN * 1e6,
        help="ignore spans whose means stay under this many microseconds "
             "on both sides (default: %(default)s)",
    )
    diff.set_defaults(fn=_cmd_diff)

    export = sub.add_parser(
        "export", help="emit Chrome/Perfetto JSON or folded stacks"
    )
    export.add_argument("trace", help="trace JSON (snapshot or BENCH file)")
    export.add_argument(
        "--format", choices=("chrome", "folded"), default="chrome",
        help="output format (default: %(default)s)",
    )
    export.add_argument(
        "--out", default="-", metavar="PATH",
        help="output path ('-' = stdout, the default)",
    )
    export.set_defaults(fn=_cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "diff" and args.threshold <= 1.0:
        build_parser().error(
            f"--threshold must be > 1, got {args.threshold}"
        )
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
