"""Lightweight structured instrumentation: spans, counters, gauges.

Everything the runtime, harness, quadtree, and solvers record flows
through this package's module-level helpers (:func:`span`,
:func:`count`, :func:`gauge`, :func:`record`), which are near-free when
no tracer is installed.  ``python -m repro ... --verbose`` and
``python -m repro bench`` install a :class:`Tracer` and print/serialize
its span tree.  The package depends only on the standard library, so
any layer may import it without cycles.
"""

from .events import EventRecorder, SpanEvent
from .histogram import Histogram
from .trace import (
    NULL_SPAN,
    GaugeStats,
    SpanStats,
    Tracer,
    active_tracer,
    count,
    enabled,
    gauge,
    record,
    span,
    tracing,
)
from .export import export_chrome_trace, export_folded
from .diff import TraceDiff, diff_traces

__all__ = [
    "NULL_SPAN",
    "EventRecorder",
    "GaugeStats",
    "Histogram",
    "SpanEvent",
    "SpanStats",
    "TraceDiff",
    "Tracer",
    "active_tracer",
    "count",
    "diff_traces",
    "enabled",
    "export_chrome_trace",
    "export_folded",
    "gauge",
    "record",
    "span",
    "tracing",
]
