"""Structured run instrumentation: spans, counters, gauges, histograms.

A :class:`Tracer` accumulates four kinds of signal:

- **spans** — hierarchical wall-clock timers.  Entering a span nests it
  under the currently open one, and repeated spans with the same name
  at the same position *aggregate* (count, total, min, max) instead of
  growing a list, so tracing a 10,000-trial run costs bounded memory;
- **counters** — monotonically accumulating event counts
  (``cache.hit``, ``tree.split``, ...);
- **gauges** — last/min/max/mean of an observed value
  (``tree.max_depth``, ``solver.residual``, ...);
- **histograms** — a log-bucketed :class:`~repro.obs.histogram.Histogram`
  per span name and per gauge, recorded alongside the aggregates, so
  snapshots carry p50/p90/p99 latency estimates, not just means.

``Tracer(events=N)`` additionally keeps the last N completed span
occurrences in a bounded ring buffer
(:class:`~repro.obs.events.EventRecorder`) for timeline export.

Instrumented code never talks to a tracer directly.  It calls the
module-level helpers :func:`span`, :func:`count`, :func:`gauge`, and
:func:`record`, which route to the innermost tracer installed with
:func:`tracing` — or do (almost) nothing when none is installed.  That
is the overhead contract: a disabled call site is one list check plus
at most one no-op context manager, so instrumentation can stay threaded
through hot paths permanently (see ``tests/test_obs_overhead.py``).

The tracer is single-threaded per process and needs no locking: pool
workers each run under their *own* tracer whose snapshot travels back
with the chunk result, and the coordinator folds those snapshots in
with :meth:`Tracer.merge`/:meth:`Tracer.graft` — see
``runtime/executor.py``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .events import EventRecorder, SpanEvent
from .histogram import Histogram


@dataclass
class SpanStats:
    """Aggregated statistics for one span name at one tree position."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    children: "Dict[str, SpanStats]" = field(default_factory=dict)

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never closed)."""
        return self.total / self.count if self.count else 0.0

    def child(self, name: str) -> "SpanStats":
        """The child aggregate named ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanStats(name)
            self.children[name] = node
        return node

    def add(self, elapsed: float) -> None:
        """Fold one completed occurrence into the aggregate."""
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    def merge(self, other: "SpanStats") -> None:
        """Fold another aggregate (same position, any name) in,
        recursively merging children by name.  Commutative and
        associative up to child insertion order."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for name, child in other.children.items():
            self.child(name).merge(child)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (children keyed by name)."""
        out: Dict[str, Any] = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
        }
        if self.count:
            out["min_s"] = self.min
            out["max_s"] = self.max
        if self.children:
            out["children"] = {
                name: node.to_dict()
                for name, node in self.children.items()
            }
        return out

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "SpanStats":
        """Rebuild an aggregate (sub)tree from :meth:`to_dict` output."""
        node = cls(
            name,
            count=int(data.get("count", 0)),
            total=float(data.get("total_s", 0.0)),
            min=float(data.get("min_s", float("inf"))),
            max=float(data.get("max_s", 0.0)),
        )
        for child_name, child in data.get("children", {}).items():
            node.children[child_name] = cls.from_dict(child_name, child)
        return node


@dataclass
class GaugeStats:
    """Last/min/max/mean of an observed value."""

    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    total: float = 0.0
    count: int = 0

    def observe(self, value: float) -> None:
        self.last = value
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "GaugeStats") -> None:
        """Fold another gauge aggregate in.  ``last`` takes the merged
        side's value when it observed anything (merge order stands in
        for recency); everything else is order-independent."""
        if other.count:
            self.last = other.last
        self.total += other.total
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation.  ``min``/``max`` are omitted for
        a never-observed gauge — their ``inf``/``-inf`` sentinels are
        not valid JSON (mirrors :meth:`SpanStats.to_dict`)."""
        out: Dict[str, Any] = {
            "last": self.last,
            "mean": self.mean,
            "total": self.total,
            "count": self.count,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GaugeStats":
        """Rebuild from :meth:`to_dict` output (``total`` preferred,
        ``mean * count`` accepted for older snapshots)."""
        count = int(data.get("count", 0))
        if "total" in data:
            total = float(data["total"])
        else:
            total = float(data.get("mean", 0.0)) * count
        return cls(
            last=float(data.get("last", 0.0)),
            min=float(data.get("min", float("inf"))),
            max=float(data.get("max", float("-inf"))),
            total=total,
            count=count,
        )


class _SpanHandle:
    """Context manager for one live span occurrence."""

    __slots__ = ("_tracer", "_name", "_began")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self._name)
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._close(
            time.perf_counter() - self._began, began=self._began
        )


class _NullSpan:
    """Shared do-nothing span for disabled instrumentation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, counters, and gauges for one run.

    >>> t = Tracer()
    >>> with t.span("build"):
    ...     with t.span("insert"):
    ...         pass
    >>> t.roots["build"].children["insert"].count
    1
    """

    def __init__(self, enabled: bool = True, events: int = 0):
        self.enabled = enabled
        self._root = SpanStats("")
        self._stack: List[SpanStats] = [self._root]
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, GaugeStats] = {}
        self._span_hist: Dict[str, Histogram] = {}
        self._gauge_hist: Dict[str, Histogram] = {}
        self._events: Optional[EventRecorder] = (
            EventRecorder(events) if events > 0 else None
        )

    # -- recording -----------------------------------------------------

    def span(self, name: str) -> Any:
        """A context manager timing one occurrence of ``name`` nested
        under whatever span is currently open."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name)

    def _open(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))

    def _close(
        self, elapsed: float, began: Optional[float] = None
    ) -> None:
        node = self._stack.pop()
        node.add(elapsed)
        self._observe_span(node.name, elapsed)
        if self._events is not None:
            path = tuple(n.name for n in self._stack[1:]) + (node.name,)
            if began is None:
                began = time.perf_counter() - elapsed
            self._events.record(path, began, elapsed)

    def _observe_span(self, name: str, elapsed: float) -> None:
        hist = self._span_hist.get(name)
        if hist is None:
            hist = self._span_hist[name] = Histogram()
        hist.observe(elapsed)

    def record(self, name: str, elapsed: float) -> None:
        """Fold an externally measured duration in as a child span of
        the currently open one (pool chunks time themselves in the
        worker and report back)."""
        if self.enabled:
            self._stack[-1].child(name).add(elapsed)
            self._observe_span(name, elapsed)
            if self._events is not None:
                path = tuple(n.name for n in self._stack[1:]) + (name,)
                self._events.record(
                    path, time.perf_counter() - elapsed, elapsed
                )

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Observe ``value`` on the gauge ``name``."""
        if self.enabled:
            stats = self._gauges.get(name)
            if stats is None:
                stats = GaugeStats()
                self._gauges[name] = stats
            stats.observe(value)
            hist = self._gauge_hist.get(name)
            if hist is None:
                hist = self._gauge_hist[name] = Histogram()
            hist.observe(value)

    # -- merging (worker telemetry) ------------------------------------

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's recordings in at matching positions:
        span trees merge recursively by name, counters sum, gauges and
        histograms combine, retained events concatenate (bounded by
        this tracer's ring).  Commutative and associative on everything
        except gauge ``last`` (merge order stands in for recency) and
        which events a full ring retains.
        """
        for name, child in other._root.children.items():
            self._root.child(name).merge(child)
        self._merge_scalars(other)

    def graft(
        self,
        name: str,
        other: "Tracer",
        count: int = 1,
        total: Optional[float] = None,
    ) -> None:
        """Attach ``other``'s span tree under a child named ``name`` of
        the currently open span, and fold its counters, gauges,
        histograms, and events into this tracer.

        The executor uses this to mount each pool worker's merged
        telemetry as a ``worker.N`` subtree: ``count`` is how many
        chunks the worker ran, ``total`` its busy wall-clock (defaults
        to the sum of the grafted root spans' totals).
        """
        if not self.enabled:
            return
        if total is None:
            total = sum(c.total for c in other._root.children.values())
        node = self._stack[-1].child(name)
        node.add(total)
        node.count += count - 1
        for child in other._root.children.values():
            node.child(child.name).merge(child)
        self._observe_span(name, total)
        self._merge_scalars(other)

    def _merge_scalars(self, other: "Tracer") -> None:
        """Counters, gauges, histograms, and events — everything that
        merges position-independently."""
        for name, n in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + n
        for name, stats in other._gauges.items():
            mine = self._gauges.get(name)
            if mine is None:
                self._gauges[name] = mine = GaugeStats()
            mine.merge(stats)
        for target, source in (
            (self._span_hist, other._span_hist),
            (self._gauge_hist, other._gauge_hist),
        ):
            for name, hist in source.items():
                mine_h = target.get(name)
                if mine_h is None:
                    target[name] = mine_h = Histogram()
                mine_h.merge(hist)
        if other._events is not None and len(other._events):
            if self._events is None:
                self._events = EventRecorder(other._events.capacity)
            self._events.extend(other._events.events)

    # -- reading -------------------------------------------------------

    @property
    def roots(self) -> Dict[str, SpanStats]:
        """Top-level span aggregates by name."""
        return self._root.children

    @property
    def counters(self) -> Dict[str, int]:
        """Counter values by name."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, GaugeStats]:
        """Gauge aggregates by name."""
        return dict(self._gauges)

    @property
    def span_histograms(self) -> Dict[str, Histogram]:
        """Per-span-name latency histograms (flat, across positions)."""
        return dict(self._span_hist)

    @property
    def gauge_histograms(self) -> Dict[str, Histogram]:
        """Per-gauge value histograms."""
        return dict(self._gauge_hist)

    @property
    def events(self) -> List[SpanEvent]:
        """Retained span events (empty unless ``Tracer(events=N)``)."""
        return self._events.events if self._events is not None else []

    @property
    def events_dropped(self) -> int:
        """Events the bounded ring has forgotten."""
        return self._events.dropped if self._events is not None else 0

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 at rest)."""
        return len(self._stack) - 1

    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return (
            not self._root.children
            and not self._counters
            and not self._gauges
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: span tree, counters, gauges, histograms,
        plus retained events when a ring buffer is attached."""
        out: Dict[str, Any] = {
            "spans": {
                name: node.to_dict() for name, node in self.roots.items()
            },
            "counters": dict(self._counters),
            "gauges": {
                name: stats.to_dict()
                for name, stats in self._gauges.items()
            },
        }
        if self._span_hist or self._gauge_hist:
            out["histograms"] = {
                "spans": {
                    name: hist.to_dict()
                    for name, hist in self._span_hist.items()
                },
                "gauges": {
                    name: hist.to_dict()
                    for name, hist in self._gauge_hist.items()
                },
            }
        if self._events is not None:
            out["events"] = self._events.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Tracer":
        """Rebuild a (closed) tracer from :meth:`to_dict` output — the
        transport for worker snapshots and saved trace files.  Unknown
        keys are ignored; missing sections come back empty."""
        tracer = cls()
        for name, node in data.get("spans", {}).items():
            tracer._root.children[name] = SpanStats.from_dict(name, node)
        for name, n in data.get("counters", {}).items():
            tracer._counters[name] = int(n)
        for name, stats in data.get("gauges", {}).items():
            tracer._gauges[name] = GaugeStats.from_dict(stats)
        histograms = data.get("histograms", {})
        for name, hist in histograms.get("spans", {}).items():
            tracer._span_hist[name] = Histogram.from_dict(hist)
        for name, hist in histograms.get("gauges", {}).items():
            tracer._gauge_hist[name] = Histogram.from_dict(hist)
        if "events" in data:
            tracer._events = EventRecorder.from_dict(data["events"])
        return tracer

    def render(self) -> str:
        """Human-readable digest: indented span tree (with p50/p99 from
        the per-name histograms), then counters and gauges — what
        ``--verbose`` prints."""
        lines: List[str] = []
        if self._root.children:
            lines.append("span tree:")
            width = max(
                (len(name) + 2 * depth for name, depth
                 in _walk_names(self._root.children, 0)),
                default=0,
            )
            for node, depth in _walk(self._root.children, 0):
                label = "  " * depth + node.name
                line = (
                    f"  {label:<{width}}  {node.count:>6}x  "
                    f"total {node.total:>9.4f}s  mean {node.mean:>9.6f}s"
                )
                hist = self._span_hist.get(node.name)
                if hist is not None and hist.count:
                    line += (
                        f"  p50 {hist.p50:>9.6f}s  p99 {hist.p99:>9.6f}s"
                    )
                lines.append(line)
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name} = {self._counters[name]}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                g = self._gauges[name]
                line = (
                    f"  {name}: last={g.last:g} min={g.min:g} "
                    f"max={g.max:g} mean={g.mean:g} (n={g.count})"
                )
                hist = self._gauge_hist.get(name)
                if hist is not None and hist.count:
                    line += f" p50={hist.p50:g} p99={hist.p99:g}"
                lines.append(line)
        if self._events is not None and len(self._events):
            lines.append(
                f"events: {len(self._events)} retained"
                + (
                    f" ({self._events.dropped} dropped)"
                    if self._events.dropped else ""
                )
            )
        return "\n".join(lines) if lines else "(no instrumentation recorded)"


def _walk(children: Dict[str, SpanStats], depth: int):
    for name in children:
        node = children[name]
        yield node, depth
        yield from _walk(node.children, depth + 1)


def _walk_names(children: Dict[str, SpanStats], depth: int):
    for node, d in _walk(children, depth):
        yield node.name, d


# ----------------------------------------------------------------------
# ambient tracer
# ----------------------------------------------------------------------

_ACTIVE: List[Tracer] = []


def active_tracer() -> Optional[Tracer]:
    """The innermost installed tracer, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (default: a fresh enabled one) as the ambient
    tracer for the dynamic extent of the ``with`` block.  Nests; the
    innermost wins."""
    if tracer is None:
        tracer = Tracer()
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()


def span(name: str) -> Any:
    """Time a block under the ambient tracer (no-op context manager
    when tracing is off)."""
    if not _ACTIVE:
        return NULL_SPAN
    return _ACTIVE[-1].span(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the ambient tracer, if any."""
    if _ACTIVE:
        _ACTIVE[-1].count(name, n)


def gauge(name: str, value: float) -> None:
    """Observe a gauge value on the ambient tracer, if any."""
    if _ACTIVE:
        _ACTIVE[-1].gauge(name, value)


def record(name: str, elapsed: float) -> None:
    """Record an externally measured duration on the ambient tracer."""
    if _ACTIVE:
        _ACTIVE[-1].record(name, elapsed)


def enabled() -> bool:
    """Whether an enabled tracer is currently ambient (lets call sites
    skip *computing* expensive observations, not just recording them)."""
    return bool(_ACTIVE) and _ACTIVE[-1].enabled
