"""Structured run instrumentation: spans, counters, gauges.

A :class:`Tracer` accumulates three kinds of signal:

- **spans** — hierarchical wall-clock timers.  Entering a span nests it
  under the currently open one, and repeated spans with the same name
  at the same position *aggregate* (count, total, min, max) instead of
  growing a list, so tracing a 10,000-trial run costs bounded memory;
- **counters** — monotonically accumulating event counts
  (``cache.hit``, ``tree.split``, ...);
- **gauges** — last/min/max/mean of an observed value
  (``tree.max_depth``, ``solver.residual``, ...).

Instrumented code never talks to a tracer directly.  It calls the
module-level helpers :func:`span`, :func:`count`, :func:`gauge`, and
:func:`record`, which route to the innermost tracer installed with
:func:`tracing` — or do (almost) nothing when none is installed.  That
is the overhead contract: a disabled call site is one list check plus
at most one no-op context manager, so instrumentation can stay threaded
through hot paths permanently (see ``tests/test_obs_overhead.py``).

The tracer is deliberately single-threaded per process: pool workers
run with no tracer installed (their timings come back with their chunk
results), so the coordinating process owns the only live instance and
no locking is needed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class SpanStats:
    """Aggregated statistics for one span name at one tree position."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    children: "Dict[str, SpanStats]" = field(default_factory=dict)

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never closed)."""
        return self.total / self.count if self.count else 0.0

    def child(self, name: str) -> "SpanStats":
        """The child aggregate named ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanStats(name)
            self.children[name] = node
        return node

    def add(self, elapsed: float) -> None:
        """Fold one completed occurrence into the aggregate."""
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (children keyed by name)."""
        out: Dict[str, Any] = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
        }
        if self.count:
            out["min_s"] = self.min
            out["max_s"] = self.max
        if self.children:
            out["children"] = {
                name: node.to_dict()
                for name, node in self.children.items()
            }
        return out


@dataclass
class GaugeStats:
    """Last/min/max/mean of an observed value."""

    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    total: float = 0.0
    count: int = 0

    def observe(self, value: float) -> None:
        self.last = value
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "count": self.count,
        }


class _SpanHandle:
    """Context manager for one live span occurrence."""

    __slots__ = ("_tracer", "_name", "_began")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self._name)
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._close(time.perf_counter() - self._began)


class _NullSpan:
    """Shared do-nothing span for disabled instrumentation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, counters, and gauges for one run.

    >>> t = Tracer()
    >>> with t.span("build"):
    ...     with t.span("insert"):
    ...         pass
    >>> t.roots["build"].children["insert"].count
    1
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._root = SpanStats("")
        self._stack: List[SpanStats] = [self._root]
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, GaugeStats] = {}

    # -- recording -----------------------------------------------------

    def span(self, name: str) -> Any:
        """A context manager timing one occurrence of ``name`` nested
        under whatever span is currently open."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name)

    def _open(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))

    def _close(self, elapsed: float) -> None:
        self._stack.pop().add(elapsed)

    def record(self, name: str, elapsed: float) -> None:
        """Fold an externally measured duration in as a child span of
        the currently open one (pool chunks time themselves in the
        worker and report back)."""
        if self.enabled:
            self._stack[-1].child(name).add(elapsed)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Observe ``value`` on the gauge ``name``."""
        if self.enabled:
            stats = self._gauges.get(name)
            if stats is None:
                stats = GaugeStats()
                self._gauges[name] = stats
            stats.observe(value)

    # -- reading -------------------------------------------------------

    @property
    def roots(self) -> Dict[str, SpanStats]:
        """Top-level span aggregates by name."""
        return self._root.children

    @property
    def counters(self) -> Dict[str, int]:
        """Counter values by name."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, GaugeStats]:
        """Gauge aggregates by name."""
        return dict(self._gauges)

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 at rest)."""
        return len(self._stack) - 1

    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return (
            not self._root.children
            and not self._counters
            and not self._gauges
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: span tree, counters, gauges."""
        return {
            "spans": {
                name: node.to_dict() for name, node in self.roots.items()
            },
            "counters": dict(self._counters),
            "gauges": {
                name: stats.to_dict()
                for name, stats in self._gauges.items()
            },
        }

    def render(self) -> str:
        """Human-readable digest: indented span tree, then counters and
        gauges — what ``--verbose`` prints."""
        lines: List[str] = []
        if self._root.children:
            lines.append("span tree:")
            width = max(
                (len(name) + 2 * depth for name, depth
                 in _walk_names(self._root.children, 0)),
                default=0,
            )
            for node, depth in _walk(self._root.children, 0):
                label = "  " * depth + node.name
                lines.append(
                    f"  {label:<{width}}  {node.count:>6}x  "
                    f"total {node.total:>9.4f}s  mean {node.mean:>9.6f}s"
                )
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name} = {self._counters[name]}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                g = self._gauges[name]
                lines.append(
                    f"  {name}: last={g.last:g} min={g.min:g} "
                    f"max={g.max:g} mean={g.mean:g} (n={g.count})"
                )
        return "\n".join(lines) if lines else "(no instrumentation recorded)"


def _walk(children: Dict[str, SpanStats], depth: int):
    for name in children:
        node = children[name]
        yield node, depth
        yield from _walk(node.children, depth + 1)


def _walk_names(children: Dict[str, SpanStats], depth: int):
    for node, d in _walk(children, depth):
        yield node.name, d


# ----------------------------------------------------------------------
# ambient tracer
# ----------------------------------------------------------------------

_ACTIVE: List[Tracer] = []


def active_tracer() -> Optional[Tracer]:
    """The innermost installed tracer, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (default: a fresh enabled one) as the ambient
    tracer for the dynamic extent of the ``with`` block.  Nests; the
    innermost wins."""
    if tracer is None:
        tracer = Tracer()
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()


def span(name: str) -> Any:
    """Time a block under the ambient tracer (no-op context manager
    when tracing is off)."""
    if not _ACTIVE:
        return NULL_SPAN
    return _ACTIVE[-1].span(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the ambient tracer, if any."""
    if _ACTIVE:
        _ACTIVE[-1].count(name, n)


def gauge(name: str, value: float) -> None:
    """Observe a gauge value on the ambient tracer, if any."""
    if _ACTIVE:
        _ACTIVE[-1].gauge(name, value)


def record(name: str, elapsed: float) -> None:
    """Record an externally measured duration on the ambient tracer."""
    if _ACTIVE:
        _ACTIVE[-1].record(name, elapsed)


def enabled() -> bool:
    """Whether an enabled tracer is currently ambient (lets call sites
    skip *computing* expensive observations, not just recording them)."""
    return bool(_ACTIVE) and _ACTIVE[-1].enabled
