"""Structural/latency regression diffing over span-tree snapshots.

``repro obs diff old.json new.json`` answers the question CI actually
asks — *did anything get slower?* — from the traces the system already
records, instead of from wall clocks alone
(``benchmarks/compare_bench.py`` keeps that job).  The unit of
comparison is the span-tree node: for every path present in both
snapshots the per-call mean latency is compared, and a node whose new
mean exceeds ``threshold ×`` its old mean is a **regression** (the
exit-nonzero signal).  Means below ``min_mean`` seconds on both sides
are ignored — micro-spans flap by integer multiples from scheduler
noise alone.  Paths present on only one side are reported as
**structural** changes (added/removed) but do not fail the diff:
adding a stage or renaming a span is a deliberate act, visible in
review.

Snapshots may be raw ``Tracer.to_dict()`` dicts or anything
:func:`extract_traces` understands (bench ``BENCH_*.json`` snapshots,
``repro bench`` trace bundles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Default per-call mean floor (seconds) below which spans are ignored.
DEFAULT_MIN_MEAN = 50e-6

#: Default allowed slowdown factor.
DEFAULT_THRESHOLD = 1.5


@dataclass(frozen=True)
class SpanDelta:
    """One span path whose latency moved past the threshold."""

    path: str
    old_mean: float
    new_mean: float
    old_count: int
    new_count: int

    @property
    def ratio(self) -> float:
        """new mean / old mean (inf when the old mean was zero)."""
        if self.old_mean <= 0.0:
            return float("inf")
        return self.new_mean / self.old_mean

    def describe(self) -> str:
        return (
            f"{self.path}: mean {self.old_mean * 1e3:.3f}ms -> "
            f"{self.new_mean * 1e3:.3f}ms ({self.ratio:.2f}x, "
            f"n={self.old_count}->{self.new_count})"
        )


@dataclass
class TraceDiff:
    """Everything one snapshot comparison found."""

    threshold: float = DEFAULT_THRESHOLD
    regressions: List[SpanDelta] = field(default_factory=list)
    improvements: List[SpanDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        """True when no span regressed past the threshold."""
        return not self.regressions

    def merge(self, other: "TraceDiff") -> None:
        """Fold another diff in (multi-trace bundles diff per trace)."""
        self.regressions.extend(other.regressions)
        self.improvements.extend(other.improvements)
        self.added.extend(other.added)
        self.removed.extend(other.removed)
        self.compared += other.compared

    def render(self) -> str:
        """Human-readable report, regressions first."""
        lines: List[str] = []
        for delta in self.regressions:
            lines.append(f"REGRESSION: {delta.describe()}")
        for delta in self.improvements:
            lines.append(f"improved:   {delta.describe()}")
        for path in self.added:
            lines.append(f"added:      {path}")
        for path in self.removed:
            lines.append(f"removed:    {path}")
        verdict = (
            f"{len(self.regressions)} regression(s) past "
            f"{self.threshold:g}x over {self.compared} compared span(s)"
            if self.regressions
            else f"ok: {self.compared} compared span(s) within "
                 f"{self.threshold:g}x"
        )
        lines.append(verdict)
        return "\n".join(lines)


def flatten_spans(
    spans: Dict[str, Any], prefix: str = ""
) -> Dict[str, Dict[str, Any]]:
    """``{"a": {..., "children": {"b": ...}}}`` -> ``{"a": ..., "a/b": ...}``."""
    flat: Dict[str, Dict[str, Any]] = {}
    for name, node in spans.items():
        path = f"{prefix}{name}"
        flat[path] = node
        children = node.get("children")
        if children:
            flat.update(flatten_spans(children, path + "/"))
    return flat


def _mean_seconds(node: Dict[str, Any]) -> float:
    if "mean_s" in node:
        return float(node["mean_s"])
    count = int(node.get("count", 0))
    return float(node.get("total_s", 0.0)) / count if count else 0.0


def diff_traces(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_mean: float = DEFAULT_MIN_MEAN,
) -> TraceDiff:
    """Compare two ``Tracer.to_dict()`` snapshots span by span.

    A shared path regresses when ``new_mean > old_mean * threshold``
    and improves when ``new_mean * threshold < old_mean`` — but only
    when the larger side reaches ``min_mean`` seconds, so noise-scale
    spans cannot flip the verdict either way.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    old_flat = flatten_spans(old.get("spans", {}))
    new_flat = flatten_spans(new.get("spans", {}))
    diff = TraceDiff(threshold=threshold)
    for path in sorted(set(old_flat) | set(new_flat)):
        if path not in old_flat:
            diff.added.append(path)
            continue
        if path not in new_flat:
            diff.removed.append(path)
            continue
        old_node, new_node = old_flat[path], new_flat[path]
        old_count = int(old_node.get("count", 0))
        new_count = int(new_node.get("count", 0))
        if not old_count or not new_count:
            continue
        old_mean = _mean_seconds(old_node)
        new_mean = _mean_seconds(new_node)
        diff.compared += 1
        if max(old_mean, new_mean) < min_mean:
            continue
        delta = SpanDelta(path, old_mean, new_mean, old_count, new_count)
        if new_mean > old_mean * threshold:
            diff.regressions.append(delta)
        elif new_mean * threshold < old_mean:
            diff.improvements.append(delta)
    return diff


def extract_traces(data: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Every tracer snapshot a JSON document contains, by name.

    Understands three shapes:

    - a raw ``Tracer.to_dict()`` snapshot (has ``"spans"``) — one
      anonymous trace;
    - a ``repro bench`` trace bundle (``{"stages": {name: snapshot}}``
      where each stage value *is* a snapshot);
    - a full ``BENCH_*.json`` snapshot, where each stage carries its
      tracer(s) under ``"trace"`` / ``"*_trace"`` keys — named
      ``stage`` or ``stage.serial`` / ``stage.pool`` accordingly.
    """
    if "spans" in data:
        return {"": data}
    traces: Dict[str, Dict[str, Any]] = {}
    for stage_name, stage in data.get("stages", {}).items():
        if not isinstance(stage, dict):
            continue
        if "spans" in stage:  # trace bundle: the stage IS a snapshot
            traces[stage_name] = stage
            continue
        for key, value in stage.items():
            if not isinstance(value, dict) or "spans" not in value:
                continue
            if key == "trace":
                traces[stage_name] = value
            elif key.endswith("_trace"):
                traces[f"{stage_name}.{key[:-len('_trace')]}"] = value
    return traces
