"""repro — population analysis for hierarchical data structures.

A full reproduction of Nelson & Samet, *"A Population Analysis for
Hierarchical Data Structures"* (SIGMOD 1987): the population model and
its solvers, the hierarchical structures it describes (PR quadtree
family, PMR quadtree, extendible hashing, grid file, EXCELL), the
statistical baseline it contrasts against, and the complete experiment
harness regenerating every table and figure in the paper.

Quickstart::

    from repro import PopulationModel, PRQuadtree, UniformPoints

    model = PopulationModel(capacity=4)
    print(model.expected_distribution())   # Table 1 theory row, m=4
    print(model.average_occupancy())       # Table 2 theory value, m=4

    tree = PRQuadtree(capacity=4)
    tree.insert_many(UniformPoints(seed=0).generate(1000))
    print(tree.occupancy_census().proportions())  # the experiment
"""

from .core import (
    AreaWeightedModel,
    ModelComparison,
    OscillationFit,
    PMRPopulationModel,
    PopulationModel,
    SteadyState,
    post_split_average_occupancy,
    solve_analytic,
    solve_eigen,
    solve_fixed_point_iteration,
    solve_newton,
    transform_matrix,
)
from .excell import Excell
from .experiments import (
    run_figure2,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from .geometry import Point, Rect, Segment
from .gridfile import GridFile
from .hashing import ExtendibleHashing
from .quadtree import (
    CensusAccumulator,
    DepthCensus,
    OccupancyCensus,
    PMRQuadtree,
    PointQuadtree,
    PRBintree,
    PRQuadtree,
)
from .runtime import (
    ExperimentSpec,
    ResultCache,
    RunReport,
    RuntimeConfig,
    runtime_session,
)
from .storage import BufferPool, PagedPRQuadtree, PageFile
from .workloads import (
    ClusteredPoints,
    DiagonalPoints,
    GaussianPoints,
    RandomSegments,
    UniformPoints,
    logarithmic_sample_sizes,
)

__version__ = "1.0.0"

__all__ = [
    "AreaWeightedModel",
    "CensusAccumulator",
    "BufferPool",
    "ClusteredPoints",
    "DepthCensus",
    "DiagonalPoints",
    "Excell",
    "ExperimentSpec",
    "ExtendibleHashing",
    "GaussianPoints",
    "GridFile",
    "ModelComparison",
    "OccupancyCensus",
    "OscillationFit",
    "PMRPopulationModel",
    "PMRQuadtree",
    "PageFile",
    "PagedPRQuadtree",
    "Point",
    "PointQuadtree",
    "PopulationModel",
    "PRBintree",
    "PRQuadtree",
    "RandomSegments",
    "Rect",
    "ResultCache",
    "RunReport",
    "RuntimeConfig",
    "Segment",
    "SteadyState",
    "UniformPoints",
    "logarithmic_sample_sizes",
    "post_split_average_occupancy",
    "run_figure2",
    "run_figure3",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "runtime_session",
    "solve_analytic",
    "solve_eigen",
    "solve_fixed_point_iteration",
    "solve_newton",
    "transform_matrix",
]
