"""The pinned performance suite — ``python -m repro bench``.

Eight stages exercise the hot paths the runtime owns, each under its
own :class:`~repro.obs.Tracer` so the snapshot records *where* the
time went, not just how much there was:

- **build** — cold serial tree construction (the harness's inner loop);
- **census** — occupancy + per-depth censuses over a prebuilt tree;
- **parallel** — the same workload serial vs. the persistent
  shared-memory process pool on the pinned engine (vector, where the
  pool's batched kernel path applies), reporting the headline speedup
  plus an object-engine cross-check; the pool is warmed untimed first
  so the number measures the steady state a sweep actually sees;
- **warm_cache** — cold store then warm load through the result cache,
  reporting hit latency;
- **storage** — cold build of a disk-backed tree (one bucket per page
  through the buffer pool), then the same nearest-neighbor queries
  against a cold and a warm pool, reporting the hit-rate shift, plus
  the sorted bulk-load path building the same point set in one
  sequential pass (census-checked against the incremental build);
- **kernels** — object-tree build+census vs. the vectorized
  Morton-code census engine on the same points, verifying the
  censuses match bit for bit while reporting the speedup;
- **queries** — object-tree walks vs. the batch query kernels
  (range / k-NN / partial match) on identical seeded query batches,
  with the bit-identical parity check on and per-op speedups
  reported;
- **serve** — an in-process :mod:`repro.service` server (WAL, group
  commit, periodic checkpoints) driven by the pipelined load generator
  over a real localhost socket, reporting durable-acknowledged ops/s,
  insert latency percentiles, and the group-commit batch shape.

Every stage runs one untimed warmup first (imports, allocator pools,
numpy dispatch) so first-call outliers stay out of the statistics, and
reports a uniform ``stage_wall_s`` that CI diffs against the committed
baseline (``benchmarks/compare_bench.py``) plus a ``stage_peak_rss_kb``
gauge (``resource.getrusage`` peak RSS, omitted on platforms without
``resource``).

``run_suite`` returns (and optionally writes) a machine-readable
snapshot — ``BENCH_10.json`` at the repo root is the committed
baseline; later PRs regenerate it and diff.  Next to the snapshot the
CLI writes a trace bundle (``BENCH_TRACE_10.json``) holding every
stage's tracer snapshot by name — the input ``repro obs diff`` /
``report`` / ``export`` consume, and the baseline CI's span-level
regression gate diffs against.  The suite is *pinned*: stage
parameters only change when the bench version bumps, so numbers stay
comparable across commits on the same machine.  ``--smoke`` runs a
down-scaled variant for CI, where the artifact records shape and
counters rather than stable timings.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .obs import Tracer, tracing
from .runtime import ExperimentSpec, ResultCache, RuntimeConfig, execute
from .workloads import UniformPoints
from .quadtree import PRQuadtree

#: Bump in lockstep with the BENCH_<N>.json this suite emits.
BENCH_VERSION = 10

#: Pinned stage parameters.  The smoke variant keeps the same shape at
#: CI-friendly sizes.  The storage pool is sized to hold the whole
#: tree, so the warm query pass measures pure hit latency.
PROFILES = {
    "full": {
        "build": {"capacity": 8, "n_points": 2000, "trials": 20},
        "census": {"capacity": 8, "n_points": 20000, "repeats": 20},
        "parallel": {
            "capacity": 8, "n_points": 2000, "trials": 32,
            "engine": "vector", "chunk_size": 8,
        },
        "warm_cache": {"capacity": 8, "n_points": 1000, "trials": 5},
        "storage": {
            "capacity": 8, "n_points": 5000, "pool_pages": 1024,
            "queries": 200,
        },
        "kernels": {"capacity": 8, "sizes": [2000, 20000]},
        "queries": {
            "capacity": 8, "sizes": [2000, 20000], "queries": 256,
            "k": 8, "side": 0.1,
        },
        "serve": {
            "capacity": 4, "ops": 1000, "size": 300,
            "checkpoint_every": 400, "query_fraction": 0.2,
        },
    },
    "smoke": {
        "build": {"capacity": 8, "n_points": 400, "trials": 5},
        "census": {"capacity": 8, "n_points": 2000, "repeats": 5},
        "parallel": {
            "capacity": 8, "n_points": 800, "trials": 16,
            "engine": "vector", "chunk_size": 4,
        },
        "warm_cache": {"capacity": 8, "n_points": 300, "trials": 3},
        "storage": {
            "capacity": 8, "n_points": 1000, "pool_pages": 256,
            "queries": 50,
        },
        "kernels": {"capacity": 8, "sizes": [400, 2000]},
        "queries": {
            "capacity": 8, "sizes": [400, 2000], "queries": 64,
            "k": 4, "side": 0.1,
        },
        "serve": {
            "capacity": 4, "ops": 300, "size": 100,
            "checkpoint_every": 150, "query_fraction": 0.2,
        },
    },
}

SEED = 1987


def _peak_rss_kb() -> Optional[float]:
    """Peak resident set size in KiB, or ``None`` where the stdlib
    ``resource`` module is unavailable (e.g. Windows)."""
    try:
        import resource
    except ImportError:
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if maxrss <= 0:
        return None
    # ru_maxrss is KiB on Linux but bytes on macOS
    return maxrss / 1024.0 if sys.platform == "darwin" else float(maxrss)


def _snapshot(tracer: Tracer) -> Dict[str, Any]:
    """Serialize a stage tracer, stamping the peak-RSS gauge first."""
    rss = _peak_rss_kb()
    if rss is not None:
        tracer.gauge("stage_peak_rss_kb", rss)
    return tracer.to_dict()


def environment() -> Dict[str, Any]:
    """Metadata that contextualizes the numbers in a snapshot."""
    from .rundb import current_git_sha

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": current_git_sha(),
    }


def _spec(params: Dict[str, Any], seed: int = SEED) -> ExperimentSpec:
    return ExperimentSpec(
        capacity=params["capacity"],
        n_points=params["n_points"],
        trials=params["trials"],
        seed=seed,
    )


def _stage_build(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cold serial construction through the executor."""
    # untimed warmup trial (throwaway tracer: the measured trace must
    # count exactly the timed trials)
    execute(
        _spec(params).with_trials(1),
        RuntimeConfig(workers=1, use_cache=False, tracer=Tracer()),
    )
    tracer = Tracer()
    config = RuntimeConfig(workers=1, use_cache=False, tracer=tracer)
    began = time.perf_counter()
    execute(_spec(params), config)
    elapsed = time.perf_counter() - began
    return {
        "params": dict(params),
        "wall_s": elapsed,
        "trees_per_s": params["trials"] / elapsed if elapsed > 0 else 0.0,
        "splits": tracer.counters.get("tree.splits", 0),
        "max_depth": tracer.gauges["tree.max_depth"].max
        if "tree.max_depth" in tracer.gauges else 0,
        "trace": _snapshot(tracer),
    }


def _stage_census(params: Dict[str, Any]) -> Dict[str, Any]:
    """Census throughput over one prebuilt tree."""
    tracer = Tracer()
    tree = PRQuadtree(capacity=params["capacity"])
    tree.insert_many(UniformPoints(seed=SEED).generate(params["n_points"]))
    # untimed warmup census, outside the tracing block — BENCH_3 showed
    # an 8x first-call outlier on census.depth polluting max/mean
    tree.occupancy_census()
    tree.depth_census()
    began = time.perf_counter()
    with tracing(tracer):
        for _ in range(params["repeats"]):
            with tracer.span("census.occupancy"):
                tree.occupancy_census()
            with tracer.span("census.depth"):
                tree.depth_census()
    elapsed = time.perf_counter() - began
    return {
        "params": dict(params),
        "wall_s": elapsed,
        "censuses_per_s": (
            2 * params["repeats"] / elapsed if elapsed > 0 else 0.0
        ),
        "leaves": tree.leaf_count(),
        "trace": _snapshot(tracer),
    }


def _stage_parallel(
    params: Dict[str, Any], workers: int
) -> Dict[str, Any]:
    """Identical workload serial vs. the persistent shared-memory pool;
    results are bit-identical by the runtime's seed contract, so only
    the clock differs.

    The headline runs on the pinned engine (vector, where workers take
    the batched-kernel path); an untraced object-engine pass rides
    along as a cross-check so the snapshot shows both.  Each pooled
    measurement happens inside a warm :func:`runtime_session` — one
    untimed run spins the persistent workers up first, exactly the
    steady state a population sweep sees.
    """
    from .runtime import runtime_session

    engine = params.get("engine", "object")
    chunk_size = params.get("chunk_size")
    spec = _spec(params)

    def measure(eng: str, traced: bool):
        # untimed serial warmup (imports, numpy dispatch)
        execute(
            spec.with_trials(1),
            RuntimeConfig(workers=1, use_cache=False, engine=eng,
                          tracer=Tracer()),
        )
        serial_tracer = Tracer() if traced else None
        began = time.perf_counter()
        execute(
            spec,
            RuntimeConfig(workers=1, use_cache=False, engine=eng,
                          tracer=serial_tracer),
        )
        serial_s = time.perf_counter() - began

        pool_tracer = Tracer() if traced else None
        with runtime_session(
            workers=workers, use_cache=False, engine=eng,
            chunk_size=chunk_size,
        ) as config:
            execute(spec)  # untimed: spins the persistent workers up
            began = time.perf_counter()
            if pool_tracer is not None:
                config.tracer = pool_tracer
                with tracing(pool_tracer):
                    execute(spec)
            else:
                execute(spec)
            pool_s = time.perf_counter() - began
        return serial_s, pool_s, serial_tracer, pool_tracer

    serial_s, pool_s, serial_tracer, pool_tracer = measure(engine, True)
    result = {
        "params": dict(params),
        "workers": workers,
        "engine": engine,
        "serial_s": serial_s,
        "pool_s": pool_s,
        "speedup": serial_s / pool_s if pool_s > 0 else 0.0,
        "degraded": pool_tracer.counters.get("runtime.degraded", 0),
        "serial_trace": _snapshot(serial_tracer),
        "pool_trace": _snapshot(pool_tracer),
    }
    if engine != "object":
        obj_serial_s, obj_pool_s, _, _ = measure("object", False)
        result["object_serial_s"] = obj_serial_s
        result["object_pool_s"] = obj_pool_s
        result["object_speedup"] = (
            obj_serial_s / obj_pool_s if obj_pool_s > 0 else 0.0
        )
    return result


def _stage_warm_cache(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cold miss+store, then warm hit, against a throwaway cache dir."""
    # untimed warmup trial with caching *off*, so the measured cold
    # store stays genuinely cold while the code paths are warm
    execute(
        _spec(params).with_trials(1),
        RuntimeConfig(workers=1, use_cache=False, tracer=Tracer()),
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        tracer = Tracer()
        spec = _spec(params)
        config = RuntimeConfig(
            workers=1, use_cache=True, cache_dir=tmp, tracer=tracer
        )
        began = time.perf_counter()
        execute(spec, config)
        cold_s = time.perf_counter() - began
        began = time.perf_counter()
        execute(spec, config)
        warm_s = time.perf_counter() - began
        leftovers = ResultCache(tmp).clear()
    return {
        "params": dict(params),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warmup_factor": cold_s / warm_s if warm_s > 0 else 0.0,
        "cache_hits": tracer.counters.get("cache.hit", 0),
        "cache_misses": tracer.counters.get("cache.miss", 0),
        "files_removed": leftovers,
        "trace": _snapshot(tracer),
    }


def _stage_storage(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cold build on disk, then cold-pool vs. warm-pool query latency."""
    from .storage import PagedPRQuadtree

    # untimed warmup against a separate scratch file (the measured
    # build must stay cold on its own file); a small tree is enough to
    # warm the imports and page/pool code paths
    with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as tmp:
        warm_points = UniformPoints(seed=SEED).generate(
            min(params["n_points"], 200)
        )
        tree = PagedPRQuadtree.create(
            str(Path(tmp) / "warmup.pf"),
            capacity=params["capacity"],
            pool_pages=params["pool_pages"],
        )
        tree.insert_many(warm_points)
        tree.checkpoint()
        tree.nearest(warm_points[0], 3)
        tree.close()

    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as tmp:
        path = str(Path(tmp) / "bench.pf")
        points = UniformPoints(seed=SEED).generate(params["n_points"])
        with tracing(tracer):
            began = time.perf_counter()
            tree = PagedPRQuadtree.create(
                path,
                capacity=params["capacity"],
                pool_pages=params["pool_pages"],
            )
            tree.insert_many(points)
            tree.checkpoint()
            build_s = time.perf_counter() - began
        build_counters = dict(tree.pool.counters)
        pages = tree.pagefile.data_page_count
        file_bytes = tree.pagefile.stats().file_bytes
        tree.close()

        tree = PagedPRQuadtree.open(path, pool_pages=params["pool_pages"])
        queries = points[: params["queries"]]
        with tracing(tracer):
            began = time.perf_counter()
            for q in queries:
                tree.nearest(q, 3)
            cold_s = time.perf_counter() - began
            after_cold = dict(tree.pool.counters)
            began = time.perf_counter()
            for q in queries:
                tree.nearest(q, 3)
            warm_s = time.perf_counter() - began
        after_warm = dict(tree.pool.counters)

        # sorted bulk-load of the same point set: one sequential page
        # pass; census-checked against the incremental build (runs
        # after the query passes so the cold pass stays cold)
        from .storage.bulkload import bulk_load_paged

        bulk_path = str(Path(tmp) / "bench-bulk.pf")
        with tracing(tracer):
            began = time.perf_counter()
            bulk_tree = bulk_load_paged(
                bulk_path, points,
                capacity=params["capacity"],
                pool_pages=params["pool_pages"],
            )
            bulk_s = time.perf_counter() - began
        bulk_parity = (
            bulk_tree.occupancy_census() == tree.occupancy_census()
            and len(bulk_tree) == len(tree)
        )
        bulk_tree.close()
        tree.close()
    warm_hits = after_warm["hits"] - after_cold["hits"]
    warm_misses = after_warm["misses"] - after_cold["misses"]
    warm_total = warm_hits + warm_misses
    return {
        "params": dict(params),
        "build_s": build_s,
        "inserts_per_s": (
            params["n_points"] / build_s if build_s > 0 else 0.0
        ),
        "pages": pages,
        "file_bytes": file_bytes,
        "build_pool": build_counters,
        "cold_query_s": cold_s,
        "warm_query_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "cold_misses": after_cold["misses"],
        "warm_hit_rate": warm_hits / warm_total if warm_total else 0.0,
        "bulk_s": bulk_s,
        "bulk_speedup": build_s / bulk_s if bulk_s > 0 else 0.0,
        "bulk_parity": bulk_parity,
        "trace": _snapshot(tracer),
    }


def _stage_kernels(params: Dict[str, Any]) -> Dict[str, Any]:
    """Object-tree build+census vs. the vectorized census engine.

    Both engines consume the same pre-generated points at each size;
    the stage verifies the censuses agree bit for bit and reports the
    vector engine's speedup over building (and censusing) a real tree.
    """
    from .kernels import vector_census

    capacity = params["capacity"]
    # untimed warmup of both engines at a token size
    warm = UniformPoints(seed=SEED).generate(200)
    warm_tree = PRQuadtree(capacity=capacity)
    warm_tree.insert_many(warm)
    warm_tree.occupancy_census()
    warm_tree.depth_census()
    warm_part = vector_census(warm, capacity)
    warm_part.occupancy_census()
    warm_part.depth_census()

    tracer = Tracer()
    runs: Dict[str, Dict[str, Any]] = {}
    all_parity = True
    for index, size in enumerate(params["sizes"]):
        points = UniformPoints(seed=SEED + index).generate(size)

        began = time.perf_counter()
        tree = PRQuadtree(capacity=capacity)
        tree.insert_many(points)
        occ_obj = tree.occupancy_census()
        depth_obj = tree.depth_census()
        object_s = time.perf_counter() - began

        with tracing(tracer):
            began = time.perf_counter()
            partition = vector_census(points, capacity)
            occ_vec = partition.occupancy_census()
            depth_vec = partition.depth_census()
            vector_s = time.perf_counter() - began

        parity = occ_obj == occ_vec and depth_obj == depth_vec \
            and tree.leaf_count() == partition.leaf_count
        all_parity = all_parity and parity
        runs[str(size)] = {
            "object_s": object_s,
            "vector_s": vector_s,
            "speedup": object_s / vector_s if vector_s > 0 else 0.0,
            "leaves": partition.leaf_count,
            "parity": parity,
        }
    return {
        "params": dict(params),
        "runs": runs,
        "parity": all_parity,
        "trace": _snapshot(tracer),
    }


def _stage_queries(params: Dict[str, Any]) -> Dict[str, Any]:
    """Object-tree walks vs. the batch query kernels on identical
    seeded batches (range / k-NN / partial match), parity-verified.

    Build costs are reported separately — the per-op walls measure the
    query phase alone on both engines, which is what the batch kernels
    claim to accelerate.
    """
    from .experiments.queries import run_query_sweep

    capacity = params["capacity"]
    # untimed warmup at a token size (kernel build, numpy dispatch)
    run_query_sweep(
        n=200, capacity=capacity, n_queries=8, k=2, seed=SEED,
    )

    tracer = Tracer()
    runs: Dict[str, Dict[str, Any]] = {}
    all_parity = True
    for index, size in enumerate(params["sizes"]):
        with tracing(tracer):
            report = run_query_sweep(
                n=size, capacity=capacity, seed=SEED + index,
                n_queries=params["queries"], k=params["k"],
                side=params["side"],
            )
        summary = report.to_dict()
        runs[str(size)] = {
            "build_tree_s": summary["build_tree_s"],
            "build_kernel_s": summary["build_kernel_s"],
            "ops": summary["ops"],
            "verified": report.verified,
        }
        all_parity = all_parity and report.verified
    top = str(max(params["sizes"]))
    top_ops = runs[top]["ops"]
    return {
        "params": dict(params),
        "runs": runs,
        "parity": all_parity,
        "range_speedup": top_ops["range"].get("speedup", 0.0),
        "knn_speedup": top_ops["knn"].get("speedup", 0.0),
        "pm_speedup": top_ops["partial_match"].get("speedup", 0.0),
        "trace": _snapshot(tracer),
    }


def _stage_serve(params: Dict[str, Any]) -> Dict[str, Any]:
    """The serving layer end to end: an in-process server (real
    localhost socket, real WAL fsyncs, periodic checkpoints) driven by
    the pipelined load generator.  Reports durably-acknowledged ops/s
    and insert latency percentiles — every mutation counted was fsynced
    before its ack."""
    import asyncio

    from .service import SpatialIndexServer, open_state
    from .service.loadgen import run_load

    async def drive(root: Path, ops: int, size: int):
        tree, wal, _ = open_state(
            root / "serve.pf", create=True, capacity=params["capacity"]
        )
        server = SpatialIndexServer(
            tree, wal, port=0,
            checkpoint_every=params["checkpoint_every"],
        )
        await server.start()
        host, port = server.address
        try:
            return await run_load(
                host, port, ops=ops, size=size, seed=SEED,
                query_fraction=params["query_fraction"],
            )
        finally:
            await server.stop()

    # untimed warmup on a scratch state (event loop, sockets, service
    # imports); the measured run gets its own fresh state
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        asyncio.run(drive(Path(tmp), ops=60, size=30))

    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        with tracing(tracer):
            began = time.perf_counter()
            report = asyncio.run(
                drive(Path(tmp), ops=params["ops"], size=params["size"])
            )
            elapsed = time.perf_counter() - began
    insert_hist = report.latencies.get("insert")
    commits = tracer.counters.get("service.commits", 0)
    return {
        "params": dict(params),
        "wall_s": elapsed,
        "ops": report.ops,
        "mutations": report.mutations,
        "queries": report.queries,
        "failures": report.failures,
        "census_verified": report.census_verified,
        "achieved_qps": report.achieved_qps,
        "insert_p50_ms": insert_hist.p50 * 1e3 if insert_hist else 0.0,
        "insert_p99_ms": insert_hist.p99 * 1e3 if insert_hist else 0.0,
        # full per-op client-side percentiles — what the
        # --require-p99-ms gate in benchmarks/compare_bench.py reads
        "latency_ms": report.to_dict()["latency_ms"],
        "commits": commits,
        "mean_commit_batch": (
            report.mutations / commits if commits else 0.0
        ),
        "checkpoints": tracer.counters.get("service.checkpoints", 0),
        "wal_syncs": tracer.counters.get("service.wal.sync_calls", 0),
        "trace": _snapshot(tracer),
    }


def run_suite(
    smoke: bool = False, workers: Optional[int] = None
) -> Dict[str, Any]:
    """Run every pinned stage; returns the snapshot dict.

    Each stage result carries a uniform ``stage_wall_s`` (the stage's
    total wall time, warmup included) — the number CI's regression
    check compares against the committed baseline.
    """
    profile = PROFILES["smoke" if smoke else "full"]
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    began = time.time()
    stages = {}
    for name, runner in (
        ("build", lambda: _stage_build(profile["build"])),
        ("census", lambda: _stage_census(profile["census"])),
        ("parallel", lambda: _stage_parallel(profile["parallel"], workers)),
        ("warm_cache", lambda: _stage_warm_cache(profile["warm_cache"])),
        ("storage", lambda: _stage_storage(profile["storage"])),
        ("kernels", lambda: _stage_kernels(profile["kernels"])),
        ("queries", lambda: _stage_queries(profile["queries"])),
        ("serve", lambda: _stage_serve(profile["serve"])),
    ):
        stage_began = time.perf_counter()
        stages[name] = runner()
        stages[name]["stage_wall_s"] = time.perf_counter() - stage_began
        stages[name]["stage_peak_rss_kb"] = _peak_rss_kb()
    return {
        "bench_version": BENCH_VERSION,
        "profile": "smoke" if smoke else "full",
        "created_unix": began,
        "total_wall_s": time.time() - began,
        "env": environment(),
        "stages": stages,
    }


def summarize(snapshot: Dict[str, Any]) -> str:
    """Human-readable digest of a snapshot."""
    s = snapshot["stages"]
    env = snapshot["env"]
    lines: List[str] = [
        f"repro bench v{snapshot['bench_version']} "
        f"({snapshot['profile']} profile)",
        f"  env       : python {env['python']} on {env['platform']} "
        f"({env['cpu_count']} cpus)",
        f"  build     : {s['build']['trees_per_s']:8.1f} trees/s   "
        f"({s['build']['wall_s']:.3f}s, {s['build']['splits']} splits, "
        f"max depth {s['build']['max_depth']:g})",
        f"  census    : {s['census']['censuses_per_s']:8.1f} census/s  "
        f"({s['census']['wall_s']:.3f}s over {s['census']['leaves']} leaves)",
        f"  parallel  : {s['parallel']['speedup']:8.2f}x speedup   "
        f"({s['parallel'].get('engine', 'object')} serial "
        f"{s['parallel']['serial_s']:.3f}s vs "
        f"{s['parallel']['workers']} workers {s['parallel']['pool_s']:.3f}s"
        + (f", object {s['parallel']['object_speedup']:.2f}x"
           if "object_speedup" in s["parallel"] else "")
        + (", DEGRADED" if s["parallel"]["degraded"] else "")
        + ")",
        f"  warm cache: {s['warm_cache']['warmup_factor']:8.1f}x warmup   "
        f"(cold {s['warm_cache']['cold_s']:.3f}s, "
        f"warm {s['warm_cache']['warm_s']:.4f}s)",
        f"  storage   : {s['storage']['inserts_per_s']:8.0f} inserts/s "
        f"({s['storage']['pages']} pages, warm pool "
        f"{s['storage']['warm_hit_rate']:.0%} hits, "
        f"{s['storage']['warm_speedup']:.1f}x vs cold, "
        f"bulk load {s['storage']['bulk_speedup']:.1f}x"
        + ("" if s["storage"]["bulk_parity"] else ", BULK PARITY BROKEN")
        + ")",
    ]
    kernels = s["kernels"]
    top = str(max(int(size) for size in kernels["runs"]))
    run = kernels["runs"][top]
    lines.append(
        f"  kernels   : {run['speedup']:8.1f}x vector   "
        f"(n={top}: object {run['object_s']:.3f}s vs "
        f"vector {run['vector_s']:.3f}s, "
        + ("censuses identical" if kernels["parity"] else "PARITY BROKEN")
        + ")"
    )
    queries = s["queries"]
    lines.append(
        f"  queries   : {queries['range_speedup']:8.1f}x range    "
        f"(knn {queries['knn_speedup']:.1f}x, "
        f"partial match {queries['pm_speedup']:.1f}x, "
        + ("answers identical" if queries["parity"]
           else "PARITY BROKEN")
        + ")"
    )
    serve = s["serve"]
    lines.append(
        f"  serve     : {serve['achieved_qps']:8.0f} ops/s    "
        f"(insert p50 {serve['insert_p50_ms']:.2f}ms "
        f"p99 {serve['insert_p99_ms']:.2f}ms, "
        f"batch ~{serve['mean_commit_batch']:.0f}, "
        f"{serve['checkpoints']} checkpoints"
        + ("" if serve["failures"] == 0 else
           f", {serve['failures']} FAILED OPS")
        + (", census verified" if serve["census_verified"]
           else ", CENSUS MISMATCH")
        + ")"
    )
    lines.append(f"  total     : {snapshot['total_wall_s']:.3f}s")
    return "\n".join(lines)


def write_snapshot(snapshot: Dict[str, Any], path: Path) -> Path:
    """Write the machine-readable snapshot (pretty JSON, stable keys)."""
    path = Path(path)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def trace_bundle_path(snapshot_path: Path) -> Path:
    """Where the trace bundle lives relative to its snapshot —
    ``BENCH_10.json`` pairs with ``BENCH_TRACE_10.json``; any other name
    gets a ``_trace`` suffix."""
    snapshot_path = Path(snapshot_path)
    name = snapshot_path.name
    if name.startswith("BENCH_"):
        return snapshot_path.with_name("BENCH_TRACE_" + name[len("BENCH_"):])
    return snapshot_path.with_name(
        f"{snapshot_path.stem}_trace{snapshot_path.suffix}"
    )


def write_trace_bundle(snapshot: Dict[str, Any], path: Path) -> Path:
    """Write every stage tracer from ``snapshot`` as one trace bundle.

    The bundle is the ``{"stages": {name: Tracer.to_dict()}}`` shape
    ``repro obs report|diff|export`` consume directly (stages with two
    tracers split into ``parallel.serial`` / ``parallel.pool``).
    """
    from .obs.diff import extract_traces

    path = Path(path)
    bundle = {
        "bench_version": snapshot["bench_version"],
        "profile": snapshot["profile"],
        "stages": extract_traces(snapshot),
    }
    path.write_text(
        json.dumps(bundle, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def render_traces(snapshot: Dict[str, Any]) -> str:
    """Every stage's span tree rendered like ``--verbose`` renders the
    run report's — the pool stage shows the merged ``worker.N`` trees."""
    from .obs.diff import extract_traces

    sections: List[str] = []
    for name, trace in sorted(extract_traces(snapshot).items()):
        sections.append(f"=== {name} ===\n{Tracer.from_dict(trace).render()}")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the pinned performance suite and snapshot it.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="down-scaled CI profile (shape checks, not stable timings)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool width for the parallel stage (default: min(4, cpus))",
    )
    parser.add_argument(
        "--out", default=f"BENCH_{BENCH_VERSION}.json", metavar="PATH",
        help="snapshot path (default: %(default)s; '-' to skip writing; "
             "a trace bundle is written next to it)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print each stage's span tree (the pool stage shows "
             "the merged worker.N subtrees)",
    )
    parser.add_argument(
        "--db", default=None, metavar="PATH",
        help="run database recording the suite "
             "(default: $REPRO_DB or ~/.local/share/repro/runs.sqlite)",
    )
    parser.add_argument(
        "--no-db", action="store_true",
        help="do not record this suite into the run database "
             "(also: REPRO_NO_DB=1)",
    )
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    snapshot = run_suite(smoke=args.smoke, workers=args.workers)
    print(summarize(snapshot))
    if args.verbose:
        print()
        print(render_traces(snapshot))
    if args.out != "-":
        path = write_snapshot(snapshot, Path(args.out))
        print(f"  snapshot  : {path}")
        traces = write_trace_bundle(snapshot, trace_bundle_path(path))
        print(f"  traces    : {traces}")
    from .rundb import RunDB, record_bench_snapshot, resolve_db_path

    db_path = resolve_db_path(args.db, no_db=args.no_db)
    if db_path is not None:
        try:
            with RunDB(db_path) as db:
                run_id = record_bench_snapshot(
                    db, snapshot, label=f"bench --{snapshot['profile']}"
                )
            print(f"  run DB    : {db_path} (run #{run_id})")
        except Exception as exc:  # the suite's numbers already printed
            print(f"warning: run DB record failed: {exc}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
