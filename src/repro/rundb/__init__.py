"""The run database: longitudinal storage + analytics for every run.

The result cache answers "have I computed exactly this before?"; the
run database answers the questions the paper's method is actually
about — occupancy vs n across engines and history, stage walls and
peak RSS over the last 20 benches, drift alarms over serve sessions.
One SQLite file (WAL, versioned schema) records runtime sessions,
bench suites, serve sessions, and ingested historical baselines;
:mod:`repro.rundb.analyzer` turns that history into trends with
rolling-median + MAD regression detection, and ``repro db`` is the
CLI over all of it.

Layout
------
``schema.py``
    Versioned DDL + migrations (``PRAGMA user_version``).
``repository.py``
    :class:`RunDB` — all reads/writes, concurrent-writer safe.
``recorder.py``
    Hooks the live system records through (sessions, bench, serve,
    autotune persistence) plus ``ingest_file`` backfill.
``analyzer.py``
    Cross-run analytics: trends (optionally grouped by commit),
    occupancy-vs-n, run diffing.
``report.py``
    ``repro db report`` — markdown + inline SVG charts over history.
``cli.py``
    ``repro db init/ingest/ls/show/trend/occupancy/report/diff/gc``.
"""

from .analyzer import (
    Trend,
    TrendPoint,
    by_commit,
    diff_runs,
    gauge_trend,
    span_trend,
    stage_trend,
)
from .recorder import (
    AutotuneStore,
    ServeRecorder,
    ServeTelemetryRecorder,
    SessionRecorder,
    current_git_sha,
    default_db_path,
    ingest_file,
    record_bench_snapshot,
    resolve_db_path,
)
from .report import render_report, svg_line_chart
from .repository import RunDB, RunDBError
from .schema import SCHEMA_VERSION, SchemaError

__all__ = [
    "RunDB",
    "RunDBError",
    "SCHEMA_VERSION",
    "SchemaError",
    "Trend",
    "TrendPoint",
    "AutotuneStore",
    "ServeRecorder",
    "ServeTelemetryRecorder",
    "SessionRecorder",
    "by_commit",
    "current_git_sha",
    "default_db_path",
    "render_report",
    "resolve_db_path",
    "ingest_file",
    "record_bench_snapshot",
    "stage_trend",
    "span_trend",
    "gauge_trend",
    "diff_runs",
    "svg_line_chart",
]
