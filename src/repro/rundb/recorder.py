"""Recording hooks — how live runs land in the run database.

Nothing in the library records unless asked: a
:class:`~repro.runtime.executor.RuntimeConfig` whose ``db_path`` is
``None`` (the default) never touches disk, so tests and embedders see
zero behavior change.  The CLI entry points opt *in* by resolving a
path through :func:`resolve_db_path`, which honors the opt-outs the
issue names — ``--no-db`` and ``REPRO_NO_DB`` — plus ``REPRO_DB`` /
``--db`` overrides, defaulting to ``~/.local/share/repro/runs.sqlite``
(XDG aware), the data-dir sibling of the result cache's
``~/.cache/repro``.

Three recorders cover the three run shapes:

- :class:`SessionRecorder` — buffers every ``execute()`` under a
  ``runtime_session`` in memory and flushes one transaction at session
  exit (run row, trial rows, the session tracer's snapshot, run-report
  totals).  Buffering keeps the hot path free of sqlite I/O.
- ``record_bench_snapshot`` / ``ingest_file`` — one bench suite
  (live snapshot or historical ``BENCH_*.json`` backfill) becomes a
  ``bench`` run with stages and per-stage traces.
- :class:`ServeRecorder` — a server session writes its run row
  eagerly and appends drift samples as they happen (a serve process
  may die; its samples must already be durable).
  :class:`ServeTelemetryRecorder` extends it with periodic metric
  flushes: the server's sampler loop hands over the live tracer, and
  each flush writes one interval's histogram *deltas* (so every row is
  that interval's own p50/p99, trendable across a server's lifetime)
  plus gauge/counter samples into ``telemetry_samples``.

Recording is deliberately non-fatal everywhere: a corrupt or locked
database prints one warning and the run continues — the record is an
observer, never a dependency.

:class:`AutotuneStore` is the persistence backend
:class:`~repro.runtime.autotune.ChunkAutotuner` plugs into so a
locked-in chunk size keyed by (engine, n, workers) survives to the
next session instead of being relearned.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.diff import extract_traces
from .repository import RunDB

PathLike = Union[str, Path]


def default_db_path() -> Path:
    """``$XDG_DATA_HOME/repro/runs.sqlite`` (or the ``~/.local/share``
    equivalent) — the durable sibling of the result cache's
    ``~/.cache/repro``."""
    base = os.environ.get("XDG_DATA_HOME")
    root = Path(base) if base else Path.home() / ".local" / "share"
    return root / "repro" / "runs.sqlite"


def resolve_db_path(
    explicit: Optional[PathLike] = None,
    no_db: bool = False,
    default: bool = True,
) -> Optional[Path]:
    """Where recording should go, or ``None`` for "don't record".

    Precedence: ``no_db`` flag / ``REPRO_NO_DB`` env (off beats
    everything) > ``explicit`` (``--db``) > ``REPRO_DB`` env > the
    default path (only when ``default`` is true — library callers pass
    ``default=False`` so only deliberate configuration records).
    """
    if no_db or os.environ.get("REPRO_NO_DB"):
        return None
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get("REPRO_DB")
    if env:
        return Path(env)
    return default_db_path() if default else None


def _warn(action: str, exc: BaseException) -> None:
    print(f"warning: run DB {action} failed: {exc}", file=sys.stderr)


_GIT_SHA: List[Optional[str]] = []  # one-element cache (None = "no repo")


def current_git_sha() -> Optional[str]:
    """The working tree's commit SHA, or ``None`` outside a checkout.

    Stamped into ``runs.env`` so ``repro db trend`` can group runs by
    commit.  Resolved once per process (runs don't outlive commits);
    any git failure — no binary, not a repo, timeout — degrades to
    ``None``, never to an error.
    """
    if not _GIT_SHA:
        import subprocess

        sha: Optional[str] = None
        for cwd in (Path.cwd(), Path(__file__).resolve().parent):
            try:
                out = subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    cwd=cwd, capture_output=True, text=True, timeout=5,
                )
            except Exception:
                continue
            if out.returncode == 0 and out.stdout.strip():
                sha = out.stdout.strip()
                break
        _GIT_SHA.append(sha)
    return _GIT_SHA[0]


# ----------------------------------------------------------------------
# runtime sessions
# ----------------------------------------------------------------------


class SessionRecorder:
    """Buffers one runtime session's executions; flushes at exit.

    The executor calls :meth:`note_execution` after every ``execute()``
    — an in-memory append, no I/O.  ``runtime_session`` calls
    :meth:`flush` once the config leaves the ambient stack, writing
    the whole session as one run in one transaction.
    """

    def __init__(self, db_path: PathLike, label: Optional[str] = None):
        self._db_path = db_path
        self._label = label
        self._began = time.time()
        self._trials: List[Dict[str, Any]] = []
        self._flushed = False

    @property
    def pending(self) -> int:
        """Buffered executions not yet flushed."""
        return len(self._trials)

    def note_execution(
        self,
        spec,
        result,
        engine: str,
        workers: int,
        cache_hit: bool,
        wall_s: float,
    ) -> None:
        """Buffer one ``execute()``'s summary (spec + census totals)."""
        accumulator = result.accumulator
        self._trials.append({
            "spec": spec.to_dict(),
            "cache_key": spec.cache_key(),
            "engine": engine,
            "workers": max(1, workers),
            "cache_hit": cache_hit,
            "wall_s": wall_s,
            "trials": result.trials,
            "mean_occupancy": (
                accumulator.mean_occupancy() if result.trials else None
            ),
            "count_sums": list(accumulator.count_sums),
        })

    def flush(self, config=None) -> Optional[int]:
        """Write the session into the DB; returns the run id (``None``
        when nothing was recorded or the write failed)."""
        if self._flushed or not self._trials:
            return None
        self._flushed = True
        extra: Optional[Dict[str, Any]] = None
        tracer = None
        engine = self._trials[-1]["engine"]
        workers = max(t["workers"] for t in self._trials)
        if config is not None:
            report = config.collector.report()
            extra = {
                "trees_built": report.trees_built,
                "cache_hits": report.cache_hits,
                "cache_misses": report.cache_misses,
                "retries": report.retries,
            }
            tracer = config.tracer
        sha = current_git_sha()
        try:
            with RunDB(self._db_path) as db:
                run_id = db.begin_run(
                    kind="session",
                    label=self._label,
                    created_unix=self._began,
                    engine=engine,
                    workers=workers,
                    env={"git_sha": sha} if sha else None,
                    extra=extra,
                )
                db.record_trials(run_id, self._trials)
                if tracer is not None and not tracer.is_empty():
                    db.record_trace(run_id, "", tracer.to_dict())
                db.finish_run(run_id, wall_s=time.time() - self._began)
                return run_id
        except Exception as exc:  # recording must never break the run
            _warn("session flush", exc)
            return None


# ----------------------------------------------------------------------
# autotune persistence
# ----------------------------------------------------------------------


class AutotuneStore:
    """Load/save backend for the chunk autotuner's locked-in sizes.

    Opens the database per call (lock-ins are rare) and swallows every
    storage error — a broken DB degrades to relearning, never to a
    failed run.
    """

    def __init__(self, db_path: PathLike):
        self._db_path = db_path

    def load(
        self, engine: str, n_points: int, workers: int
    ) -> Optional[int]:
        try:
            with RunDB(self._db_path) as db:
                return db.get_chunk_size(engine, n_points, workers)
        except Exception:
            return None

    def save(
        self, engine: str, n_points: int, workers: int, chunk_size: int
    ) -> None:
        try:
            with RunDB(self._db_path) as db:
                db.set_chunk_size(engine, n_points, workers, chunk_size)
        except Exception:
            pass


# ----------------------------------------------------------------------
# bench suites (live and ingested)
# ----------------------------------------------------------------------


def record_bench_snapshot(
    db: RunDB,
    snapshot: Dict[str, Any],
    label: Optional[str] = None,
    source: str = "live",
) -> int:
    """Persist one bench suite snapshot as a ``bench`` run: stage rows
    (scalar payloads kept as JSON), every stage trace flattened into
    the span/counter/gauge tables, and the suite's env."""
    run_id = db.begin_run(
        kind="bench",
        label=label,
        source=source,
        created_unix=float(snapshot.get("created_unix") or time.time()),
        profile=snapshot.get("profile"),
        bench_version=snapshot.get("bench_version"),
        env=snapshot.get("env"),
    )
    for stage_name, stage in sorted(snapshot.get("stages", {}).items()):
        if not isinstance(stage, dict):
            continue
        payload = {
            key: value
            for key, value in stage.items()
            if isinstance(value, (int, float, bool))
            and key not in ("stage_wall_s", "stage_peak_rss_kb")
        }
        db.record_stage(
            run_id,
            stage_name,
            stage.get("stage_wall_s"),
            stage.get("stage_peak_rss_kb"),
            payload or None,
        )
    for name, trace in sorted(extract_traces(snapshot).items()):
        db.record_trace(run_id, name, trace)
    db.finish_run(run_id, wall_s=snapshot.get("total_wall_s"))
    return run_id


def record_trace_bundle(
    db: RunDB, bundle: Dict[str, Any], label: Optional[str] = None
) -> Optional[int]:
    """Persist a ``BENCH_TRACE_*.json`` bundle.

    When an ingested bench run with the same version/profile exists,
    the bundle's traces attach to it (replacing nothing — bench
    snapshots already embed their traces, so a matching run that has
    spans is left alone and ``None`` is returned).  Otherwise the
    bundle becomes its own ``trace`` run.
    """
    version = bundle.get("bench_version")
    profile = bundle.get("profile")
    traces = {
        name: stage
        for name, stage in bundle.get("stages", {}).items()
        if isinstance(stage, dict) and "spans" in stage
    }
    for run in db.runs(kind="bench", profile=profile):
        if version is not None and run.get("bench_version") != version:
            continue
        if db.span_paths(int(run["id"])):
            return None  # snapshot ingest already carried these traces
        for name, trace in sorted(traces.items()):
            db.record_trace(int(run["id"]), name, trace)
        return int(run["id"])
    run_id = db.begin_run(
        kind="trace",
        label=label,
        source="ingest",
        created_unix=0.0,
        profile=profile,
        bench_version=version,
    )
    for name, trace in sorted(traces.items()):
        db.record_trace(run_id, name, trace)
    db.finish_run(run_id)
    return run_id


def ingest_file(db: RunDB, path: PathLike) -> Optional[int]:
    """Backfill one JSON file (bench snapshot or trace bundle) into the
    database; idempotent — re-ingesting the same file is a no-op
    returning ``None``.  Raises ``ValueError`` for unrecognized JSON.
    """
    import json

    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    stages = data.get("stages")
    if not isinstance(stages, dict) or not stages:
        raise ValueError(f"{path}: no stages; not a bench artifact")
    if any(
        isinstance(stage, dict) and "spans" in stage
        for stage in stages.values()
    ):
        if db.find_ingested("trace", 0.0, path.name) is not None:
            return None
        return record_trace_bundle(db, data, label=path.name)
    created = float(data.get("created_unix") or 0.0)
    if db.find_ingested("bench", created, path.name) is not None:
        return None
    return record_bench_snapshot(db, data, label=path.name, source="ingest")


# ----------------------------------------------------------------------
# serve sessions
# ----------------------------------------------------------------------


class ServeRecorder:
    """Incremental recorder for a server process.

    Unlike sessions, serve runs write eagerly: the run row exists from
    :meth:`start` and every drift sample commits as it is observed, so
    a killed server still leaves its drift history (status stays
    ``open`` — itself a signal).  All failures degrade to a single
    warning; serving never depends on the record.
    """

    def __init__(self, db_path: PathLike, label: Optional[str] = None):
        self._db: Optional[RunDB] = RunDB(db_path)
        self._label = label
        self._run_id: Optional[int] = None
        self._seq = 0
        self._began = time.time()

    @property
    def run_id(self) -> Optional[int]:
        return self._run_id

    def start(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Open the run row (call once the server is listening)."""
        if self._db is None:
            return
        sha = current_git_sha()
        try:
            self._run_id = self._db.begin_run(
                kind="serve",
                label=self._label,
                created_unix=self._began,
                env={"git_sha": sha} if sha else None,
                extra=extra,
            )
        except Exception as exc:
            _warn("serve start", exc)
            self._disable()

    def drift(self, sample) -> None:
        """Record one monitor sample (a DriftSample or its dict)."""
        if self._db is None or self._run_id is None:
            return
        if hasattr(sample, "to_dict"):
            sample = sample.to_dict()
        try:
            self._db.record_drift(self._run_id, self._seq, sample)
            self._seq += 1
        except Exception as exc:
            _warn("drift sample", exc)
            self._disable()

    def finish(self, tracer=None) -> None:
        """Close the run (optionally persisting the server's tracer)."""
        if self._db is None or self._run_id is None:
            self._disable()
            return
        try:
            if tracer is not None and not tracer.is_empty():
                self._db.record_trace(self._run_id, "", tracer.to_dict())
            self._db.finish_run(
                self._run_id, wall_s=time.time() - self._began
            )
        except Exception as exc:
            _warn("serve finish", exc)
        finally:
            self._disable()

    def _disable(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None


class ServeTelemetryRecorder(ServeRecorder):
    """A :class:`ServeRecorder` that also flushes live metrics.

    The server's sampler loop calls :meth:`telemetry` on its interval
    (wired as the server's ``telemetry_sink``).  Each call computes
    what changed since the previous flush — histogram deltas via
    :meth:`repro.obs.Histogram.delta`, counter differences — and
    writes one ``telemetry_samples`` batch, so every row is one
    interval's own summary: a p99 spike in minute 40 stays visible
    instead of drowning in the cumulative average.  Same non-fatal
    contract as drift samples: one warning, then recording disables.
    """

    def __init__(self, db_path: PathLike, label: Optional[str] = None):
        super().__init__(db_path, label=label)
        self._telemetry_seq = 0
        self._hist_marks: Dict[str, Any] = {}
        self._counter_marks: Dict[str, int] = {}

    @property
    def telemetry_flushes(self) -> int:
        """Completed telemetry batches."""
        return self._telemetry_seq

    def telemetry(self, tracer) -> None:
        """Flush one interval's metric samples from ``tracer``."""
        if self._db is None or self._run_id is None or tracer is None:
            return
        from ..service.telemetry import METRIC_PREFIXES

        samples: List[Dict[str, Any]] = []
        histograms = dict(tracer.span_histograms)
        histograms.update(tracer.gauge_histograms)
        for name, hist in sorted(histograms.items()):
            if not name.startswith(METRIC_PREFIXES):
                continue
            delta = hist.delta(self._hist_marks.get(name))
            self._hist_marks[name] = hist.copy()
            if not delta.count:
                continue
            samples.append({
                "name": name, "kind": "histogram",
                "count": delta.count, "value": delta.sum,
                "mean": delta.mean, "p50": delta.p50,
                "p90": delta.p90, "p99": delta.p99,
            })
        for name, value in sorted(tracer.counters.items()):
            if not name.startswith(METRIC_PREFIXES):
                continue
            delta = int(value) - self._counter_marks.get(name, 0)
            self._counter_marks[name] = int(value)
            if delta > 0:
                samples.append({
                    "name": name, "kind": "counter",
                    "count": delta, "value": float(delta),
                })
        for name, stats in sorted(tracer.gauges.items()):
            if not name.startswith(METRIC_PREFIXES) or not stats.count:
                continue
            samples.append({
                "name": name, "kind": "gauge",
                "count": stats.count, "value": stats.last,
                "mean": stats.mean,
            })
        if not samples:
            return
        try:
            self._db.record_telemetry(
                self._run_id, self._telemetry_seq, samples
            )
            self._telemetry_seq += 1
        except Exception as exc:
            _warn("telemetry flush", exc)
            self._disable()
