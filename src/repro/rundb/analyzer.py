"""Cross-run analytics over the run database.

Where :mod:`repro.obs.diff` compares *two* snapshots, this module reads
*history*: a metric's value per run, oldest first, with regression
detection that is robust to noise because it uses the rolling median
and MAD (median absolute deviation) of the preceding runs rather than
a single baseline file.  The latest point is a regression only when it
clears **both** gates:

- ``latest > median * threshold`` — the same multiplicative threshold
  ``obs/diff.py`` applies pairwise (default
  :data:`~repro.obs.diff.DEFAULT_THRESHOLD`); and
- ``latest > median + mad_k * MAD`` — a dispersion gate, so a metric
  that routinely swings 2× between runs does not page anyone.

Values below ``min_value`` are never flagged (micro-timings flap by
integer multiples from scheduler noise; same rationale as
``DEFAULT_MIN_MEAN``), and fewer than :data:`MIN_HISTORY` prior points
means "not enough history", never "regression".

Also here: occupancy-vs-n aggregation across engines (the paper's
longitudinal question), drift alarms-over-time, and span-level run
diffing straight out of the DB (reusing :class:`TraceDiff`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.diff import (
    DEFAULT_MIN_MEAN,
    DEFAULT_THRESHOLD,
    SpanDelta,
    TraceDiff,
)
from .repository import RunDB, RunDBError

#: Prior points required before regression detection arms.
MIN_HISTORY = 2

#: Default MAD multiplier for the dispersion gate.
DEFAULT_MAD_K = 3.0

#: Default value floor below which trend points are never flagged
#: (seconds for walls; callers override for non-time metrics).
DEFAULT_MIN_VALUE = 1e-3


def median(values: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even counts)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation about the median."""
    center = median(values)
    return median([abs(v - center) for v in values])


@dataclass(frozen=True)
class TrendPoint:
    """One run's value of a tracked metric."""

    run_id: int
    created_unix: float
    value: float
    label: Optional[str] = None
    count: int = 0


@dataclass
class Trend:
    """A metric's history, oldest first, with regression judgment."""

    name: str
    points: List[TrendPoint] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    mad_k: float = DEFAULT_MAD_K
    min_value: float = DEFAULT_MIN_VALUE
    unit: str = "s"

    @property
    def latest(self) -> Optional[TrendPoint]:
        return self.points[-1] if self.points else None

    @property
    def history(self) -> List[float]:
        """Every value before the latest point."""
        return [p.value for p in self.points[:-1]]

    @property
    def rolling_median(self) -> Optional[float]:
        history = self.history
        return median(history) if history else None

    @property
    def rolling_mad(self) -> Optional[float]:
        history = self.history
        return mad(history) if history else None

    @property
    def armed(self) -> bool:
        """Enough history for a verdict?"""
        return len(self.points) >= MIN_HISTORY + 1

    @property
    def regression(self) -> bool:
        """True when the latest point clears both regression gates."""
        if not self.armed:
            return False
        latest = self.points[-1].value
        if latest < self.min_value:
            return False
        center = self.rolling_median or 0.0
        spread = self.rolling_mad or 0.0
        return (
            latest > center * self.threshold
            and latest > center + self.mad_k * spread
        )

    def _format(self, value: float) -> str:
        if self.unit == "s":
            return f"{value * 1e3:10.3f}ms"
        return f"{value:12.6g}{self.unit}"

    def render(self, width: int = 30) -> str:
        """Text trend: one bar-chart line per run plus the verdict."""
        lines = [f"trend: {self.name} ({len(self.points)} run(s))"]
        if not self.points:
            lines.append("  (no data)")
            return "\n".join(lines)
        peak = max(p.value for p in self.points) or 1.0
        for point in self.points:
            bar = "#" * max(1, round(width * point.value / peak))
            label = f" [{point.label}]" if point.label else ""
            lines.append(
                f"  run {point.run_id:>4}  {self._format(point.value)}"
                f"  {bar}{label}"
            )
        if not self.armed:
            lines.append(
                f"  verdict: insufficient history "
                f"(need {MIN_HISTORY + 1} runs)"
            )
            return "\n".join(lines)
        center = self.rolling_median or 0.0
        spread = self.rolling_mad or 0.0
        latest = self.points[-1].value
        verdict = "REGRESSION" if self.regression else "ok"
        lines.append(
            f"  verdict: {verdict} — latest {self._format(latest).strip()}"
            f" vs median {self._format(center).strip()}"
            f" (MAD {self._format(spread).strip()},"
            f" gates: >{self.threshold:g}x and >median+{self.mad_k:g}*MAD)"
        )
        return "\n".join(lines)


def _to_points(rows: List[Dict[str, Any]]) -> List[TrendPoint]:
    return [
        TrendPoint(
            run_id=row["run_id"],
            created_unix=row["created_unix"],
            value=row["value"],
            label=row.get("label"),
            count=int(row.get("count", 0)),
        )
        for row in rows
    ]


def stage_trend(
    db: RunDB,
    stage: str,
    metric: str = "stage_wall_s",
    profile: Optional[str] = None,
    limit: Optional[int] = None,
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> Trend:
    """``metric`` for one bench stage across recorded runs."""
    unit = "s" if metric.endswith("_s") else ""
    min_value = DEFAULT_MIN_VALUE if unit == "s" else 0.0
    return Trend(
        name=f"{stage}.{metric}",
        points=_to_points(
            db.stage_history(stage, metric, profile=profile, limit=limit)
        ),
        threshold=threshold,
        mad_k=mad_k,
        min_value=min_value,
        unit=unit,
    )


def span_trend(
    db: RunDB,
    path: str,
    trace: Optional[str] = None,
    limit: Optional[int] = None,
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> Trend:
    """Per-call mean latency of one span path across runs."""
    return Trend(
        name=path if trace is None else f"{trace}:{path}",
        points=_to_points(db.span_history(path, trace=trace, limit=limit)),
        threshold=threshold,
        mad_k=mad_k,
        min_value=DEFAULT_MIN_MEAN,
        unit="s",
    )


def gauge_trend(
    db: RunDB,
    name: str,
    limit: Optional[int] = None,
    threshold: float = DEFAULT_THRESHOLD,
    mad_k: float = DEFAULT_MAD_K,
) -> Trend:
    """Mean gauge value per run (e.g. ``planner.drift``)."""
    return Trend(
        name=f"gauge:{name}",
        points=_to_points(db.gauge_history(name, limit=limit)),
        threshold=threshold,
        mad_k=mad_k,
        min_value=0.0,
        unit="",
    )


def by_commit(db: RunDB, trend: Trend) -> Trend:
    """Collapse a trend to one point per commit.

    Runs are grouped by the ``git_sha`` stamped into ``runs.env``;
    each group becomes a single point holding the group's **median**
    value (robust to one noisy run per commit), labeled with the short
    sha, the run count, and the within-commit MAD.  Groups order by
    their newest run, so the trend's "latest" point is the newest
    commit and the regression gates compare commit against commit
    instead of run against run.  Runs without a recorded sha group
    under ``(no sha)``.
    """
    shas = db.run_shas()
    groups: Dict[Optional[str], List[TrendPoint]] = {}
    for point in trend.points:
        groups.setdefault(shas.get(point.run_id), []).append(point)
    collapsed: List[TrendPoint] = []
    for sha, points in groups.items():
        values = [p.value for p in points]
        newest = max(points, key=lambda p: (p.created_unix, p.run_id))
        short = sha[:10] if sha else "(no sha)"
        label = f"{short} n={len(points)}"
        if len(points) > 1:
            label += f" mad={mad(values):.3g}"
        collapsed.append(TrendPoint(
            run_id=newest.run_id,
            created_unix=newest.created_unix,
            value=median(values),
            label=label,
            count=sum(p.count for p in points),
        ))
    collapsed.sort(key=lambda p: (p.created_unix, p.run_id))
    return Trend(
        name=f"{trend.name} (by commit)",
        points=collapsed,
        threshold=trend.threshold,
        mad_k=trend.mad_k,
        min_value=trend.min_value,
        unit=trend.unit,
    )


def drift_report(db: RunDB, limit: Optional[int] = None) -> str:
    """Alarms-over-time table across serve runs."""
    rows = db.drift_history(limit=limit)
    if not rows:
        return "drift: no serve runs recorded"
    lines = [
        "drift: alarms over time",
        "  run   samples  alarms  max|page_err|  max|occ_err|  peak_n",
    ]
    for row in rows:
        lines.append(
            f"  {row['run_id']:>4}  {row['samples']:>7}  "
            f"{int(row['alarms'] or 0):>6}  "
            f"{float(row['max_page_error'] or 0.0):>12.4f}  "
            f"{float(row['max_occupancy_error'] or 0.0):>11.4f}  "
            f"{int(row['peak_points'] or 0):>6}"
        )
    total = sum(int(row["alarms"] or 0) for row in rows)
    lines.append(f"  total: {total} alarm(s) across {len(rows)} run(s)")
    return "\n".join(lines)


def occupancy_report(db: RunDB, engine: Optional[str] = None) -> str:
    """Occupancy-vs-n table aggregated over every recorded trial."""
    rows = db.occupancy_vs_n(engine=engine)
    if not rows:
        return "occupancy: no trial results recorded"
    lines = [
        "occupancy vs n (all recorded trials)",
        "        n  engine   mean_occupancy  runs  trials",
    ]
    for row in rows:
        lines.append(
            f"  {int(row['n_points']):>7}  {row['engine']:<7}  "
            f"{float(row['mean_occupancy']):>14.6f}  "
            f"{int(row['runs']):>4}  {int(row['trials'] or 0):>6}"
        )
    return "\n".join(lines)


def diff_runs(
    db: RunDB,
    old_id: int,
    new_id: int,
    threshold: float = DEFAULT_THRESHOLD,
    min_mean: float = DEFAULT_MIN_MEAN,
) -> Tuple[TraceDiff, List[str]]:
    """Span-level diff between two recorded runs, plus stage-wall lines.

    Returns ``(trace_diff, stage_lines)``; span paths are prefixed with
    their trace name (``census:parallel.pool/...``) so multi-trace runs
    stay unambiguous.  Stage walls past the threshold append
    ``REGRESSION`` lines but the :class:`TraceDiff` alone carries the
    exit-code verdict for spans.
    """
    old_spans = db.span_paths(old_id)
    new_spans = db.span_paths(new_id)
    diff = TraceDiff(threshold=threshold)
    for key in sorted(set(old_spans) | set(new_spans)):
        trace, path = key
        shown = f"{trace}:{path}" if trace else path
        if key not in old_spans:
            diff.added.append(shown)
            continue
        if key not in new_spans:
            diff.removed.append(shown)
            continue
        old_node, new_node = old_spans[key], new_spans[key]
        old_count, new_count = int(old_node["count"]), int(new_node["count"])
        if not old_count or not new_count:
            continue
        old_mean, new_mean = float(old_node["mean_s"]), float(new_node["mean_s"])
        diff.compared += 1
        if max(old_mean, new_mean) < min_mean:
            continue
        delta = SpanDelta(shown, old_mean, new_mean, old_count, new_count)
        if new_mean > old_mean * threshold:
            diff.regressions.append(delta)
        elif new_mean * threshold < old_mean:
            diff.improvements.append(delta)
    stage_lines = _stage_lines(db, old_id, new_id, threshold)
    return diff, stage_lines


def _stage_lines(
    db: RunDB, old_id: int, new_id: int, threshold: float
) -> List[str]:
    old_stages = {
        s["stage"]: s["stage_wall_s"] for s in db.run(old_id)["stages"]
    }
    new_stages = {
        s["stage"]: s["stage_wall_s"] for s in db.run(new_id)["stages"]
    }
    lines: List[str] = []
    for stage in sorted(set(old_stages) | set(new_stages)):
        old_wall, new_wall = old_stages.get(stage), new_stages.get(stage)
        if old_wall is None or new_wall is None:
            lines.append(
                f"stage {stage}: only in "
                f"run {new_id if old_wall is None else old_id}"
            )
            continue
        if old_wall <= 0.0:
            continue
        ratio = new_wall / old_wall
        flag = "  REGRESSION" if (
            ratio > threshold and new_wall >= DEFAULT_MIN_VALUE
        ) else ""
        lines.append(
            f"stage {stage}: {old_wall:.4f}s -> {new_wall:.4f}s "
            f"({ratio:.2f}x){flag}"
        )
    return lines


def latest_run_pair(
    db: RunDB, kind: str = "bench"
) -> Optional[Tuple[int, int]]:
    """``(older_id, newer_id)`` of the two most recent runs of ``kind``
    (matching the newest run's profile when possible), or ``None``."""
    runs = db.runs(kind=kind, limit=None, newest_first=True)
    if len(runs) < 2:
        return None
    newest = runs[0]
    for candidate in runs[1:]:
        if candidate["profile"] == newest["profile"]:
            return int(candidate["id"]), int(newest["id"])
    return int(runs[1]["id"]), int(newest["id"])
