"""`RunDB` — the SQLite-backed run repository.

One class owns all reads and writes against the schema in
:mod:`repro.rundb.schema`.  Connections open in WAL mode with a busy
timeout, so several recorders (two ``runtime_session``\\ s, a bench
process, and a serving process) can append into one file concurrently:
WAL lets readers run against writers, and the short retry loop in
:meth:`_write` absorbs the rare ``database is locked`` that still
escapes the busy handler (stress-tested by
``tests/test_rundb_repository.py``).

Writes are small, explicit transactions — a whole session flush is one
transaction, a drift sample another — so a crashed recorder never
leaves a half-run behind (its ``status`` simply stays ``open``).

The companion :class:`AutotuneStore` is the tiny persistence backend
the chunk autotuner plugs into: load/save of one locked-in chunk size
keyed by ``(engine, n_points, workers)``, silent on storage errors so
tuning can never break a run.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs.diff import flatten_spans
from .schema import SCHEMA_VERSION, SchemaError, migrate

#: Seconds sqlite itself waits on a locked database before erroring.
BUSY_TIMEOUT_S = 30.0

#: Attempts (with linear backoff) the write wrapper makes on top.
WRITE_RETRIES = 5

#: ``gc``'s default retention: newest runs kept per kind.
DEFAULT_KEEP = 100


class RunDBError(RuntimeError):
    """The run database cannot serve the request."""


def _json(value: Any) -> Optional[str]:
    if value is None:
        return None
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class RunDB:
    """The experiment/run database at ``path`` (created on first open).

    Usable as a context manager; all methods open the connection
    lazily, so constructing a ``RunDB`` is free and never touches the
    filesystem.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path) if path != ":memory:" else path
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------

    @property
    def path(self) -> Union[str, Path]:
        """Where the database lives (``":memory:"`` for tests)."""
        return self._path

    def connect(self) -> sqlite3.Connection:
        """The live connection (opened, pragma'd, and migrated once)."""
        if self._conn is None:
            if isinstance(self._path, Path):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self._path),
                timeout=BUSY_TIMEOUT_S,
                isolation_level=None,  # explicit transactions only
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            try:
                migrate(conn)
            except BaseException:
                conn.close()
                raise
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the connection (safe when never opened)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunDB":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        """The schema version of the opened file."""
        self.connect()
        return SCHEMA_VERSION

    @contextmanager
    def _write(self) -> Iterator[sqlite3.Connection]:
        """One immediate-mode write transaction, retried on lock."""
        conn = self.connect()
        last: Optional[sqlite3.OperationalError] = None
        for attempt in range(WRITE_RETRIES):
            try:
                conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                if "locked" not in str(exc) and "busy" not in str(exc):
                    raise
                last = exc
                time.sleep(0.05 * (attempt + 1))
                continue
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            return
        raise RunDBError(
            f"run DB stayed locked through {WRITE_RETRIES} retries"
        ) from last

    # ------------------------------------------------------------------
    # writing: runs
    # ------------------------------------------------------------------

    def begin_run(
        self,
        kind: str,
        label: Optional[str] = None,
        source: str = "live",
        created_unix: Optional[float] = None,
        profile: Optional[str] = None,
        bench_version: Optional[int] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        env: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Insert an ``open`` run row; returns its id."""
        if created_unix is None:
            created_unix = time.time()
        with self._write() as conn:
            cursor = conn.execute(
                "INSERT INTO runs (created_unix, kind, label, source, "
                "profile, bench_version, engine, workers, env, extra) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    created_unix, kind, label, source, profile,
                    bench_version, engine, workers, _json(env),
                    _json(extra),
                ),
            )
            return int(cursor.lastrowid)

    def finish_run(
        self,
        run_id: int,
        wall_s: Optional[float] = None,
        peak_rss_kb: Optional[float] = None,
    ) -> None:
        """Mark a run ``done`` and stamp its totals."""
        with self._write() as conn:
            conn.execute(
                "UPDATE runs SET status = 'done', "
                "wall_s = COALESCE(?, wall_s), "
                "peak_rss_kb = COALESCE(?, peak_rss_kb) WHERE id = ?",
                (wall_s, peak_rss_kb, run_id),
            )

    # ------------------------------------------------------------------
    # writing: payloads
    # ------------------------------------------------------------------

    def ensure_spec(self, spec_dict: Dict[str, Any], cache_key: str) -> int:
        """The ``specs`` row id for this frozen spec (insert-or-reuse)."""
        with self._write() as conn:
            return self._ensure_spec(conn, spec_dict, cache_key)

    @staticmethod
    def _ensure_spec(
        conn: sqlite3.Connection, spec_dict: Dict[str, Any], cache_key: str
    ) -> int:
        row = conn.execute(
            "SELECT id FROM specs WHERE cache_key = ?", (cache_key,)
        ).fetchone()
        if row is not None:
            return int(row["id"])
        cursor = conn.execute(
            "INSERT INTO specs (cache_key, capacity, n_points, trials, "
            "seed, generator, spec_json) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                cache_key,
                int(spec_dict["capacity"]),
                int(spec_dict["n_points"]),
                int(spec_dict["trials"]),
                int(spec_dict["seed"]),
                str(spec_dict["generator"]),
                _json(spec_dict),
            ),
        )
        return int(cursor.lastrowid)

    def record_trials(
        self, run_id: int, trials: Sequence[Dict[str, Any]]
    ) -> None:
        """Insert buffered trial records (see ``recorder.py``) in one
        transaction.  Each record carries ``spec`` (dict), ``cache_key``
        and the execution summary."""
        if not trials:
            return
        with self._write() as conn:
            for record in trials:
                spec_id = self._ensure_spec(
                    conn, record["spec"], record["cache_key"]
                )
                conn.execute(
                    "INSERT INTO trial_results (run_id, spec_id, engine, "
                    "workers, cache_hit, wall_s, trials, mean_occupancy, "
                    "count_sums) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        spec_id,
                        record["engine"],
                        int(record["workers"]),
                        int(bool(record["cache_hit"])),
                        float(record["wall_s"]),
                        int(record["trials"]),
                        record.get("mean_occupancy"),
                        _json(record["count_sums"]),
                    ),
                )

    def record_stage(
        self,
        run_id: int,
        stage: str,
        stage_wall_s: Optional[float],
        stage_peak_rss_kb: Optional[float] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """One bench stage's scalar record."""
        with self._write() as conn:
            conn.execute(
                "INSERT INTO bench_stages (run_id, stage, stage_wall_s, "
                "stage_peak_rss_kb, payload) VALUES (?, ?, ?, ?, ?)",
                (run_id, stage, stage_wall_s, stage_peak_rss_kb,
                 _json(payload)),
            )

    def record_trace(
        self, run_id: int, trace: str, snapshot: Dict[str, Any]
    ) -> None:
        """Flatten one ``Tracer.to_dict()`` snapshot into the spans /
        counters / gauges tables under the trace name ``trace``."""
        flat = flatten_spans(snapshot.get("spans", {}))
        with self._write() as conn:
            for path, node in flat.items():
                count = int(node.get("count", 0))
                total = float(node.get("total_s", 0.0))
                mean = float(node.get("mean_s", total / count if count
                                       else 0.0))
                conn.execute(
                    "INSERT INTO spans (run_id, trace, path, count, "
                    "total_s, mean_s, min_s, max_s) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, trace, path, count, total, mean,
                        node.get("min_s"), node.get("max_s"),
                    ),
                )
            for name, value in snapshot.get("counters", {}).items():
                conn.execute(
                    "INSERT INTO counters (run_id, trace, name, value) "
                    "VALUES (?, ?, ?, ?)",
                    (run_id, trace, name, int(value)),
                )
            for name, stats in snapshot.get("gauges", {}).items():
                conn.execute(
                    "INSERT INTO gauges (run_id, trace, name, last, mean, "
                    "min, max, count) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, trace, name,
                        float(stats.get("last", 0.0)),
                        float(stats.get("mean", 0.0)),
                        stats.get("min"), stats.get("max"),
                        int(stats.get("count", 0)),
                    ),
                )

    def record_drift(
        self,
        run_id: int,
        seq: int,
        sample: Dict[str, Any],
        sampled_unix: Optional[float] = None,
    ) -> None:
        """One :meth:`DriftSample.to_dict` measurement for a serve run."""
        if sampled_unix is None:
            sampled_unix = time.time()
        with self._write() as conn:
            conn.execute(
                "INSERT INTO drift_samples (run_id, seq, sampled_unix, "
                "n_points, pages, page_error, occupancy_error, armed, "
                "alarm) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id, seq, sampled_unix,
                    int(sample["n_points"]),
                    int(sample.get("actual_pages", sample.get("pages", 0))),
                    float(sample["page_error"]),
                    float(sample["occupancy_error"]),
                    int(bool(sample["armed"])),
                    int(bool(sample["alarm"])),
                ),
            )

    def record_telemetry(
        self,
        run_id: int,
        seq: int,
        samples: Sequence[Dict[str, Any]],
        sampled_unix: Optional[float] = None,
    ) -> None:
        """One flush interval's metric samples (one transaction).

        Each sample dict carries ``name``, ``kind`` (``histogram`` /
        ``gauge`` / ``counter``), ``count``, ``value`` and — for
        histograms — ``mean`` / ``p50`` / ``p90`` / ``p99``.
        """
        if not samples:
            return
        if sampled_unix is None:
            sampled_unix = time.time()
        with self._write() as conn:
            for sample in samples:
                conn.execute(
                    "INSERT INTO telemetry_samples (run_id, seq, "
                    "sampled_unix, name, kind, count, value, mean, p50, "
                    "p90, p99) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, seq, sampled_unix,
                        str(sample["name"]),
                        str(sample["kind"]),
                        int(sample.get("count", 0)),
                        float(sample.get("value", 0.0)),
                        sample.get("mean"),
                        sample.get("p50"),
                        sample.get("p90"),
                        sample.get("p99"),
                    ),
                )

    # ------------------------------------------------------------------
    # writing: autotune
    # ------------------------------------------------------------------

    def set_chunk_size(
        self,
        engine: str,
        n_points: int,
        workers: int,
        chunk_size: int,
        run_id: Optional[int] = None,
    ) -> None:
        """Upsert the locked-in chunk size for one pool configuration."""
        with self._write() as conn:
            conn.execute(
                "INSERT INTO autotune (engine, n_points, workers, "
                "chunk_size, updated_unix, run_id) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (engine, n_points, workers) DO UPDATE SET "
                "chunk_size = excluded.chunk_size, "
                "updated_unix = excluded.updated_unix, "
                "run_id = excluded.run_id",
                (engine, n_points, workers, chunk_size, time.time(),
                 run_id),
            )

    def get_chunk_size(
        self, engine: str, n_points: int, workers: int
    ) -> Optional[int]:
        """The stored chunk size for one pool configuration, if any."""
        row = self.connect().execute(
            "SELECT chunk_size FROM autotune "
            "WHERE engine = ? AND n_points = ? AND workers = ?",
            (engine, n_points, workers),
        ).fetchone()
        return int(row["chunk_size"]) if row is not None else None

    def autotune_entries(self) -> List[Dict[str, Any]]:
        """Every stored autotune row (for ``db show`` / tests)."""
        rows = self.connect().execute(
            "SELECT * FROM autotune ORDER BY engine, n_points, workers"
        ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def runs(
        self,
        kind: Optional[str] = None,
        profile: Optional[str] = None,
        limit: Optional[int] = None,
        newest_first: bool = True,
    ) -> List[Dict[str, Any]]:
        """Run rows (as dicts), filtered and ordered by creation time."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if profile is not None:
            clauses.append("profile = ?")
            params.append(profile)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_unix {}, id {}".format(
            *("DESC", "DESC") if newest_first else ("ASC", "ASC")
        )
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = self.connect().execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def run(self, run_id: int) -> Dict[str, Any]:
        """One run row plus child-table summaries; raises
        :class:`RunDBError` for an unknown id."""
        conn = self.connect()
        row = conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise RunDBError(f"no run #{run_id} in {self._path}")
        out = dict(row)
        out["stages"] = [
            dict(r) for r in conn.execute(
                "SELECT stage, stage_wall_s, stage_peak_rss_kb, payload "
                "FROM bench_stages WHERE run_id = ? ORDER BY id",
                (run_id,),
            ).fetchall()
        ]
        out["trials"] = [
            dict(r) for r in conn.execute(
                "SELECT t.*, s.capacity, s.n_points, s.seed, s.generator "
                "FROM trial_results t JOIN specs s ON s.id = t.spec_id "
                "WHERE t.run_id = ? ORDER BY t.id",
                (run_id,),
            ).fetchall()
        ]
        out["traces"] = [
            r["trace"] for r in conn.execute(
                "SELECT DISTINCT trace FROM spans WHERE run_id = ? "
                "ORDER BY trace",
                (run_id,),
            ).fetchall()
        ]
        out["drift"] = dict(conn.execute(
            "SELECT COUNT(*) AS samples, "
            "COALESCE(SUM(alarm), 0) AS alarms, "
            "COALESCE(MAX(ABS(page_error)), 0.0) AS max_page_error "
            "FROM drift_samples WHERE run_id = ?",
            (run_id,),
        ).fetchone())
        return out

    def counts(self) -> Dict[str, int]:
        """Row counts per table — the ``db init`` / ``ls`` footer."""
        conn = self.connect()
        out: Dict[str, int] = {}
        for table in (
            "runs", "specs", "trial_results", "bench_stages", "spans",
            "gauges", "counters", "drift_samples", "telemetry_samples",
            "autotune",
        ):
            out[table] = int(
                conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
        return out

    def stage_history(
        self,
        stage: str,
        metric: str = "stage_wall_s",
        profile: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """``metric`` for ``stage`` across runs, oldest first.

        ``metric`` is one of the dedicated columns (``stage_wall_s``,
        ``stage_peak_rss_kb``) or a scalar key inside the stage's JSON
        payload (``speedup``, ``inserts_per_s``, ...).
        """
        conn = self.connect()
        query = (
            "SELECT b.run_id, r.created_unix, r.label, r.profile, "
            "b.stage_wall_s, b.stage_peak_rss_kb, b.payload "
            "FROM bench_stages b JOIN runs r ON r.id = b.run_id "
            "WHERE b.stage = ?"
        )
        params: List[Any] = [stage]
        if profile is not None:
            query += " AND r.profile = ?"
            params.append(profile)
        query += " ORDER BY r.created_unix DESC, b.run_id DESC"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        points: List[Dict[str, Any]] = []
        for row in conn.execute(query, params).fetchall():
            if metric in ("stage_wall_s", "stage_peak_rss_kb"):
                value = row[metric]
            else:
                payload = json.loads(row["payload"] or "{}")
                value = payload.get(metric)
            if isinstance(value, (int, float)):
                points.append({
                    "run_id": int(row["run_id"]),
                    "created_unix": float(row["created_unix"]),
                    "label": row["label"],
                    "profile": row["profile"],
                    "value": float(value),
                })
        points.reverse()  # oldest first
        return points

    def span_history(
        self,
        path: str,
        trace: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Per-call mean seconds for one span path across runs, oldest
        first.  A run with several traces containing the path reports
        the call-weighted mean."""
        query = (
            "SELECT s.run_id, r.created_unix, r.label, "
            "SUM(s.total_s) AS total_s, SUM(s.count) AS count "
            "FROM spans s JOIN runs r ON r.id = s.run_id "
            "WHERE s.path = ?"
        )
        params: List[Any] = [path]
        if trace is not None:
            query += " AND s.trace = ?"
            params.append(trace)
        query += (
            " GROUP BY s.run_id ORDER BY r.created_unix DESC, s.run_id DESC"
        )
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        points = []
        for row in self.connect().execute(query, params).fetchall():
            count = int(row["count"] or 0)
            if count <= 0:
                continue
            points.append({
                "run_id": int(row["run_id"]),
                "created_unix": float(row["created_unix"]),
                "label": row["label"],
                "value": float(row["total_s"]) / count,
                "count": count,
            })
        points.reverse()
        return points

    def span_paths(self, run_id: int) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """``(trace, path) -> span row`` for one run (diffing input)."""
        out: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for row in self.connect().execute(
            "SELECT * FROM spans WHERE run_id = ?", (run_id,)
        ).fetchall():
            out[(row["trace"], row["path"])] = dict(row)
        return out

    def gauge_history(
        self, name: str, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Mean gauge value per run, oldest first."""
        query = (
            "SELECT g.run_id, r.created_unix, r.label, "
            "AVG(g.mean) AS value, SUM(g.count) AS count "
            "FROM gauges g JOIN runs r ON r.id = g.run_id "
            "WHERE g.name = ? GROUP BY g.run_id "
            "ORDER BY r.created_unix DESC, g.run_id DESC"
        )
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        points = [
            {
                "run_id": int(row["run_id"]),
                "created_unix": float(row["created_unix"]),
                "label": row["label"],
                "value": float(row["value"]),
                "count": int(row["count"] or 0),
            }
            for row in self.connect().execute(query, (name,)).fetchall()
        ]
        points.reverse()
        return points

    def drift_history(
        self, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Per-run drift summaries (serve runs), oldest first — the
        alarms-over-time view."""
        query = (
            "SELECT d.run_id, r.created_unix, r.label, "
            "COUNT(*) AS samples, SUM(d.alarm) AS alarms, "
            "MAX(ABS(d.page_error)) AS max_page_error, "
            "MAX(ABS(d.occupancy_error)) AS max_occupancy_error, "
            "MAX(d.n_points) AS peak_points "
            "FROM drift_samples d JOIN runs r ON r.id = d.run_id "
            "GROUP BY d.run_id ORDER BY r.created_unix DESC, d.run_id DESC"
        )
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        rows = [dict(row) for row in self.connect().execute(query).fetchall()]
        rows.reverse()
        return rows

    def telemetry_history(
        self,
        run_id: Optional[int] = None,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Telemetry sample rows, oldest flush first (``seq`` order).

        ``name`` may end with ``*`` to prefix-match (``service.op.*``
        selects every per-op latency histogram).
        """
        query = (
            "SELECT t.run_id, r.created_unix, r.label, t.seq, "
            "t.sampled_unix, t.name, t.kind, t.count, t.value, t.mean, "
            "t.p50, t.p90, t.p99 "
            "FROM telemetry_samples t JOIN runs r ON r.id = t.run_id"
        )
        clauses, params = [], []
        if run_id is not None:
            clauses.append("t.run_id = ?")
            params.append(int(run_id))
        if name is not None:
            if name.endswith("*"):
                clauses.append("t.name LIKE ?")
                params.append(name[:-1] + "%")
            else:
                clauses.append("t.name = ?")
                params.append(name)
        if kind is not None:
            clauses.append("t.kind = ?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY t.run_id, t.seq, t.name"
        if limit is not None:
            query += f" LIMIT {int(limit)}"
        return [
            dict(row)
            for row in self.connect().execute(query, params).fetchall()
        ]

    def run_shas(self) -> Dict[int, Optional[str]]:
        """``run_id -> git_sha`` for every run (``None`` when the run's
        env JSON carries no sha) — what groups trends by commit."""
        out: Dict[int, Optional[str]] = {}
        for row in self.connect().execute(
            "SELECT id, env FROM runs"
        ).fetchall():
            sha: Optional[str] = None
            if row["env"]:
                try:
                    env = json.loads(row["env"])
                except ValueError:
                    env = None
                if isinstance(env, dict):
                    value = env.get("git_sha")
                    if isinstance(value, str) and value:
                        sha = value
            out[int(row["id"])] = sha
        return out

    def occupancy_vs_n(
        self, engine: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Mean occupancy by (n_points, engine) across every recorded
        trial — the paper's occupancy-vs-n curve over *all* history."""
        query = (
            "SELECT s.n_points, t.engine, "
            "AVG(t.mean_occupancy) AS mean_occupancy, "
            "COUNT(*) AS runs, SUM(t.trials) AS trials "
            "FROM trial_results t JOIN specs s ON s.id = t.spec_id "
            "WHERE t.mean_occupancy IS NOT NULL"
        )
        params: List[Any] = []
        if engine is not None:
            query += " AND t.engine = ?"
            params.append(engine)
        query += " GROUP BY s.n_points, t.engine ORDER BY s.n_points, t.engine"
        return [
            dict(row)
            for row in self.connect().execute(query, params).fetchall()
        ]

    def find_ingested(
        self, kind: str, created_unix: float, label: Optional[str]
    ) -> Optional[int]:
        """An already-ingested run with identical identity, if any —
        what keeps ``db ingest`` idempotent."""
        row = self.connect().execute(
            "SELECT id FROM runs WHERE kind = ? AND source = 'ingest' "
            "AND created_unix = ? AND COALESCE(label, '') = ?",
            (kind, created_unix, label or ""),
        ).fetchone()
        return int(row["id"]) if row is not None else None

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------

    def gc(
        self, keep: int = DEFAULT_KEEP, vacuum: bool = True
    ) -> Dict[str, int]:
        """Delete all but the newest ``keep`` runs *per kind* (children
        cascade; autotune rows survive with ``run_id`` nulled), then
        optionally ``VACUUM``.  Returns deletion counts."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        with self._write() as conn:
            doomed = [
                int(row["id"]) for row in conn.execute(
                    "SELECT id FROM runs WHERE id NOT IN ("
                    "  SELECT id FROM runs AS r2 WHERE r2.kind = runs.kind"
                    "  ORDER BY r2.created_unix DESC, r2.id DESC LIMIT ?"
                    ")",
                    (keep,),
                ).fetchall()
            ]
            for run_id in doomed:
                conn.execute("DELETE FROM runs WHERE id = ?", (run_id,))
        if vacuum and doomed:
            self.connect().execute("VACUUM")
        return {"deleted_runs": len(doomed), "kept": keep}
