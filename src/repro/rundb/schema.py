"""The run database's schema — versioned DDL and migrations.

One SQLite file holds the longitudinal record the result cache cannot
express: every run (a CLI table sweep, a ``repro bench`` suite, a
``repro serve`` session, or an ingested historical snapshot) with its
frozen experiment specs, per-spec census summaries, bench stages,
flattened span/gauge/counter telemetry, drift samples, and the chunk
autotuner's locked-in sizes.

The schema is versioned through ``PRAGMA user_version``:
:data:`MIGRATIONS` maps each version to the DDL that *introduces* it,
and :func:`migrate` applies every pending step in order inside one
transaction.  Opening a database never destroys data — a v1 file
gains the v2 tables and keeps every row (round-tripped by
``tests/test_rundb_schema.py``); a file *newer* than this code refuses
to open rather than guessing.

Table map (v1)
--------------
``runs``
    One row per recorded run: kind (``session``/``bench``/``serve``/
    ``trace``), provenance (``live`` vs ``ingest``), wall clock, peak
    RSS, environment JSON.
``specs``
    Frozen :class:`~repro.runtime.spec.ExperimentSpec` rows, deduped
    by ``cache_key`` so reruns of the same experiment share one row.
``trial_results``
    One row per executed spec within a run: engine, workers, cache
    hit/miss, wall seconds, mean occupancy, and the raw per-class
    count sums (the mergeable census state).
``bench_stages``
    One row per bench stage per run: the uniform ``stage_wall_s`` /
    ``stage_peak_rss_kb`` plus the stage's scalar payload as JSON.
``spans`` / ``counters`` / ``gauges``
    Flattened tracer snapshots (span paths ``a/b/c`` as in
    :func:`repro.obs.diff.flatten_spans`), keyed by a trace name so a
    run can carry several (``parallel.serial`` vs ``parallel.pool``).

Added in v2
-----------
``autotune``
    The chunk autotuner's locked-in chunk size keyed by
    ``(engine, n_points, workers)`` — what seeds the next session.
``drift_samples``
    :class:`~repro.service.monitor.DriftSample` rows per serve run,
    the alarms-over-time record behind ``repro db trend --gauge
    planner.drift``.

Added in v3
-----------
``telemetry_samples``
    Periodic metric flushes from a live server
    (:class:`~repro.rundb.recorder.ServeTelemetryRecorder`): one row
    per metric per flush interval.  Histogram rows carry the
    *interval's own* count/sum/percentiles (deltas, not cumulative),
    so latency percentiles are trendable over a server's lifetime;
    gauge and counter rows carry the interval's last/accumulated
    values.  The record behind ``repro db report``'s
    latency-percentile chart.
"""

from __future__ import annotations

import sqlite3
from typing import Dict

#: Current schema version (``PRAGMA user_version`` of a fresh DB).
SCHEMA_VERSION = 3


class SchemaError(RuntimeError):
    """The database's schema cannot be used or upgraded."""


_MIGRATION_1 = """
CREATE TABLE runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    created_unix  REAL    NOT NULL,
    kind          TEXT    NOT NULL,
    label         TEXT,
    source        TEXT    NOT NULL DEFAULT 'live',
    status        TEXT    NOT NULL DEFAULT 'open',
    profile       TEXT,
    bench_version INTEGER,
    engine        TEXT,
    workers       INTEGER,
    wall_s        REAL,
    peak_rss_kb   REAL,
    env           TEXT,
    extra         TEXT
);
CREATE INDEX idx_runs_created ON runs (created_unix);
CREATE INDEX idx_runs_kind ON runs (kind, created_unix);

CREATE TABLE specs (
    id        INTEGER PRIMARY KEY AUTOINCREMENT,
    cache_key TEXT    NOT NULL UNIQUE,
    capacity  INTEGER NOT NULL,
    n_points  INTEGER NOT NULL,
    trials    INTEGER NOT NULL,
    seed      INTEGER NOT NULL,
    generator TEXT    NOT NULL,
    spec_json TEXT    NOT NULL
);

CREATE TABLE trial_results (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id         INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    spec_id        INTEGER NOT NULL REFERENCES specs (id),
    engine         TEXT    NOT NULL,
    workers        INTEGER NOT NULL,
    cache_hit      INTEGER NOT NULL,
    wall_s         REAL    NOT NULL,
    trials         INTEGER NOT NULL,
    mean_occupancy REAL,
    count_sums     TEXT    NOT NULL
);
CREATE INDEX idx_trials_run ON trial_results (run_id);
CREATE INDEX idx_trials_spec ON trial_results (spec_id);

CREATE TABLE bench_stages (
    id                INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id            INTEGER NOT NULL REFERENCES runs (id)
                      ON DELETE CASCADE,
    stage             TEXT    NOT NULL,
    stage_wall_s      REAL,
    stage_peak_rss_kb REAL,
    payload           TEXT
);
CREATE INDEX idx_stages_run ON bench_stages (run_id, stage);
CREATE INDEX idx_stages_stage ON bench_stages (stage);

CREATE TABLE spans (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id  INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    trace   TEXT    NOT NULL DEFAULT '',
    path    TEXT    NOT NULL,
    count   INTEGER NOT NULL,
    total_s REAL    NOT NULL,
    mean_s  REAL    NOT NULL,
    min_s   REAL,
    max_s   REAL
);
CREATE INDEX idx_spans_run ON spans (run_id);
CREATE INDEX idx_spans_path ON spans (path);

CREATE TABLE counters (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    trace  TEXT    NOT NULL DEFAULT '',
    name   TEXT    NOT NULL,
    value  INTEGER NOT NULL
);
CREATE INDEX idx_counters_run ON counters (run_id);

CREATE TABLE gauges (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    trace  TEXT    NOT NULL DEFAULT '',
    name   TEXT    NOT NULL,
    last   REAL    NOT NULL,
    mean   REAL    NOT NULL,
    min    REAL,
    max    REAL,
    count  INTEGER NOT NULL
);
CREATE INDEX idx_gauges_run ON gauges (run_id);
CREATE INDEX idx_gauges_name ON gauges (name);
"""

_MIGRATION_2 = """
CREATE TABLE autotune (
    engine       TEXT    NOT NULL,
    n_points     INTEGER NOT NULL,
    workers      INTEGER NOT NULL,
    chunk_size   INTEGER NOT NULL,
    updated_unix REAL    NOT NULL,
    run_id       INTEGER REFERENCES runs (id) ON DELETE SET NULL,
    PRIMARY KEY (engine, n_points, workers)
);

CREATE TABLE drift_samples (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id           INTEGER NOT NULL REFERENCES runs (id)
                     ON DELETE CASCADE,
    seq              INTEGER NOT NULL,
    sampled_unix     REAL    NOT NULL,
    n_points         INTEGER NOT NULL,
    pages            INTEGER NOT NULL,
    page_error       REAL    NOT NULL,
    occupancy_error  REAL    NOT NULL,
    armed            INTEGER NOT NULL,
    alarm            INTEGER NOT NULL
);
CREATE INDEX idx_drift_run ON drift_samples (run_id, seq);
"""

_MIGRATION_3 = """
CREATE TABLE telemetry_samples (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id       INTEGER NOT NULL REFERENCES runs (id)
                 ON DELETE CASCADE,
    seq          INTEGER NOT NULL,
    sampled_unix REAL    NOT NULL,
    name         TEXT    NOT NULL,
    kind         TEXT    NOT NULL,
    count        INTEGER NOT NULL,
    value        REAL    NOT NULL,
    mean         REAL,
    p50          REAL,
    p90          REAL,
    p99          REAL
);
CREATE INDEX idx_telemetry_run ON telemetry_samples (run_id, seq);
CREATE INDEX idx_telemetry_name ON telemetry_samples (name, run_id)
"""

#: version -> DDL script introducing it; applied in ascending order.
MIGRATIONS: Dict[int, str] = {
    1: _MIGRATION_1,
    2: _MIGRATION_2,
    3: _MIGRATION_3,
}


def schema_version(conn: sqlite3.Connection) -> int:
    """The ``user_version`` the file currently carries (0 = empty)."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> int:
    """Bring ``conn`` to :data:`SCHEMA_VERSION`; returns the version.

    Every pending migration runs inside one explicit transaction so a
    crash mid-upgrade leaves the old, consistent version.  A database
    written by newer code raises :class:`SchemaError` instead of being
    misread.
    """
    version = schema_version(conn)
    if version == SCHEMA_VERSION:
        return version
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"run DB is schema v{version}, newer than this code's "
            f"v{SCHEMA_VERSION}; refusing to open"
        )
    # statement-at-a-time, NOT executescript: executescript commits any
    # open transaction first, which would break migration atomicity
    conn.execute("BEGIN IMMEDIATE")
    try:
        # another writer may have migrated while we waited for the lock
        version = schema_version(conn)
        for step in range(version + 1, SCHEMA_VERSION + 1):
            for statement in _statements(MIGRATIONS[step]):
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version = {step}")
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    return SCHEMA_VERSION


def _statements(script: str):
    """Individual DDL statements of a migration script (the schema's
    scripts never contain ``;`` inside a literal)."""
    for chunk in script.split(";"):
        statement = chunk.strip()
        if statement:
            yield statement
