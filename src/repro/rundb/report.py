"""``repro db report`` — a markdown dashboard over the run database.

Renders the database's longitudinal record as a single self-contained
markdown document with **inline SVG** charts (no plotting dependency,
no external image files — the output pastes into a PR description or
uploads as one CI artifact):

- **Occupancy vs n** — the paper's central curve, aggregated over
  every recorded trial, one series per engine.
- **Service latency percentiles** — per-op p50/p99 over a serve run's
  lifetime, read from the ``telemetry_samples`` the server's
  :class:`~repro.rundb.recorder.ServeTelemetryRecorder` flushed on its
  interval.  Each sample is an *interval delta*, so a spike in one
  minute stays visible instead of drowning in a cumulative average.
- **Drift over time** — max absolute page-count error per serve run,
  the steady-state-model health trend.

The SVG generator is deliberately tiny: scaled polylines, four axis
labels, and a legend.  :func:`svg_line_chart` is pure (points in,
markup out) so tests can pin its geometry without a database.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from .repository import RunDB

#: Series colors, cycled (solarized-ish, legible on white).
PALETTE = (
    "#268bd2", "#dc322f", "#859900", "#b58900",
    "#6c71c4", "#2aa198", "#d33682", "#657b83",
)

#: One named series: ``(label, [(x, y), ...])``.
Series = Tuple[str, Sequence[Tuple[float, float]]]


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def svg_line_chart(
    series: Sequence[Series],
    title: str,
    x_label: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 260,
) -> str:
    """An inline-SVG line chart of ``series`` (empty series dropped).

    Returns an empty string when no series holds a point — callers
    skip the chart rather than embedding an empty frame.
    """
    populated = [(name, list(points)) for name, points in series if points]
    if not populated:
        return ""
    xs = [x for _, points in populated for x, _ in points]
    ys = [y for _, points in populated for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    margin_l, margin_r, margin_t, margin_b = 56, 16, 28, 40
    plot_w = width - margin_l - margin_r
    # lay the legend out first: entries wrap onto extra rows rather
    # than running past the right edge, and the plot moves down to
    # make room (a one-row legend keeps the classic geometry)
    legend_slots = []
    legend_x, legend_row = margin_l + 8, 0
    for name, _ in populated:
        entry_w = 26 + 6 * len(name)
        if (legend_x + entry_w > width - margin_r
                and legend_x > margin_l + 8):
            legend_row += 1
            legend_x = margin_l + 8
        legend_slots.append((legend_x, legend_row))
        legend_x += entry_w
    margin_t += 12 * legend_row
    plot_h = height - margin_t - margin_b

    def px(x: float) -> float:
        return margin_l + plot_w * (x - x_lo) / (x_hi - x_lo)

    def py(y: float) -> float:
        return margin_t + plot_h * (1.0 - (y - y_lo) / (y_hi - y_lo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{escape(title, {chr(34): "&quot;"})}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_l}" y="18" font-family="sans-serif" '
        f'font-size="13" font-weight="bold">{escape(title)}</text>',
        # axes
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#333" stroke-width="1"/>',
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" '
        f'stroke="#333" stroke-width="1"/>',
    ]
    label_font = 'font-family="sans-serif" font-size="10" fill="#555"'
    parts.append(
        f'<text x="{margin_l - 6}" y="{margin_t + 4}" {label_font} '
        f'text-anchor="end">{escape(_format_tick(y_hi))}</text>'
    )
    parts.append(
        f'<text x="{margin_l - 6}" y="{margin_t + plot_h + 4}" '
        f'{label_font} text-anchor="end">'
        f'{escape(_format_tick(y_lo))}</text>'
    )
    parts.append(
        f'<text x="{margin_l}" y="{margin_t + plot_h + 14}" '
        f'{label_font}>{escape(_format_tick(x_lo))}</text>'
    )
    parts.append(
        f'<text x="{margin_l + plot_w}" y="{margin_t + plot_h + 14}" '
        f'{label_font} text-anchor="end">'
        f'{escape(_format_tick(x_hi))}</text>'
    )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.0f}" '
            f'y="{height - 6}" {label_font} '
            f'text-anchor="middle">{escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="12" y="{margin_t + plot_h / 2:.0f}" {label_font} '
            f'text-anchor="middle" transform="rotate(-90 12 '
            f'{margin_t + plot_h / 2:.0f})">{escape(y_label)}</text>'
        )
    for index, (name, points) in enumerate(populated):
        color = PALETTE[index % len(PALETTE)]
        coords = sorted(points)
        if len(coords) == 1:
            x, y = coords[0]
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        else:
            path = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in coords)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="1.5"/>'
            )
        slot_x, slot_row = legend_slots[index]
        slot_y = 30 + 12 * slot_row
        parts.append(
            f'<rect x="{slot_x}" y="{slot_y}" width="10" '
            f'height="3" fill="{color}"/>'
            f'<text x="{slot_x + 14}" y="{slot_y + 5}" {label_font}>'
            f'{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _occupancy_section(db: RunDB) -> List[str]:
    rows = db.occupancy_vs_n()
    lines = ["## Occupancy vs n", ""]
    if not rows:
        lines.append("_No trial results recorded._")
        return lines
    by_engine: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        by_engine.setdefault(row["engine"], []).append(
            (float(row["n_points"]), float(row["mean_occupancy"]))
        )
    lines.append(svg_line_chart(
        sorted(by_engine.items()),
        title="mean page occupancy vs population size",
        x_label="n points", y_label="mean occupancy",
    ))
    lines.append("")
    lines.append("| n | engine | mean occupancy | runs | trials |")
    lines.append("|--:|:--|--:|--:|--:|")
    for row in rows:
        lines.append(
            f"| {int(row['n_points'])} | {row['engine']} "
            f"| {float(row['mean_occupancy']):.6f} "
            f"| {int(row['runs'])} | {int(row['trials'] or 0)} |"
        )
    return lines


def latest_telemetry_run(db: RunDB) -> Optional[int]:
    """Newest serve run that flushed telemetry samples, if any."""
    for run in db.runs(kind="serve", newest_first=True):
        if db.telemetry_history(run_id=int(run["id"]), limit=1):
            return int(run["id"])
    return None


def _latency_section(db: RunDB) -> List[str]:
    lines = ["## Service latency percentiles", ""]
    run_id = latest_telemetry_run(db)
    if run_id is None:
        lines.append(
            "_No serve telemetry recorded (run `repro serve start` "
            "against a run database)._"
        )
        return lines
    rows = db.telemetry_history(
        run_id=run_id, name="service.op.*", kind="histogram"
    )
    series: Dict[str, List[Tuple[float, float]]] = {}
    totals: Dict[str, int] = {}
    for row in rows:
        op = row["name"][len("service.op."):]
        for quantile in ("p50", "p99"):
            value = row[quantile]
            if value is not None:
                series.setdefault(f"{op} {quantile}", []).append(
                    (float(row["seq"]), float(value) * 1e3)
                )
        totals[op] = totals.get(op, 0) + int(row["count"])
    lines.append(
        f"Per-interval latency deltas from serve run **#{run_id}** "
        f"(each point is one flush interval's own percentile, not a "
        f"cumulative average)."
    )
    lines.append("")
    lines.append(svg_line_chart(
        sorted(series.items()),
        title=f"per-op latency percentiles, serve run #{run_id}",
        x_label="flush interval", y_label="latency (ms)",
    ))
    lines.append("")
    lines.append("| op | requests sampled |")
    lines.append("|:--|--:|")
    for op in sorted(totals):
        lines.append(f"| {op} | {totals[op]} |")
    return lines


def _drift_section(db: RunDB) -> List[str]:
    rows = db.drift_history()
    lines = ["## Drift over time", ""]
    if not rows:
        lines.append("_No drift samples recorded._")
        return lines
    points = [
        (float(index), float(row["max_page_error"] or 0.0))
        for index, row in enumerate(rows)
    ]
    alarms = sum(int(row["alarms"] or 0) for row in rows)
    lines.append(svg_line_chart(
        [("max |page error|", points)],
        title="steady-state drift per serve run",
        x_label="serve run (oldest first)", y_label="max |page error|",
    ))
    lines.append("")
    lines.append(
        f"{alarms} alarm(s) across {len(rows)} serve run(s); "
        f"runs shown oldest first: "
        + ", ".join(f"#{row['run_id']}" for row in rows)
        + "."
    )
    return lines


def render_report(db: RunDB) -> str:
    """The full markdown report (charts inline, ends with a newline)."""
    counts = db.counts()
    lines = [
        "# repro run report",
        "",
        f"Database: `{db.path}` — {counts['runs']} run(s), "
        f"{counts['trial_results']} trial(s), "
        f"{counts['drift_samples']} drift sample(s), "
        f"{counts['telemetry_samples']} telemetry sample(s).",
        "",
    ]
    lines.extend(_occupancy_section(db))
    lines.append("")
    lines.extend(_latency_section(db))
    lines.append("")
    lines.extend(_drift_section(db))
    return "\n".join(lines).rstrip() + "\n"
