"""``repro db`` — the run database's command-line surface.

Subcommands::

    repro db init                         # create/upgrade the DB
    repro db ingest BENCH_10.json ...      # backfill committed baselines
    repro db ls [--kind bench] [-n 20]    # list recorded runs
    repro db show RUN_ID                  # one run in detail
    repro db trend --stage census --metric stage_wall_s
    repro db trend --span runtime.execute
    repro db trend --gauge planner.drift  # drift alarms over time
    repro db trend --span ... --by-commit # one point per git commit
    repro db occupancy [--engine vector]  # occupancy vs n, all history
    repro db report [--out report.md]     # markdown + inline SVG charts
    repro db diff [OLD NEW]               # span+stage diff of two runs
    repro db gc [--keep 100]              # retention

``trend`` applies the historical regression detector (rolling median +
MAD; see :mod:`repro.rundb.analyzer`) and exits nonzero when the
latest run regressed — the DB-backed replacement for single-baseline
file diffs.  ``--by-commit`` groups runs by the ``git_sha`` stamped
into ``runs.env`` first (median per commit, within-commit MAD in the
label), so a commit benched five times counts once.  ``diff`` without
run ids compares the two newest bench runs, preferring a pair with
matching profiles.  ``report`` renders the occupancy-vs-n curve, the
latest serve run's latency percentiles, and the drift trend as one
self-contained markdown document (:mod:`repro.rundb.report`).

Every subcommand accepts ``--db PATH`` (default: ``$REPRO_DB`` or
``~/.local/share/repro/runs.sqlite``; ``REPRO_NO_DB`` makes read-write
commands refuse rather than silently target the default file).
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime
from pathlib import Path
from typing import List, Optional

from ..obs.diff import DEFAULT_MIN_MEAN, DEFAULT_THRESHOLD
from . import analyzer
from .analyzer import DEFAULT_MAD_K
from .recorder import ingest_file, resolve_db_path
from .repository import DEFAULT_KEEP, RunDB, RunDBError
from .schema import SchemaError


def _when(unix: Optional[float]) -> str:
    if not unix:
        return "(backfill)"
    return datetime.fromtimestamp(unix).strftime("%Y-%m-%d %H:%M:%S")


def _open_db(args: argparse.Namespace, must_exist: bool) -> RunDB:
    if args.db is not None:
        # an explicit --db is a deliberate target: it wins even under
        # REPRO_NO_DB (which only guards the *default* database)
        path: Optional[Path] = Path(args.db)
    else:
        path = resolve_db_path(None)
    if path is None:
        raise SystemExit(
            "repro db: recording is disabled (REPRO_NO_DB); "
            "pass --db PATH to target a database explicitly"
        )
    if must_exist and path != ":memory:" and not path.exists():
        raise SystemExit(f"repro db: no database at {path} (run 'db init')")
    return RunDB(path)


def _cmd_init(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=False) as db:
        counts = db.counts()
        print(f"run DB ready: {db.path} (schema v{db.schema_version})")
        total = sum(counts.values())
        if total:
            populated = ", ".join(
                f"{table}={count}"
                for table, count in sorted(counts.items())
                if count
            )
            print(f"  rows: {populated}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    status = 0
    with _open_db(args, must_exist=False) as db:
        for path in args.files:
            try:
                run_id = ingest_file(db, path)
            except (OSError, ValueError) as exc:
                print(f"  {path}: SKIPPED ({exc})", file=sys.stderr)
                status = 1
                continue
            if run_id is None:
                print(f"  {path}: already ingested")
            else:
                print(f"  {path}: run #{run_id}")
    return status


def _cmd_ls(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=True) as db:
        rows = db.runs(kind=args.kind, limit=args.limit)
        if not rows:
            print("no runs recorded")
            return 0
        print("   id  kind     when                 status  "
              "profile  label")
        for row in rows:
            print(
                f"  {row['id']:>3}  {row['kind']:<7}  "
                f"{_when(row['created_unix']):<19}  "
                f"{row['status']:<6}  {row['profile'] or '-':<7}  "
                f"{row['label'] or '-'}"
            )
        counts = db.counts()
        print(
            f"  ({counts['runs']} run(s), {counts['trial_results']} "
            f"trial row(s), {counts['spans']} span row(s))"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=True) as db:
        run = db.run(args.run_id)
        print(
            f"run #{run['id']}: {run['kind']} ({run['source']}, "
            f"{run['status']}) at {_when(run['created_unix'])}"
        )
        for field in ("label", "profile", "bench_version", "engine",
                      "workers"):
            if run.get(field) is not None:
                print(f"  {field:<13}: {run[field]}")
        if run.get("wall_s") is not None:
            print(f"  wall_s       : {run['wall_s']:.3f}")
        if run["stages"]:
            print(f"  stages       : {len(run['stages'])}")
            for stage in run["stages"]:
                wall = stage["stage_wall_s"]
                wall_part = f"{wall:.4f}s" if wall is not None else "-"
                print(f"    {stage['stage']:<12} {wall_part}")
        if run["trials"]:
            print(f"  trials       : {len(run['trials'])} spec(s)")
            for trial in run["trials"]:
                hit = "hit " if trial["cache_hit"] else "miss"
                occupancy = (
                    f"{trial['mean_occupancy']:.4f}"
                    if trial["mean_occupancy"] is not None else "-"
                )
                print(
                    f"    n={trial['n_points']:<7} m={trial['capacity']:<3}"
                    f" {trial['engine']:<6} w={trial['workers']} {hit}"
                    f" {trial['wall_s']:.4f}s occ={occupancy}"
                )
        if run["traces"]:
            shown = ", ".join(name or "(session)" for name in run["traces"])
            print(f"  traces       : {shown}")
        if run["drift"]["samples"]:
            drift = run["drift"]
            print(
                f"  drift        : {drift['samples']} sample(s), "
                f"{drift['alarms']} alarm(s), "
                f"max |page err| {drift['max_page_error']:.4f}"
            )
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    chosen = [
        flag for flag, value in (
            ("--stage", args.stage), ("--span", args.span),
            ("--gauge", args.gauge),
        ) if value
    ]
    if len(chosen) != 1:
        raise SystemExit(
            "repro db trend: pass exactly one of --stage/--span/--gauge"
        )
    with _open_db(args, must_exist=True) as db:
        if args.stage:
            trend = analyzer.stage_trend(
                db, args.stage, metric=args.metric, profile=args.profile,
                limit=args.limit, threshold=args.threshold,
                mad_k=args.mad_k,
            )
        elif args.span:
            trend = analyzer.span_trend(
                db, args.span, limit=args.limit,
                threshold=args.threshold, mad_k=args.mad_k,
            )
        else:
            if args.gauge == "planner.drift":
                # the serve monitor's drift gauge also has a dedicated
                # per-run alarm record; show it alongside the trend
                print(analyzer.drift_report(db, limit=args.limit))
            trend = analyzer.gauge_trend(
                db, args.gauge, limit=args.limit,
                threshold=args.threshold, mad_k=args.mad_k,
            )
        if args.by_commit:
            trend = analyzer.by_commit(db, trend)
        print(trend.render())
        return 1 if trend.regression else 0


def _cmd_occupancy(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=True) as db:
        print(analyzer.occupancy_report(db, engine=args.engine))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import render_report

    with _open_db(args, must_exist=True) as db:
        markdown = render_report(db)
    if args.out:
        Path(args.out).write_text(markdown, encoding="utf-8")
        charts = markdown.count("<svg")
        print(f"wrote {args.out} ({charts} chart(s))")
    else:
        print(markdown, end="")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=True) as db:
        if args.runs:
            old_id, new_id = args.runs
        else:
            pair = analyzer.latest_run_pair(db, kind=args.kind)
            if pair is None:
                print(
                    f"db diff: need two recorded '{args.kind}' runs "
                    "(or pass OLD NEW run ids)"
                )
                return 0 if args.allow_missing else 2
            old_id, new_id = pair
        diff, stage_lines = analyzer.diff_runs(
            db, old_id, new_id,
            threshold=args.threshold, min_mean=args.min_mean,
        )
        print(f"diff: run #{old_id} -> run #{new_id}")
        for line in stage_lines:
            print(f"  {line}")
        print(diff.render())
        return 0 if diff.ok else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    with _open_db(args, must_exist=True) as db:
        result = db.gc(keep=args.keep, vacuum=not args.no_vacuum)
        print(
            f"gc: deleted {result['deleted_runs']} run(s), keeping the "
            f"newest {result['kept']} per kind"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro db",
        description="Query and maintain the experiment/run database.",
    )
    parser.add_argument(
        "--db", default=None, metavar="PATH",
        help="database path (default: $REPRO_DB or "
             "~/.local/share/repro/runs.sqlite)",
    )
    sub = parser.add_subparsers(dest="db_command", required=True)

    sub.add_parser("init", help="create or upgrade the database")

    ingest = sub.add_parser(
        "ingest", help="backfill BENCH_*.json snapshots / trace bundles"
    )
    ingest.add_argument("files", nargs="+", metavar="FILE")

    ls = sub.add_parser("ls", help="list recorded runs")
    ls.add_argument("--kind", default=None,
                    choices=["session", "bench", "serve", "trace"])
    ls.add_argument("-n", "--limit", type=int, default=20)

    show = sub.add_parser("show", help="one run in detail")
    show.add_argument("run_id", type=int)

    trend = sub.add_parser(
        "trend", help="metric history with median+MAD regression check"
    )
    trend.add_argument("--stage", default=None, metavar="STAGE")
    trend.add_argument(
        "--metric", default="stage_wall_s", metavar="NAME",
        help="stage column or payload scalar (default: %(default)s)",
    )
    trend.add_argument("--span", default=None, metavar="PATH")
    trend.add_argument("--gauge", default=None, metavar="NAME")
    trend.add_argument("--profile", default=None,
                       help="restrict to one bench profile")
    trend.add_argument("-n", "--limit", type=int, default=None)
    trend.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    trend.add_argument("--mad-k", type=float, default=DEFAULT_MAD_K)
    trend.add_argument(
        "--by-commit", action="store_true",
        help="one point per git commit (median across the commit's "
             "runs; sha + within-commit MAD in the label)",
    )

    occupancy = sub.add_parser(
        "occupancy", help="occupancy vs n across all recorded trials"
    )
    occupancy.add_argument("--engine", default=None)

    report = sub.add_parser(
        "report", help="render markdown + inline SVG charts from history"
    )
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the markdown here (default: stdout)")

    diff = sub.add_parser(
        "diff", help="span+stage diff of two runs (default: newest pair)"
    )
    diff.add_argument("runs", nargs="*", type=int, metavar="RUN_ID")
    diff.add_argument("--kind", default="bench",
                      help="run kind for the default pair")
    diff.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    diff.add_argument("--min-mean", type=float, default=DEFAULT_MIN_MEAN)
    diff.add_argument(
        "--allow-missing", action="store_true",
        help="exit 0 when fewer than two runs exist (CI bootstrap)",
    )

    gc = sub.add_parser("gc", help="apply the retention policy")
    gc.add_argument("--keep", type=int, default=DEFAULT_KEEP,
                    help="newest runs kept per kind (default: %(default)s)")
    gc.add_argument("--no-vacuum", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.db_command == "diff" and args.runs and len(args.runs) != 2:
        raise SystemExit("repro db diff: pass zero or two run ids")
    handler = {
        "init": _cmd_init,
        "ingest": _cmd_ingest,
        "ls": _cmd_ls,
        "show": _cmd_show,
        "trend": _cmd_trend,
        "occupancy": _cmd_occupancy,
        "report": _cmd_report,
        "diff": _cmd_diff,
        "gc": _cmd_gc,
    }[args.db_command]
    try:
        return handler(args)
    except (RunDBError, SchemaError) as exc:
        print(f"repro db: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
