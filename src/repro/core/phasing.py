"""Phasing — the log-periodic occupancy oscillation (Section IV).

Under uniform data all blocks of one generation fill and split nearly
in unison, so the average occupancy cycles as n grows: highest just
before a generation splits, lowest just after.  One cycle spans a
factor of ``b`` in n (×4 for the quadtree), i.e. the oscillation is
periodic in ``log_b n`` — and because uniform density fluctuations are
scale-invariant it never damps, which is why the statistical limit of
``d_n`` does not exist.  Non-uniform data (the paper's Gaussian) mixes
regions of different density, the generations fall out of phase, and
the oscillation decays.

This module quantifies those claims for the simulated series of
Tables 4/5 and Figures 2/3:

- :func:`fit_oscillation` — least-squares fit of
  ``occ(n) ~ mean + amplitude * cos(2 pi log_b(n) + phase)`` with the
  period fixed at one quadrupling, returning amplitude and phase;
- :func:`oscillation_period` — period recovered *from the data* by
  maximizing fit quality over candidate periods, confirming ×4;
- :func:`damping_ratio` — late-half vs early-half amplitude, ~1 for
  uniform (no damping), < 1 for Gaussian data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class OscillationFit:
    """A fitted log-periodic oscillation of average occupancy."""

    mean: float
    amplitude: float
    phase: float
    period_factor: float  # the n-ratio spanning one cycle (paper: 4)
    rms_residual: float

    def value_at(self, n: float) -> float:
        """The fitted occupancy at tree size ``n``."""
        cycles = math.log(n) / math.log(self.period_factor)
        return self.mean + self.amplitude * math.cos(
            2.0 * math.pi * cycles + self.phase
        )


def _design_matrix(sizes: np.ndarray, period_factor: float) -> np.ndarray:
    cycles = np.log(sizes) / np.log(period_factor)
    angle = 2.0 * np.pi * cycles
    return np.column_stack([np.ones_like(angle), np.cos(angle), np.sin(angle)])


def fit_oscillation(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    period_factor: float = 4.0,
) -> OscillationFit:
    """Least-squares fit of a fixed-period log-oscillation.

    The model is linear in ``(mean, A cos, B sin)`` once the period is
    fixed, so the fit is a single ``lstsq``; amplitude and phase come
    from the (A, B) pair.
    """
    sizes_arr = np.asarray(sizes, dtype=float)
    occ = np.asarray(occupancies, dtype=float)
    if sizes_arr.shape != occ.shape or sizes_arr.ndim != 1:
        raise ValueError("sizes and occupancies must be equal-length 1-d")
    if len(sizes_arr) < 4:
        raise ValueError("need at least 4 samples to fit an oscillation")
    if (sizes_arr <= 0).any():
        raise ValueError("sizes must be positive")
    if period_factor <= 1.0:
        raise ValueError("period_factor must exceed 1")
    design = _design_matrix(sizes_arr, period_factor)
    coef, *_ = np.linalg.lstsq(design, occ, rcond=None)
    mean, a_cos, b_sin = coef
    amplitude = float(math.hypot(a_cos, b_sin))
    phase = float(math.atan2(-b_sin, a_cos))
    residual = occ - design @ coef
    rms = float(np.sqrt(np.mean(residual**2)))
    return OscillationFit(float(mean), amplitude, phase, period_factor, rms)


def oscillation_period(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    candidates: Sequence[float] = tuple(np.linspace(1.5, 8.0, 131)),
) -> float:
    """The n-ratio of one occupancy cycle, recovered from data.

    Scans candidate period factors and returns the one whose fixed-
    period fit leaves the smallest residual.  For the paper's uniform
    m=8 series this lands at ~4, validating the "repeats every time the
    number of points increases by a factor of four" claim.
    """
    best_period = None
    best_rms = math.inf
    for period in candidates:
        fit = fit_oscillation(sizes, occupancies, period)
        if fit.rms_residual < best_rms:
            best_rms = fit.rms_residual
            best_period = period
    assert best_period is not None
    return float(best_period)


def damping_ratio(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    period_factor: float = 4.0,
) -> float:
    """Late-half amplitude over early-half amplitude.

    Splits the series at its midpoint (in log-n order), fits the
    oscillation to each half, and returns the amplitude ratio.
    Uniform data stays near 1; the Gaussian workload's generations
    desynchronize and the ratio drops well below 1 (Figure 3's damping).
    """
    sizes_arr = np.asarray(sizes, dtype=float)
    occ = np.asarray(occupancies, dtype=float)
    order = np.argsort(sizes_arr)
    sizes_arr, occ = sizes_arr[order], occ[order]
    half = len(sizes_arr) // 2
    if half < 4:
        raise ValueError("need at least 8 samples for a damping estimate")
    early = fit_oscillation(sizes_arr[:half], occ[:half], period_factor)
    late = fit_oscillation(sizes_arr[half:], occ[half:], period_factor)
    if early.amplitude <= 1e-9 * (1.0 + abs(early.mean)):
        raise ArithmeticError(
            "early-half amplitude is (numerically) zero; no oscillation "
            "to measure damping against"
        )
    return late.amplitude / early.amplitude


def log_periodogram(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    period_factors: Sequence[float] = tuple(np.linspace(1.5, 10.0, 171)),
) -> Tuple[np.ndarray, np.ndarray]:
    """Amplitude spectrum of the occupancy series over log-n periods.

    Fagin et al. saw the oscillation as "higher terms in a Fourier
    series" in log n; this evaluates that view directly: for each
    candidate period factor, the amplitude of the best-fit sinusoid.
    Returns ``(period_factors, amplitudes)`` — for the paper's uniform
    m=8 series the spectrum peaks at a factor of 4.
    """
    factors = np.asarray(list(period_factors), dtype=float)
    if (factors <= 1.0).any():
        raise ValueError("period factors must exceed 1")
    amplitudes = np.array(
        [
            fit_oscillation(sizes, occupancies, float(f)).amplitude
            for f in factors
        ]
    )
    return factors, amplitudes


def dominant_period(
    sizes: Sequence[int],
    occupancies: Sequence[float],
    period_factors: Sequence[float] = tuple(np.linspace(1.5, 10.0, 171)),
) -> float:
    """The period factor with the largest spectral amplitude."""
    factors, amplitudes = log_periodogram(sizes, occupancies, period_factors)
    return float(factors[int(np.argmax(amplitudes))])


def extrema_spacing(
    sizes: Sequence[int], occupancies: Sequence[float]
) -> Tuple[float, ...]:
    """Size ratios between consecutive local maxima of the series.

    The paper's reading of Table 4: "relative maxima and minima are
    separated by factors of four".  Returns the n-ratio between each
    pair of consecutive interior local maxima.
    """
    sizes_arr = np.asarray(sizes, dtype=float)
    occ = np.asarray(occupancies, dtype=float)
    order = np.argsort(sizes_arr)
    sizes_arr, occ = sizes_arr[order], occ[order]
    maxima = [
        i
        for i in range(1, len(occ) - 1)
        if occ[i] >= occ[i - 1] and occ[i] >= occ[i + 1]
    ]
    return tuple(
        sizes_arr[b] / sizes_arr[a] for a, b in zip(maxima, maxima[1:])
    )
