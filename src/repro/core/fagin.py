"""The statistical baseline: exact expected occupancy analysis.

Section III of the paper contrasts population analysis with "a typical
statistical approach": compute, for every tree size n, the average
state vector ``d_n`` over all trees of n uniform points, and hope the
sequence converges.  Fagin et al. (1979) carried this through for
extendible hashing; the paper notes their result transfers to the PR
quadtree "with slight modifications" and that the limit does **not**
exist — ``d_n`` oscillates forever (phasing).

This module performs that statistical computation for the generalized
PR tree, exactly.  The key observation making it tractable: a depth-k
block B is a leaf iff it holds at most m points *and its parent holds
more than m* (ancestor counts nest, so the parent condition subsumes
the rest).  Under uniform data the joint law of (points in B, points
in the rest of the parent) is multinomial, giving

    E[leaves at depth k with occupancy j]
        = b^k ( P[B = j] - P[B = j, parent <= m] )

with B ~ Binomial(n, b^-k).  A Poisson cell-model variant (independent
Poisson counts, Fagin's asymptotic regime) is also provided.

Evaluating the average occupancy n -> n / E[total leaves] exhibits the
non-damping oscillation with period b in n that the paper's Tables 4
and Figure 2 measure experimentally.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np
from scipy.special import gammaln


def _check(n: int, capacity: int, buckets: int) -> None:
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if buckets < 2:
        raise ValueError(f"buckets must be >= 2, got {buckets}")


def _log_binom_pmf(count: int, trials: int, p: float) -> float:
    """log P[Binomial(trials, p) = count], handling the p edge cases."""
    if count < 0 or count > trials:
        return -math.inf
    if p <= 0.0:
        return 0.0 if count == 0 else -math.inf
    if p >= 1.0:
        return 0.0 if count == trials else -math.inf
    return float(
        gammaln(trials + 1)
        - gammaln(count + 1)
        - gammaln(trials - count + 1)
        + count * math.log(p)
        + (trials - count) * math.log1p(-p)
    )


def _binom_pmf(count: int, trials: int, p: float) -> float:
    lp = _log_binom_pmf(count, trials, p)
    return math.exp(lp) if lp > -700 else 0.0


def _log_trinomial(n: int, j: int, s: int, pj: float, ps: float) -> float:
    """log P[(X, Y) = (j, s)] for a multinomial over (pj, ps, rest)."""
    rest = n - j - s
    p_rest = 1.0 - pj - ps
    if rest < 0:
        return -math.inf
    if p_rest < 0:
        p_rest = 0.0  # float dust at the k=1 boundary where b*p == 1
    terms = gammaln(n + 1) - gammaln(j + 1) - gammaln(s + 1) - gammaln(rest + 1)
    for count, prob in ((j, pj), (s, ps), (rest, p_rest)):
        if count > 0:
            if prob <= 0.0:
                return -math.inf
            terms += count * math.log(prob)
    return float(terms)


def expected_leaves_at_depth(
    n: int, capacity: int, depth: int, buckets: int = 4
) -> np.ndarray:
    """Expected leaf counts by occupancy at one depth, exactly.

    Returns a vector of length ``capacity + 1`` whose ``j``-th entry is
    the expected number of depth-``depth`` leaves holding ``j`` points
    in a PR tree of ``n`` uniform points.
    """
    _check(n, capacity, buckets)
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    m, b = capacity, buckets
    out = np.zeros(m + 1)
    if depth == 0:
        if n <= m:
            out[n] = 1.0
        return out
    p = float(b) ** (-depth)
    sibling_p = (b - 1) * p  # the rest of the parent block
    blocks = float(b) ** depth
    for j in range(m + 1):
        prob_j = _binom_pmf(j, n, p)
        # subtract the cases where the parent also fits (<= m points),
        # i.e. the block would never have been created.
        both = 0.0
        for s in range(0, m - j + 1):
            lt = _log_trinomial(n, j, s, p, sibling_p)
            if lt > -700:
                both += math.exp(lt)
        out[j] = blocks * max(prob_j - both, 0.0)
    return out


def expected_leaves_at_depth_poisson(
    n: int, capacity: int, depth: int, buckets: int = 4
) -> np.ndarray:
    """Poisson cell-model variant (Fagin's asymptotic regime).

    Block counts are independent Poisson(n / b^depth); the parent
    condition factorizes:  E = b^k P[Pois(lam) = j] P[Pois((b-1)lam) > m - j].
    """
    _check(n, capacity, buckets)
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    m, b = capacity, buckets
    out = np.zeros(m + 1)
    lam = n / float(b) ** depth
    if depth == 0:
        # No parent: the root is a leaf iff it fits.
        for j in range(m + 1):
            out[j] = math.exp(-lam + j * math.log(lam) - gammaln(j + 1)) if lam > 0 else (1.0 if j == 0 else 0.0)
        return out
    sib_lam = (b - 1) * lam
    blocks = float(b) ** depth

    def pois_pmf(j: int, rate: float) -> float:
        if rate <= 0:
            return 1.0 if j == 0 else 0.0
        return math.exp(-rate + j * math.log(rate) - gammaln(j + 1))

    for j in range(m + 1):
        tail = 1.0 - sum(pois_pmf(s, sib_lam) for s in range(0, m - j + 1))
        out[j] = blocks * pois_pmf(j, lam) * max(tail, 0.0)
    return out


def expected_leaf_profile(
    n: int,
    capacity: int,
    buckets: int = 4,
    model: str = "exact",
    tol: float = 1e-9,
    max_depth: int = 64,
) -> Dict[int, np.ndarray]:
    """Expected leaf counts by depth and occupancy, all depths.

    Iterates depths until the expected number of *internal* blocks at a
    depth falls below ``tol`` (no leaves can appear deeper).
    """
    _check(n, capacity, buckets)
    per_depth = {
        "exact": expected_leaves_at_depth,
        "poisson": expected_leaves_at_depth_poisson,
    }
    if model not in per_depth:
        raise ValueError(f"unknown model {model!r}; use 'exact' or 'poisson'")
    fn = per_depth[model]
    m, b = capacity, buckets
    profile: Dict[int, np.ndarray] = {}
    for depth in range(max_depth + 1):
        profile[depth] = fn(n, capacity, depth, buckets)
        # expected internal blocks at this depth bounds deeper leaves
        p = float(b) ** (-depth)
        if model == "exact":
            prob_fit = sum(_binom_pmf(j, n, p) for j in range(m + 1))
        else:
            lam = n * p
            prob_fit = sum(
                math.exp(-lam + j * math.log(lam) - gammaln(j + 1))
                if lam > 0
                else (1.0 if j == 0 else 0.0)
                for j in range(m + 1)
            )
        internal = float(b) ** depth * (1.0 - prob_fit)
        if internal < tol:
            break
    else:
        raise ArithmeticError(f"profile did not close off by depth {max_depth}")
    return profile


def expected_distribution(
    n: int, capacity: int, buckets: int = 4, model: str = "exact"
) -> np.ndarray:
    """The statistical state vector ``d_n`` (normalized proportions).

    This is the quantity whose limit as n grows does not exist —
    compare against the population model's fixed point ``e``.
    """
    profile = expected_leaf_profile(n, capacity, buckets, model)
    totals = np.sum(list(profile.values()), axis=0)
    grand = totals.sum()
    if grand <= 0:
        raise ArithmeticError("no expected leaves; n too small?")
    return totals / grand


def expected_total_leaves(
    n: int, capacity: int, buckets: int = 4, model: str = "exact"
) -> float:
    """Expected leaf count of a tree of ``n`` uniform points."""
    profile = expected_leaf_profile(n, capacity, buckets, model)
    return float(np.sum(list(profile.values())))


def average_occupancy(
    n: int, capacity: int, buckets: int = 4, model: str = "exact"
) -> float:
    """Statistically exact expected average occupancy at size ``n``.

    Uses E[points]/E[leaves]; in the exact model every point lies in
    exactly one leaf so the numerator is n.
    """
    profile = expected_leaf_profile(n, capacity, buckets, model)
    totals = np.sum(list(profile.values()), axis=0)
    leaves = totals.sum()
    points = float(totals @ np.arange(capacity + 1))
    if leaves <= 0:
        raise ArithmeticError("no expected leaves; n too small?")
    return points / leaves


def occupancy_series(
    sizes: Sequence[int], capacity: int, buckets: int = 4, model: str = "exact"
) -> List[float]:
    """Average occupancy at each size — the analytic phasing curve
    underlying Figure 2's oscillation."""
    return [average_occupancy(n, capacity, buckets, model) for n in sizes]


def occupancy_by_depth(
    n: int,
    capacity: int,
    buckets: int = 4,
    model: str = "exact",
    min_expected_nodes: float = 1.0,
) -> Dict[int, float]:
    """Expected per-depth average occupancy — Table 3, analytically.

    The aging phenomenon falls straight out of the exact statistics:
    deeper (smaller) blocks have lower conditional occupancy given that
    they exist.  Depths whose expected leaf count falls below
    ``min_expected_nodes`` are omitted (they would be dominated by
    conditioning noise, as in the paper's sparse rows).
    """
    profile = expected_leaf_profile(n, capacity, buckets, model)
    occupancies = np.arange(capacity + 1)
    out: Dict[int, float] = {}
    for depth, counts in profile.items():
        nodes = counts.sum()
        if nodes >= min_expected_nodes:
            out[depth] = float(counts @ occupancies / nodes)
    return out
