"""Population analysis of the PMR quadtree (the paper's extension).

Section V reports that the same population technique was applied to
the PMR quadtree for line segments "with results which agree with
experimental data even better than in the case of the PR quadtree",
deferring details to [Nels86b].  This module reconstructs that
analysis from the paper's method:

*Populations* are leaf nodes by segment count.  A PMR leaf holding
``q > threshold`` segments splits **once** (never recursively) on the
next insertion that touches it, so — unlike the PR tree — occupancies
above the threshold exist; the state space is capped at ``max_occupancy``
with the top class absorbing the (exponentially rare) tail.

*Local interaction*: when a node splits, each of its segments is
redistributed to every quadrant it crosses.  The model's single
geometric parameter is ``crossing_probability`` p — the chance a given
segment of the node crosses a given quadrant.  Treating segments
independently (the population-analysis move: only *local* probabilities
matter), a split of a node holding ``q`` segments produces, in
expectation, ``4 C(q, j) p^j (1-p)^{q-j}`` children of occupancy j.

p can be supplied directly, taken from :func:`crossing_probability_for`
(a geometric estimate for short uniform segments), or measured from a
built tree with :func:`estimate_crossing_probability`.  A segment
crossing a node crosses on average ``4p`` of its quadrants; since a
segment always crosses at least one, ``p >= 1/4``, and p grows toward
~1/2 as segments get long relative to blocks.
"""

from __future__ import annotations

from math import comb
from typing import Optional

import numpy as np

from ..quadtree.pmr import PMRQuadtree
from .fixed_point import SteadyState, solve


def pmr_transform_matrix(
    threshold: int,
    crossing_probability: float,
    max_occupancy: Optional[int] = None,
) -> np.ndarray:
    """Transform matrix for PMR populations.

    Rows are node types 0..max_occupancy.  An insertion event touching
    a node of occupancy ``i``:

    - ``i < threshold``: the node absorbs the segment -> one node of
      occupancy ``i + 1``;
    - ``i >= threshold``: the node absorbs the segment (now ``i + 1``
      segments) and splits once; each segment independently lands in a
      quadrant with probability p, giving the binomial row
      ``T_ij = 4 C(i+1, j) p^j (1-p)^{i+1-j}`` (occupancies above the
      cap clamp into the top class).
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    p = crossing_probability
    if not 0.0 < p < 1.0:
        raise ValueError(f"crossing_probability must be in (0,1), got {p}")
    if max_occupancy is None:
        max_occupancy = 2 * threshold + 4
    if max_occupancy <= threshold:
        raise ValueError("max_occupancy must exceed threshold")
    size = max_occupancy + 1
    matrix = np.zeros((size, size))
    for i in range(size):
        if i < threshold:
            matrix[i, i + 1] = 1.0
            continue
        q = i + 1  # segments at split time
        for j in range(q + 1):
            expected = 4.0 * comb(q, j) * p**j * (1.0 - p) ** (q - j)
            matrix[i, min(j, max_occupancy)] += expected
    return matrix


class PMRPopulationModel:
    """Steady-state occupancy model for the PMR quadtree.

    >>> model = PMRPopulationModel(threshold=4, crossing_probability=0.3)
    >>> 0 < model.average_occupancy() < 9
    True
    """

    def __init__(
        self,
        threshold: int,
        crossing_probability: float,
        max_occupancy: Optional[int] = None,
        method: str = "iteration",
    ):
        self._threshold = threshold
        self._p = crossing_probability
        self._matrix = pmr_transform_matrix(
            threshold, crossing_probability, max_occupancy
        )
        self._method = method
        self._state: Optional[SteadyState] = None

    @property
    def threshold(self) -> int:
        """The PMR splitting threshold."""
        return self._threshold

    @property
    def crossing_probability(self) -> float:
        """The per-(segment, quadrant) crossing probability p."""
        return self._p

    @property
    def transform(self) -> np.ndarray:
        """A copy of the PMR transform matrix."""
        return self._matrix.copy()

    def steady_state(self) -> SteadyState:
        """Solve (once, cached) for the expected distribution."""
        if self._state is None:
            self._state = solve(self._matrix, self._method)
        return self._state

    def expected_distribution(self) -> np.ndarray:
        """Steady-state leaf proportions by segment count."""
        return self.steady_state().distribution.copy()

    def average_occupancy(self) -> float:
        """Predicted mean segments per leaf."""
        return self.steady_state().average_occupancy()

    def fraction_over_threshold(self) -> float:
        """Steady-state share of leaves pending a split (> threshold)."""
        e = self.steady_state().distribution
        return float(e[self._threshold + 1 :].sum())


def crossing_probability_for(
    mean_segment_length: float, block_side: float
) -> float:
    """Geometric estimate of p for segments short relative to blocks.

    A segment whose midpoint is uniform in a block of side ``s`` and
    whose length is ``L << s`` crosses about ``1 + (3/4)(L/s)`` of the
    four quadrants on average (it always occupies one; each of the two
    center lines is crossed with probability ~L/2s per axis and a
    crossing adds ~1.5 quadrants near the center cross).  Dividing by 4
    and clamping to (1/4, 1/2) gives a serviceable p for the regime the
    workload generators produce.
    """
    if mean_segment_length <= 0 or block_side <= 0:
        raise ValueError("lengths must be positive")
    ratio = mean_segment_length / block_side
    expected_quadrants = 1.0 + 0.75 * min(ratio, 2.0)
    return float(min(max(expected_quadrants / 4.0, 0.25 + 1e-9), 0.5))


def estimate_crossing_probability(tree: PMRQuadtree) -> float:
    """Measure p from a built PMR tree.

    For every leaf, each resident segment would — if the leaf split —
    cross some of its four quadrants; p is the grand mean of
    (quadrants crossed)/4 over all (leaf, segment) incidences.  This is
    exactly the parameter the transform matrix needs, measured at the
    sizes the steady state actually exhibits.
    """
    crossed = 0
    incidences = 0
    for rect, _, count in tree.leaves():
        if count == 0:
            continue
        children = rect.split()
        for seg in tree.stabbing_query(rect.center):
            if not seg.crosses_interior(rect):
                continue
            incidences += 1
            crossed += sum(1 for c in children if seg.crosses_interior(c))
    if incidences == 0:
        raise ValueError("tree has no segment incidences")
    return crossed / (4.0 * incidences)
