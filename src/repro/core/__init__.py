"""Population analysis — the paper's contribution.

- :mod:`~repro.core.transform` — transform matrices **T**.
- :mod:`~repro.core.fixed_point` — solvers for ``e T = a e``.
- :mod:`~repro.core.population` — :class:`PopulationModel`, the API.
- :mod:`~repro.core.aging` — per-depth occupancy and the area-weighted
  correction.
- :mod:`~repro.core.phasing` — log-periodic oscillation analysis.
- :mod:`~repro.core.fagin` — the exact statistical baseline.
- :mod:`~repro.core.pmr_model` — population analysis of the PMR tree.
"""

from .aging import (
    AreaWeightedModel,
    DepthRow,
    aging_gradient,
    calibrated_area_model,
    depth_occupancy_table,
    mean_area_by_occupancy,
)
from .density_model import (
    Density,
    TruncatedGaussianDensity,
    UniformDensity,
    average_occupancy as density_average_occupancy,
    expected_leaf_census as density_expected_leaf_census,
    occupancy_series as density_occupancy_series,
)
from .dynamics import (
    PopulationDynamics,
    StochasticPopulation,
    generation_span,
    split_outcome_probabilities,
)
from .fagin import (
    average_occupancy as statistical_average_occupancy,
    expected_distribution as statistical_expected_distribution,
    expected_leaf_profile,
    expected_total_leaves,
    occupancy_by_depth as statistical_occupancy_by_depth,
    occupancy_series as statistical_occupancy_series,
)
from .planning import MAX_PLANNED_CAPACITY, PlanValidation, StoragePlanner
from .sensitivity import (
    directional_derivative,
    occupancy_gradient_wrt_matrix,
    pmr_occupancy_error_bar,
    pmr_occupancy_sensitivity,
)
from .fixed_point import (
    SteadyState,
    residual,
    solve,
    solve_analytic,
    solve_eigen,
    solve_fixed_point_iteration,
    solve_newton,
)
from .phasing import (
    OscillationFit,
    damping_ratio,
    dominant_period,
    extrema_spacing,
    fit_oscillation,
    log_periodogram,
    oscillation_period,
)
from .pmr_model import (
    PMRPopulationModel,
    crossing_probability_for,
    estimate_crossing_probability,
    pmr_transform_matrix,
)
from .population import ModelComparison, PopulationModel
from .uniqueness import (
    FixedPointCandidate,
    enumerate_fixed_points,
    is_irreducible,
    verify_unique_positive,
)
from .transform import (
    post_split_average_occupancy,
    recursion_probability,
    row_sums,
    row_sums_exact,
    split_distribution,
    split_row,
    transform_matrix,
    transform_matrix_exact,
)

__all__ = [
    "AreaWeightedModel",
    "Density",
    "DepthRow",
    "FixedPointCandidate",
    "MAX_PLANNED_CAPACITY",
    "PlanValidation",
    "ModelComparison",
    "OscillationFit",
    "PMRPopulationModel",
    "PopulationDynamics",
    "PopulationModel",
    "SteadyState",
    "StochasticPopulation",
    "StoragePlanner",
    "TruncatedGaussianDensity",
    "UniformDensity",
    "aging_gradient",
    "calibrated_area_model",
    "crossing_probability_for",
    "damping_ratio",
    "density_average_occupancy",
    "density_expected_leaf_census",
    "density_occupancy_series",
    "depth_occupancy_table",
    "directional_derivative",
    "dominant_period",
    "enumerate_fixed_points",
    "estimate_crossing_probability",
    "expected_leaf_profile",
    "expected_total_leaves",
    "extrema_spacing",
    "fit_oscillation",
    "generation_span",
    "is_irreducible",
    "log_periodogram",
    "mean_area_by_occupancy",
    "occupancy_gradient_wrt_matrix",
    "oscillation_period",
    "pmr_occupancy_error_bar",
    "pmr_occupancy_sensitivity",
    "pmr_transform_matrix",
    "post_split_average_occupancy",
    "recursion_probability",
    "residual",
    "row_sums",
    "row_sums_exact",
    "solve",
    "solve_analytic",
    "solve_eigen",
    "solve_fixed_point_iteration",
    "solve_newton",
    "split_distribution",
    "split_outcome_probabilities",
    "split_row",
    "statistical_average_occupancy",
    "statistical_expected_distribution",
    "statistical_occupancy_by_depth",
    "statistical_occupancy_series",
    "transform_matrix",
    "transform_matrix_exact",
    "verify_unique_positive",
]
