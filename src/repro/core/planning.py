"""Storage planning — the population model as an engineering tool.

The paper's motivation was sizing quadtree storage for a GIS.  This
module turns the model into the questions an engineer actually asks:

- how many pages (nodes) will n points need at capacity m?
- what capacity meets a target slot utilization?
- what capacity fits n points into a page budget?
- how many points until steady-state predictions apply?

All answers derive from solved :class:`~repro.core.population.PopulationModel`
instances; models are cached per (capacity, buckets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from .dynamics import PopulationDynamics
from .fagin import expected_total_leaves
from .population import PopulationModel

#: Upper bound on node capacity considered by the planners.  Real
#: systems page-size constraints keep m modest; the model also loses
#: accuracy slowly as aging strengthens with m.
MAX_PLANNED_CAPACITY = 64


@dataclass(frozen=True)
class PlanValidation:
    """Prediction vs. reality for one page file.

    ``predicted_pages`` is the size-exact statistical prediction
    (:func:`~repro.core.fagin.expected_total_leaves`); the steady-state
    population model's figure rides along as ``steady_state_pages`` —
    it ignores aging, so it reads ~10% low at realistic n (the gap the
    paper's Tables 2 and 3 document).
    """

    n_points: int
    capacity: int
    buckets: int
    predicted_pages: float
    steady_state_pages: float
    actual_pages: int
    predicted_utilization: float
    actual_utilization: float

    @property
    def page_error(self) -> float:
        """Relative error of the prediction: ``(predicted-actual)/actual``."""
        if self.actual_pages == 0:
            return 0.0
        return (self.predicted_pages - self.actual_pages) / self.actual_pages

    def within(self, tolerance: float) -> bool:
        """True iff the predicted page count is within ``tolerance``
        (relative) of the actual one."""
        return abs(self.page_error) <= tolerance

    def summary(self) -> str:
        """Human-readable comparison block."""
        return "\n".join([
            f"planner validation: n={self.n_points}, m={self.capacity}, "
            f"{self.buckets}-way splits",
            f"  pages  : predicted {self.predicted_pages:9.1f}   "
            f"actual {self.actual_pages}   "
            f"error {self.page_error:+.1%}",
            f"  (steady-state model alone: "
            f"{self.steady_state_pages:.1f} pages)",
            f"  slots  : predicted {self.predicted_utilization:6.1%} full   "
            f"actual {self.actual_utilization:6.1%} full",
        ])


class StoragePlanner:
    """Capacity planning over the population model.

    Parameters
    ----------
    buckets:
        Split fanout of the target structure (4 for a planar quadtree).
    """

    def __init__(self, buckets: int = 4):
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self._buckets = buckets
        self._models: Dict[int, PopulationModel] = {}

    def model(self, capacity: int) -> PopulationModel:
        """The (cached) solved model for one capacity.

        Raises ``ValueError`` outside ``1..MAX_PLANNED_CAPACITY`` —
        building the (m+1)-state model for an absurd m would silently
        burn memory and return numbers the model cannot back.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if capacity > MAX_PLANNED_CAPACITY:
            raise ValueError(
                f"capacity {capacity} exceeds MAX_PLANNED_CAPACITY "
                f"({MAX_PLANNED_CAPACITY}); the model is not calibrated "
                f"for buckets that large"
            )
        if capacity not in self._models:
            self._models[capacity] = PopulationModel(
                capacity, buckets=self._buckets
            )
        return self._models[capacity]

    # ------------------------------------------------------------------

    def pages_needed(self, n_points: int, capacity: int) -> float:
        """Predicted node (page) count for ``n_points`` at capacity m."""
        if n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {n_points}")
        return self.model(capacity).expected_nodes(n_points)

    def utilization(self, capacity: int) -> float:
        """Predicted slot utilization at capacity m."""
        return self.model(capacity).storage_utilization()

    def capacity_for_utilization(
        self, target: float, max_capacity: int = MAX_PLANNED_CAPACITY
    ) -> int:
        """Smallest capacity whose predicted utilization >= target.

        Raises ``ValueError`` if no capacity up to ``max_capacity``
        reaches the target (quadtree utilization saturates near 54%,
        so targets above that are unreachable).
        """
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0,1), got {target}")
        for m in range(1, max_capacity + 1):
            if self.utilization(m) >= target:
                return m
        raise ValueError(
            f"no capacity <= {max_capacity} reaches utilization {target:.0%} "
            f"(saturates near {self.utilization(max_capacity):.0%})"
        )

    def capacity_for_page_budget(
        self,
        n_points: int,
        max_pages: float,
        max_capacity: int = MAX_PLANNED_CAPACITY,
    ) -> int:
        """Smallest capacity fitting ``n_points`` into ``max_pages``.

        Bigger buckets always need fewer pages, so the smallest
        sufficient capacity minimizes per-page fan-in while meeting the
        budget.
        """
        if max_pages <= 0:
            raise ValueError(f"max_pages must be positive, got {max_pages}")
        for m in range(1, max_capacity + 1):
            if self.pages_needed(n_points, m) <= max_pages:
                return m
        raise ValueError(
            f"{n_points} points do not fit in {max_pages} pages even at "
            f"capacity {max_capacity}"
        )

    def warmup_insertions(
        self, capacity: int, tolerance: float = 0.02
    ) -> int:
        """Insertions before steady-state predictions apply.

        Measured from a single empty node via the mean-field dynamics:
        the count after which the occupancy distribution stays within
        total-variation ``tolerance`` of the fixed point.
        """
        dynamics = PopulationDynamics(self.model(capacity).transform)
        start = [0.0] * (capacity + 1)
        start[0] = 1.0
        return dynamics.insertions_to_tolerance(start, tol=tolerance)

    def validate_against(self, pagefile: Any) -> PlanValidation:
        """Compare the planner's predictions against a real page file.

        ``pagefile`` is an open :class:`~repro.storage.pagefile.PageFile`
        built by :class:`~repro.storage.paged_tree.PagedPRQuadtree`
        (anything exposing ``meta`` and ``data_page_count`` works).  The
        file's metadata supplies n, m, and the dimension; the live data
        page count is what the prediction is judged against.

        The page-count prediction is the statistically exact expected
        leaf count at exactly n points — not the steady-state model,
        whose aging blind spot puts it ~10% under real files.
        """
        meta = pagefile.meta
        try:
            n_points = int(meta["points"])
            capacity = int(meta["capacity"])
            dim = int(meta["dim"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                "page file metadata lacks points/capacity/dim — "
                "not built by PagedPRQuadtree?"
            ) from exc
        buckets = 1 << dim
        if buckets != self._buckets:
            raise ValueError(
                f"page file is {buckets}-way (dim={dim}) but this planner "
                f"models {self._buckets}-way splits"
            )
        actual_pages = pagefile.data_page_count
        predicted = expected_total_leaves(
            n_points, capacity, buckets=buckets, model="exact"
        )
        steady = self.pages_needed(n_points, capacity)
        return PlanValidation(
            n_points=n_points,
            capacity=capacity,
            buckets=buckets,
            predicted_pages=predicted,
            steady_state_pages=steady,
            actual_pages=actual_pages,
            predicted_utilization=(
                n_points / (capacity * predicted) if predicted > 0 else 0.0
            ),
            actual_utilization=(
                n_points / (capacity * actual_pages) if actual_pages else 0.0
            ),
        )

    def plan(self, n_points: int, capacities: Tuple[int, ...] = (1, 2, 4, 8, 16)) -> List[Dict]:
        """A comparison table across candidate capacities."""
        rows = []
        for m in capacities:
            model = self.model(m)
            rows.append(
                {
                    "capacity": m,
                    "pages": model.expected_nodes(n_points),
                    "occupancy": model.average_occupancy(),
                    "utilization": model.storage_utilization(),
                    "growth": model.growth_rate(),
                }
            )
        return rows
