"""Storage planning — the population model as an engineering tool.

The paper's motivation was sizing quadtree storage for a GIS.  This
module turns the model into the questions an engineer actually asks:

- how many pages (nodes) will n points need at capacity m?
- what capacity meets a target slot utilization?
- what capacity fits n points into a page budget?
- how many points until steady-state predictions apply?

All answers derive from solved :class:`~repro.core.population.PopulationModel`
instances; models are cached per (capacity, buckets).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .dynamics import PopulationDynamics
from .population import PopulationModel

#: Upper bound on node capacity considered by the planners.  Real
#: systems page-size constraints keep m modest; the model also loses
#: accuracy slowly as aging strengthens with m.
MAX_PLANNED_CAPACITY = 64


class StoragePlanner:
    """Capacity planning over the population model.

    Parameters
    ----------
    buckets:
        Split fanout of the target structure (4 for a planar quadtree).
    """

    def __init__(self, buckets: int = 4):
        if buckets < 2:
            raise ValueError(f"buckets must be >= 2, got {buckets}")
        self._buckets = buckets
        self._models: Dict[int, PopulationModel] = {}

    def model(self, capacity: int) -> PopulationModel:
        """The (cached) solved model for one capacity."""
        if capacity not in self._models:
            self._models[capacity] = PopulationModel(
                capacity, buckets=self._buckets
            )
        return self._models[capacity]

    # ------------------------------------------------------------------

    def pages_needed(self, n_points: int, capacity: int) -> float:
        """Predicted node (page) count for ``n_points`` at capacity m."""
        if n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {n_points}")
        return self.model(capacity).expected_nodes(n_points)

    def utilization(self, capacity: int) -> float:
        """Predicted slot utilization at capacity m."""
        return self.model(capacity).storage_utilization()

    def capacity_for_utilization(
        self, target: float, max_capacity: int = MAX_PLANNED_CAPACITY
    ) -> int:
        """Smallest capacity whose predicted utilization >= target.

        Raises ``ValueError`` if no capacity up to ``max_capacity``
        reaches the target (quadtree utilization saturates near 54%,
        so targets above that are unreachable).
        """
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0,1), got {target}")
        for m in range(1, max_capacity + 1):
            if self.utilization(m) >= target:
                return m
        raise ValueError(
            f"no capacity <= {max_capacity} reaches utilization {target:.0%} "
            f"(saturates near {self.utilization(max_capacity):.0%})"
        )

    def capacity_for_page_budget(
        self,
        n_points: int,
        max_pages: float,
        max_capacity: int = MAX_PLANNED_CAPACITY,
    ) -> int:
        """Smallest capacity fitting ``n_points`` into ``max_pages``.

        Bigger buckets always need fewer pages, so the smallest
        sufficient capacity minimizes per-page fan-in while meeting the
        budget.
        """
        if max_pages <= 0:
            raise ValueError(f"max_pages must be positive, got {max_pages}")
        for m in range(1, max_capacity + 1):
            if self.pages_needed(n_points, m) <= max_pages:
                return m
        raise ValueError(
            f"{n_points} points do not fit in {max_pages} pages even at "
            f"capacity {max_capacity}"
        )

    def warmup_insertions(
        self, capacity: int, tolerance: float = 0.02
    ) -> int:
        """Insertions before steady-state predictions apply.

        Measured from a single empty node via the mean-field dynamics:
        the count after which the occupancy distribution stays within
        total-variation ``tolerance`` of the fixed point.
        """
        dynamics = PopulationDynamics(self.model(capacity).transform)
        start = [0.0] * (capacity + 1)
        start[0] = 1.0
        return dynamics.insertions_to_tolerance(start, tol=tolerance)

    def plan(self, n_points: int, capacities: Tuple[int, ...] = (1, 2, 4, 8, 16)) -> List[Dict]:
        """A comparison table across candidate capacities."""
        rows = []
        for m in capacities:
            model = self.model(m)
            rows.append(
                {
                    "capacity": m,
                    "pages": model.expected_nodes(n_points),
                    "occupancy": model.average_occupancy(),
                    "utilization": model.storage_utilization(),
                    "growth": model.growth_rate(),
                }
            )
        return rows
