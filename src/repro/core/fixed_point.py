"""Solvers for the expected-distribution equations ``e T = a e``.

The steady-state condition of Section III is the quadratic system

    e T = a(e) e,      a(e) = sum_i e_i (row-sum of T)_i,
    sum_i e_i = 1,     e_i >= 0,

which, once ``e`` is normalized to sum 1, is precisely the *left Perron
eigenproblem* of the nonnegative matrix **T**: the scalar ``a`` is the
dominant eigenvalue and ``e`` the associated left eigenvector.  **T**
is irreducible (occupancy ``i`` reaches ``m`` by absorbing points, and
a split reaches every occupancy), so Perron–Frobenius guarantees the
unique positive solution the paper cites from [Nels86b].

Four independent solvers are provided and cross-checked in the tests:

- :func:`solve_analytic` — closed form for ``m = 1``;
- :func:`solve_fixed_point_iteration` — the paper's "iterative
  technique": ``e <- normalize(e T)``;
- :func:`solve_newton` — damped Newton on the full quadratic system
  via ``scipy.optimize.root``;
- :func:`solve_eigen` — direct left-eigenvector extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize

from .. import obs


@dataclass(frozen=True)
class SteadyState:
    """A solved expected distribution.

    Attributes
    ----------
    distribution:
        The expected distribution vector ``e`` (sums to 1, positive).
    growth:
        The scalar ``a`` — expected nodes produced per insertion, also
        the rate of node-count growth ``d(nodes)/dn``.
    iterations:
        Iterations the solver used (0 for direct methods).
    """

    distribution: np.ndarray
    growth: float
    iterations: int = 0

    @property
    def capacity(self) -> int:
        """Node capacity m (one less than the vector length)."""
        return len(self.distribution) - 1

    def average_occupancy(self) -> float:
        """Dot product of ``e`` with ``(0, 1, ..., m)`` — Table 2's
        theoretical column."""
        return float(
            np.dot(self.distribution, np.arange(len(self.distribution)))
        )

    def storage_utilization(self) -> float:
        """Average occupancy over capacity — expected slot usage."""
        return self.average_occupancy() / self.capacity

    def fraction_empty(self) -> float:
        """Steady-state proportion of empty nodes, ``e_0``."""
        return float(self.distribution[0])

    def fraction_full(self) -> float:
        """Steady-state proportion of full nodes, ``e_m``."""
        return float(self.distribution[-1])


def _validate_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"transform matrix must be square, got {matrix.shape}")
    if matrix.shape[0] < 2:
        raise ValueError("transform matrix needs at least two node types")
    if (matrix < 0).any():
        raise ValueError("transform matrix entries must be nonnegative")
    return matrix


def residual(matrix: np.ndarray, distribution: np.ndarray) -> float:
    """Max-norm residual of ``e T = a e`` at a candidate ``e``.

    ``a`` is taken as ``sum(e T)`` (forced by normalization), so a true
    solution has residual 0 regardless of how it was produced.
    """
    matrix = _validate_matrix(matrix)
    e = np.asarray(distribution, dtype=float)
    produced = e @ matrix
    a = produced.sum()
    return float(np.max(np.abs(produced - a * e)))


def solve_fixed_point_iteration(
    matrix: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 100_000,
    initial: Optional[np.ndarray] = None,
) -> SteadyState:
    """The paper's iterative technique: repeatedly push the current
    distribution through **T** and renormalize.

    Each sweep maps ``e`` to ``e T / sum(e T)`` — "insert a unit of
    data according to the current proportions, then read off the
    proportions of the nodes produced".  Converges geometrically to
    the Perron vector from any positive start.
    """
    matrix = _validate_matrix(matrix)
    n = matrix.shape[0]
    if initial is None:
        e = np.full(n, 1.0 / n)
    else:
        e = np.asarray(initial, dtype=float)
        if e.shape != (n,) or (e < 0).any() or e.sum() <= 0:
            raise ValueError("initial distribution must be nonnegative, nonzero")
        e = e / e.sum()
    with obs.span("solver.fixed_point"):
        for iteration in range(1, max_iter + 1):
            produced = e @ matrix
            total = produced.sum()
            if total <= 0:
                raise ArithmeticError("transform produced no nodes")
            nxt = produced / total
            if np.max(np.abs(nxt - e)) < tol:
                if obs.enabled():
                    obs.gauge("solver.fixed_point.iterations", iteration)
                    obs.gauge(
                        "solver.fixed_point.residual", residual(matrix, nxt)
                    )
                return SteadyState(
                    nxt, float(nxt @ matrix.sum(axis=1)), iteration
                )
            e = nxt
    raise ArithmeticError(
        f"fixed-point iteration did not converge in {max_iter} sweeps"
    )


def solve_eigen(matrix: np.ndarray) -> SteadyState:
    """Direct solution: the left Perron eigenvector of **T**.

    Normalizing ``e`` to sum 1 turns the quadratic system into the
    linear eigenproblem ``e T = a e``; the dominant eigenvalue's left
    eigenvector is the unique positive solution.
    """
    matrix = _validate_matrix(matrix)
    with obs.span("solver.eigen"):
        values, vectors = np.linalg.eig(matrix.T)
        lead = int(np.argmax(values.real))
        vec = vectors[:, lead].real
        if vec.sum() < 0:
            vec = -vec
        if (vec < -1e-9).any():
            raise ArithmeticError(
                "dominant eigenvector not positive; matrix not irreducible?"
            )
        vec = np.clip(vec, 0.0, None)
        e = vec / vec.sum()
    if obs.enabled():
        obs.gauge("solver.eigen.residual", residual(matrix, e))
    return SteadyState(e, float(values[lead].real), 0)


def solve_newton(
    matrix: np.ndarray,
    initial: Optional[np.ndarray] = None,
) -> SteadyState:
    """Newton's method on the full quadratic system.

    Unknowns are ``(e_0..e_m, a)``; equations are the ``m+1`` residuals
    of ``e T - a e`` plus the normalization ``sum e = 1``.  This treats
    the problem exactly as the paper frames it — a set of quadratic
    equations — without exploiting the eigenstructure.
    """
    matrix = _validate_matrix(matrix)
    n = matrix.shape[0]
    row_totals = matrix.sum(axis=1)

    def equations(x: np.ndarray) -> np.ndarray:
        e, a = x[:n], x[n]
        return np.concatenate([e @ matrix - a * e, [e.sum() - 1.0]])

    def jacobian(x: np.ndarray) -> np.ndarray:
        e, a = x[:n], x[n]
        jac = np.zeros((n + 1, n + 1))
        jac[:n, :n] = matrix.T - a * np.eye(n)
        jac[:n, n] = -e
        jac[n, :n] = 1.0
        return jac

    if initial is None:
        e0 = np.full(n, 1.0 / n)
    else:
        e0 = np.asarray(initial, dtype=float)
        e0 = e0 / e0.sum()
    x0 = np.concatenate([e0, [float(e0 @ row_totals)]])
    with obs.span("solver.newton"):
        result = optimize.root(equations, x0, jac=jacobian, method="hybr")
    if not result.success:
        raise ArithmeticError(f"Newton solve failed: {result.message}")
    e = result.x[:n]
    if (e < -1e-9).any():
        raise ArithmeticError("Newton converged to a non-positive solution")
    e = np.clip(e, 0.0, None)
    e = e / e.sum()
    if obs.enabled():
        obs.gauge("solver.newton.iterations", int(result.nfev))
        obs.gauge("solver.newton.residual", residual(matrix, e))
    return SteadyState(e, float(result.x[n]), int(result.nfev))


def solve_analytic(buckets: int = 4) -> SteadyState:
    """Closed form for capacity ``m = 1``.

    With ``T = [[0, 1], [b-1, 2]]`` the dominant eigenvalue solves
    ``a^2 - 2a - (b-1) = 0``, so ``a = 1 + sqrt(b)`` and
    ``e_1/e_0 = a/(b-1)``.  For the quadtree (b=4): ``a = 3`` and
    ``e = (1/2, 1/2)`` — the paper's analytic example.
    """
    if buckets < 2:
        raise ValueError(f"buckets must be >= 2, got {buckets}")
    a = 1.0 + math.sqrt(buckets)
    ratio = a / (buckets - 1)  # e_1 / e_0
    e0 = 1.0 / (1.0 + ratio)
    return SteadyState(np.array([e0, 1.0 - e0]), a, 0)


def solve(matrix: np.ndarray, method: str = "iteration") -> SteadyState:
    """Dispatch to a named solver: 'iteration', 'eigen', or 'newton'."""
    solvers = {
        "iteration": solve_fixed_point_iteration,
        "eigen": solve_eigen,
        "newton": solve_newton,
    }
    if method not in solvers:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(solvers)}"
        )
    return solvers[method](matrix)
