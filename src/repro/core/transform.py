"""Transform matrices — the combinatorial heart of population analysis.

Section III of the paper: the average result of inserting one point
into a node of occupancy ``i`` is a *transform vector* ``t_i`` whose
``j``-th entry is the expected number of occupancy-``j`` nodes
produced.  The vectors stack into the ``(m+1) x (m+1)`` transform
matrix **T**:

- for ``i < m`` the node simply absorbs the point:
  ``t_i = (0, ..., 1, ..., 0)`` with the 1 in position ``i+1``;
- for ``i = m`` the node splits.  The ``m+1`` points scatter
  independently into the ``b = 2^dim`` quadrants; the expected number
  of quadrants holding ``i`` points is

      P_i = C(m+1, i) (b-1)^(m+1-i) / b^m,

  and with probability ``P_{m+1}/b = b^-(m+1)`` per quadrant all points
  land together and the split recurses.  Solving the recurrence
  ``t_m = (P_0..P_m) + P_{m+1} t_m`` gives

      T_mi = C(m+1, i) (b-1)^(m+1-i) / (b^m - 1).

The paper states the ``b = 4`` (planar quadtree) case; the formulas
here keep ``b`` general so bintrees (b=2), octrees (b=8) and higher
dimensions come for free.  Construction is done in exact rational
arithmetic and converted to floats at the end.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import List

import numpy as np


def _check_args(capacity: int, buckets: int) -> None:
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if buckets < 2:
        raise ValueError(f"buckets must be >= 2, got {buckets}")


def split_distribution(capacity: int, buckets: int = 4) -> List[Fraction]:
    """Expected bucket counts ``(P_0, ..., P_{m+1})`` for one split.

    ``P_i`` is the expected number of the ``b`` quadrants containing
    exactly ``i`` of the ``m+1`` scattered points.  The entries sum to
    ``b`` (every quadrant has some occupancy) and the occupancy-weighted
    sum is ``m+1`` (every point lands somewhere) — both checked by the
    test suite.
    """
    _check_args(capacity, buckets)
    m, b = capacity, buckets
    return [
        Fraction(comb(m + 1, i) * (b - 1) ** (m + 1 - i), b ** m)
        for i in range(m + 2)
    ]


def split_row(capacity: int, buckets: int = 4) -> List[Fraction]:
    """The transform vector ``t_m`` of a full node, exactly.

    Solves the paper's recurrence ``t_m = (P_0..P_m) + P_{m+1} t_m``:

        T_mi = C(m+1, i) (b-1)^(m+1-i) / (b^m - 1).
    """
    _check_args(capacity, buckets)
    m, b = capacity, buckets
    denominator = b ** m - 1
    return [
        Fraction(comb(m + 1, i) * (b - 1) ** (m + 1 - i), denominator)
        for i in range(m + 1)
    ]


def transform_matrix_exact(capacity: int, buckets: int = 4) -> List[List[Fraction]]:
    """The full transform matrix **T** in exact rational arithmetic.

    Row ``i < m`` is the unit shift ``e_{i+1}``; row ``m`` is
    :func:`split_row`.
    """
    _check_args(capacity, buckets)
    m = capacity
    rows: List[List[Fraction]] = []
    for i in range(m):
        row = [Fraction(0)] * (m + 1)
        row[i + 1] = Fraction(1)
        rows.append(row)
    rows.append(split_row(capacity, buckets))
    return rows


def transform_matrix(capacity: int, buckets: int = 4) -> np.ndarray:
    """The transform matrix **T** as a float array (rows = node types)."""
    exact = transform_matrix_exact(capacity, buckets)
    return np.array([[float(x) for x in row] for row in exact])


def row_sums_exact(capacity: int, buckets: int = 4) -> List[Fraction]:
    """Exact row sums of **T**: nodes produced per absorbed point.

    All 1 except row ``m``, whose sum is ``(b^{m+1} - 1)/(b^m - 1)`` —
    "slightly greater than four" for the quadtree, as the paper notes.
    """
    _check_args(capacity, buckets)
    m, b = capacity, buckets
    sums = [Fraction(1)] * m
    sums.append(Fraction(b ** (m + 1) - 1, b ** m - 1))
    return sums


def row_sums(capacity: int, buckets: int = 4) -> np.ndarray:
    """Row sums of **T** as floats (the weights in the scalar ``a``)."""
    return np.array([float(s) for s in row_sums_exact(capacity, buckets)])


def post_split_average_occupancy(capacity: int, buckets: int = 4) -> float:
    """Average occupancy of the nodes a split produces.

    The dot product ``t_m . (0..m)`` divided by the number of nodes
    produced (the row sum): ``(m+1)(b^m - 1)/(b^{m+1} - 1)``.  This is
    the floor that per-depth occupancy decays toward in the aging
    experiment (0.4 for m=1, b=4 — Table 3's deep-node limit).
    """
    _check_args(capacity, buckets)
    m, b = capacity, buckets
    return float(Fraction((m + 1) * (b ** m - 1), b ** (m + 1) - 1))


def recursion_probability(capacity: int, buckets: int = 4) -> float:
    """Probability a split must recurse (all m+1 points in one quadrant).

    ``P_{m+1} = b^-m`` — negligible for m beyond 3 or 4, as the paper
    observes when it says T_mi is then closely approximated by P_i.
    """
    _check_args(capacity, buckets)
    return float(Fraction(1, buckets ** capacity))
