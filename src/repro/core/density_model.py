"""Exact statistical model under arbitrary data densities.

:mod:`repro.core.fagin` computes the expected PR-tree census under
*uniform* data, where all depth-k blocks are exchangeable and a single
binomial term covers them.  Under a non-uniform density every block
carries its own probability mass, but the leaf characterization is
unchanged — block b is a leaf iff it fits and its parent does not —
so the computation survives as a *recursive descent*: expand a block
only while the chance it overflows is non-negligible, accumulate each
child's leaf contribution from the trinomial over (mass of child,
rest-of-parent, outside).

This yields the analytic counterpart of the paper's Table 5/Figure 3:
the expected occupancy curve for the Gaussian workload, whose
oscillation damps *in closed form* — the effect the paper could only
demonstrate by simulation.

Cost: expanded blocks ≈ expected internal nodes ≈ O(n), each O(m),
so a full Table 5 curve takes seconds.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np
from scipy.special import gammaln
from scipy.stats import norm

from ..geometry import Rect


class Density:
    """A probability density over a bounding box.

    Subclasses implement :meth:`block_mass` — the probability that one
    sample falls in a given block.  Masses must be additive over a
    block's children and total 1 over the bounds.
    """

    def __init__(self, bounds: Optional[Rect] = None):
        self._bounds = bounds if bounds is not None else Rect.unit(2)

    @property
    def bounds(self) -> Rect:
        """The support box."""
        return self._bounds

    def block_mass(self, rect: Rect) -> float:
        raise NotImplementedError


class UniformDensity(Density):
    """Uniform over the bounds — reduces to the fagin module's model."""

    def block_mass(self, rect: Rect) -> float:
        return rect.volume / self._bounds.volume


class TruncatedGaussianDensity(Density):
    """The paper's Gaussian workload: axis-aligned normal centered in
    the box, truncated (renormalized) to it.

    ``sigma_fraction`` matches :class:`repro.workloads.GaussianPoints`
    (default 0.4: the calibrated reading of "two standard deviations
    wide").
    """

    def __init__(self, bounds: Optional[Rect] = None,
                 sigma_fraction: float = 0.4):
        super().__init__(bounds)
        if sigma_fraction <= 0:
            raise ValueError("sigma_fraction must be positive")
        self._sigma = [
            sigma_fraction * self._bounds.side(i)
            for i in range(self._bounds.dim)
        ]
        self._center = self._bounds.center
        # per-axis normalization over the truncated support
        self._axis_mass = [
            norm.cdf(
                (self._bounds.hi[i] - self._center[i]) / self._sigma[i]
            )
            - norm.cdf(
                (self._bounds.lo[i] - self._center[i]) / self._sigma[i]
            )
            for i in range(self._bounds.dim)
        ]

    def block_mass(self, rect: Rect) -> float:
        mass = 1.0
        for i in range(self._bounds.dim):
            z_hi = (rect.hi[i] - self._center[i]) / self._sigma[i]
            z_lo = (rect.lo[i] - self._center[i]) / self._sigma[i]
            mass *= (norm.cdf(z_hi) - norm.cdf(z_lo)) / self._axis_mass[i]
        return float(mass)


def _log_trinomial(n: int, j: int, s: int, pj: float, ps: float) -> float:
    rest = n - j - s
    p_rest = max(1.0 - pj - ps, 0.0)
    if rest < 0:
        return -math.inf
    total = gammaln(n + 1) - gammaln(j + 1) - gammaln(s + 1) - gammaln(rest + 1)
    for count, prob in ((j, pj), (s, ps), (rest, p_rest)):
        if count > 0:
            if prob <= 0.0:
                return -math.inf
            total += count * math.log(prob)
    return float(total)


def _binom_pmf(count: int, trials: int, p: float) -> float:
    if count < 0 or count > trials:
        return 0.0
    if p <= 0.0:
        return 1.0 if count == 0 else 0.0
    if p >= 1.0:
        return 1.0 if count == trials else 0.0
    lp = (
        gammaln(trials + 1)
        - gammaln(count + 1)
        - gammaln(trials - count + 1)
        + count * math.log(p)
        + (trials - count) * math.log1p(-p)
    )
    return math.exp(lp) if lp > -700 else 0.0


def _overflow_probability(n: int, capacity: int, mass: float) -> float:
    """P[Binomial(n, mass) > capacity]."""
    return max(
        0.0,
        1.0 - sum(_binom_pmf(j, n, mass) for j in range(capacity + 1)),
    )


def expected_leaf_census(
    n: int,
    capacity: int,
    density: Density,
    eps: float = 1e-9,
    max_depth: int = 40,
) -> np.ndarray:
    """Expected leaf counts by occupancy under an arbitrary density.

    Recursive descent over the regular decomposition of the density's
    bounds: a block is expanded while its overflow probability exceeds
    ``eps``; each child contributes its exact leaf probability
    ``P[child = j, parent > m]`` via the trinomial over (child mass,
    rest-of-parent mass, outside).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    m = capacity
    out = np.zeros(m + 1)
    # root leaf case
    if n <= m:
        out[n] = 1.0
        return out

    def leaf_terms(child_mass: float, parent_mass: float) -> np.ndarray:
        contributions = np.zeros(m + 1)
        sibling = max(parent_mass - child_mass, 0.0)
        for j in range(m + 1):
            fit_both = 0.0
            for s in range(0, m - j + 1):
                lt = _log_trinomial(n, j, s, child_mass, sibling)
                if lt > -700:
                    fit_both += math.exp(lt)
            contributions[j] = max(
                _binom_pmf(j, n, child_mass) - fit_both, 0.0
            )
        return contributions

    stack = [(density.bounds, density.block_mass(density.bounds), 0)]
    while stack:
        rect, mass, depth = stack.pop()
        if depth >= max_depth:
            raise ArithmeticError(
                f"density model did not close off by depth {max_depth}"
            )
        for child in rect.split():
            child_mass = density.block_mass(child)
            out += leaf_terms(child_mass, mass)
            if _overflow_probability(n, m, child_mass) > eps:
                stack.append((child, child_mass, depth + 1))
    return out


def average_occupancy(
    n: int, capacity: int, density: Density, eps: float = 1e-9
) -> float:
    """Expected mean occupancy at size ``n`` under ``density``."""
    census = expected_leaf_census(n, capacity, density, eps)
    leaves = census.sum()
    if leaves <= 0:
        raise ArithmeticError("no expected leaves")
    points = float(census @ np.arange(capacity + 1))
    return points / leaves


def occupancy_series(
    sizes, capacity: int, density: Density, eps: float = 1e-9
) -> list:
    """The analytic occupancy-vs-n curve — Figure 2/3 without trees."""
    return [average_occupancy(n, capacity, density, eps) for n in sizes]
